//! Outage forensics: reconstruct one probe's year from its raw logs.
//!
//! Walks a single probe's connection log, k-root pings, and SOS-uptime
//! records, detects outages and reboots, associates them with
//! inter-connection gaps, and prints a human-readable timeline — then checks
//! the verdicts against the simulator's ground truth.
//!
//! ```sh
//! cargo run --release --example outage_forensics [probe_id]
//! ```

use dynaddr::analysis::assoc::{associate_network, associate_power, OutageKind};
use dynaddr::analysis::changes::extract_events;
use dynaddr::analysis::outages::{
    detect_network_outages, detect_power_outages, detect_reboots,
};
use dynaddr::atlas::simulate;
use dynaddr::atlas::world::paper_world;
use dynaddr::types::ProbeId;

fn main() {
    let world = paper_world(0.05, 99);
    let out = simulate(&world);

    // Pick the requested probe, or the probe with the most outages.
    let requested: Option<u32> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let probe = match requested {
        Some(id) => ProbeId(id),
        None => {
            let mut counts = std::collections::BTreeMap::new();
            for o in &out.truth.outages {
                *counts.entry(o.probe).or_insert(0usize) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|(_, n)| *n)
                .map(|(p, _)| p)
                .expect("some probe had outages")
        }
    };
    println!("=== forensics for {probe} ===\n");

    // Raw material.
    let conns: Vec<_> = out
        .dataset
        .connections_of(probe)
        .iter()
        .filter(|c| c.peer.is_v4())
        .copied()
        .collect();
    let kroot = out.dataset.kroot_of(probe);
    let uptime = out.dataset.uptime_of(probe);
    println!(
        "raw logs: {} connections, {} k-root records, {} uptime reports",
        conns.len(),
        kroot.len(),
        uptime.len()
    );

    // Detection.
    let events = extract_events(&conns);
    let network = detect_network_outages(kroot);
    let reboots = detect_reboots(uptime);
    let power = detect_power_outages(&reboots, kroot, &network);
    println!(
        "detected: {} address changes, {} network outages, {} reboots, {} power outages\n",
        events.changes.len(),
        network.len(),
        reboots.len(),
        power.len()
    );

    // Association + timeline.
    let mut assoc = associate_network(&events.gaps, &network);
    assoc.extend(associate_power(&events.gaps, &power));
    assoc.sort_by_key(|a| a.start);

    println!("{:<16} {:>8} {:>10} {:>8}", "when", "kind", "duration", "renumber");
    println!("{}", "-".repeat(48));
    for a in assoc.iter().take(30) {
        println!(
            "{:<16} {:>8} {:>10} {:>8}",
            format!("{}", a.start),
            match a.kind {
                OutageKind::Network => "network",
                OutageKind::Power => "power",
            },
            format!("{}", a.duration),
            if a.address_changed { "YES" } else { "no" }
        );
    }
    if assoc.len() > 30 {
        println!("... and {} more", assoc.len() - 30);
    }

    // Compare against ground truth (the simulator's omniscient view).
    let truth_outages: Vec<_> = out
        .truth
        .outages
        .iter()
        .filter(|o| o.probe == probe)
        .collect();
    let truth_changed = truth_outages.iter().filter(|o| o.address_changed).count();
    let detected_changed = assoc.iter().filter(|a| a.address_changed).count();
    println!(
        "\nground truth: {} outages, {} with address change",
        truth_outages.len(),
        truth_changed
    );
    println!(
        "pipeline:     {} outages, {} with address change",
        assoc.len(),
        detected_changed
    );
    println!(
        "\n(Short blips can evade the 4-minute k-root grid, and v1/v2 probes are\n\
         excluded from power detection — perfect recall is not expected, exactly\n\
         as in the paper.)"
    );
}
