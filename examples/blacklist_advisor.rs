//! Blacklist advisor — the paper's motivating application (§1, §8).
//!
//! Operators blacklist IP addresses seen misbehaving. How long does such an
//! entry stay meaningful, and would blacklisting the enclosing prefix help?
//! The [`dynaddr::analysis::advisor`] module condenses the pipeline's
//! findings (Tables 5–7) into per-AS advisories; this example prints them.
//!
//! ```sh
//! cargo run --release --example blacklist_advisor
//! ```

use dynaddr::analysis::advisor::{advise, RebootEvasion};
use dynaddr::analysis::filtering::filter_probes;
use dynaddr::atlas::simulate;
use dynaddr::atlas::world::{paper_route_tables, paper_world};

fn main() {
    let world = paper_world(0.15, 7);
    let out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let filtered = filter_probes(&out.dataset, &snaps);
    let advisories = advise(&out.dataset, &filtered.probes, &snaps, 30);

    let names = &out.truth.isp_policies;
    println!(
        "{:<24} {:>7} {:>11} {:>12} {:>10} {:>9} {:>8}",
        "ISP", "probes", "median", "max TTL", "evade by", "BGP", "/8"
    );
    println!(
        "{:<24} {:>7} {:>11} {:>12} {:>10} {:>9} {:>8}",
        "", "", "lifetime", "", "reboot?", "escape", "escape"
    );
    println!("{}", "-".repeat(88));

    let mut rows: Vec<&dynaddr::analysis::advisor::AsAdvisory> = advisories.values().collect();
    rows.sort_by_key(|adv| std::cmp::Reverse(adv.durations));
    for adv in rows.iter().take(18) {
        let name = names
            .get(&adv.asn)
            .map(|p| p.name.clone())
            .unwrap_or_else(|| format!("AS{}", adv.asn));
        let ttl = match adv.periodic_cap_hours {
            Some(d) => format!("{d} h (cap)"),
            None => format!("~{:.0} h", adv.max_identifier_ttl_hours),
        };
        let evade = match adv.reboot_evasion {
            RebootEvasion::AtWill => "AT WILL",
            RebootEvasion::Sometimes => "sometimes",
            RebootEvasion::Unlikely => "unlikely",
            RebootEvasion::Unknown => "?",
        };
        println!(
            "{:<24} {:>7} {:>10.0}h {:>12} {:>10} {:>8.0}% {:>7.0}%",
            name,
            adv.probes,
            adv.median_lifetime_hours,
            ttl,
            evade,
            100.0 * adv.bgp_escape,
            100.0 * adv.slash8_escape
        );
    }

    println!(
        "\nReading: an entry for a DTAG-like address is stale within a day; for a\n\
         Verizon-like address it may hold for weeks. Where evasion is AT WILL, a\n\
         malicious user sheds the entry by power-cycling their CPE; where the /8\n\
         escape rate is high, even blacklisting the whole /8 fails across that\n\
         fraction of changes (the paper's §6 finding)."
    );
}
