//! ISP survey: classify every AS's renumbering regime from its logs alone.
//!
//! For each AS with enough probes the survey reports the regime the pipeline
//! infers — periodic (with period), renumber-on-reconnect, or stable — and
//! scores the inference against the simulator's configured ground truth.
//! This is the closed loop the paper could only approximate with private
//! ISP communication (§4.3.2).
//!
//! ```sh
//! cargo run --release --example isp_survey
//! ```

use dynaddr::analysis::assoc::{cond_prob, OutageKind};
use dynaddr::analysis::filtering::filter_probes;
use dynaddr::analysis::periodic::{table5, PeriodicConfig};
use dynaddr::analysis::pipeline::outage_analysis;
use dynaddr::atlas::simulate;
use dynaddr::atlas::world::{paper_route_tables, paper_world};
use std::collections::BTreeMap;

#[derive(Debug, PartialEq)]
enum Regime {
    Periodic(i64),
    RenumberOnReconnect,
    Stable,
}

fn main() {
    let world = paper_world(0.15, 3);
    let out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let names: BTreeMap<u32, String> = out
        .truth
        .isp_policies
        .iter()
        .map(|(asn, p)| (*asn, p.name.clone()))
        .collect();

    let filtered = filter_probes(&out.dataset, &snaps);
    let (rows, _) = table5(&filtered.probes, &names, &PeriodicConfig::default());
    let oa = outage_analysis(&out.dataset, &filtered.probes);

    // Inferred regime per AS.
    let mut inferred: BTreeMap<u32, Regime> = BTreeMap::new();
    for row in rows.iter().filter(|r| r.asn != 0) {
        inferred.entry(row.asn).or_insert(Regime::Periodic(row.d_hours));
    }
    // Non-periodic ASes: split by median P(ac|nw).
    let mut per_as_probs: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for p in &filtered.probes {
        if p.multi_as {
            continue;
        }
        let cp = cond_prob(p.probe(), &oa.outages, OutageKind::Network);
        if cp.outages >= 3 {
            per_as_probs.entry(p.primary_asn.0).or_default().push(cp.p());
        }
    }
    for (asn, probs) in &per_as_probs {
        if inferred.contains_key(asn) || probs.len() < 3 {
            continue;
        }
        let mut sorted = probs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        inferred.insert(
            *asn,
            if median > 0.6 { Regime::RenumberOnReconnect } else { Regime::Stable },
        );
    }

    // Score against ground truth.
    let mut correct = 0;
    let mut total = 0;
    println!(
        "{:<26} {:>22} {:>24} {:>6}",
        "ISP", "configured", "inferred", "match"
    );
    println!("{}", "-".repeat(82));
    for (asn, regime) in &inferred {
        let Some(policy) = out.truth.isp_policies.get(asn) else { continue };
        // ISPs where periodic plans are a small minority of the plant are
        // legitimately seen as non-periodic from a handful of probes.
        let effectively_periodic =
            !policy.periodic_hours.is_empty() && policy.periodic_weight >= 0.3;
        let expectation = if effectively_periodic {
            format!("periodic {:?} h", policy.periodic_hours)
        } else if policy.renumbers_on_reconnect {
            "renumber-on-reconnect".to_string()
        } else {
            "stable".to_string()
        };
        let got = match regime {
            Regime::Periodic(d) => format!("periodic {d} h"),
            Regime::RenumberOnReconnect => "renumber-on-reconnect".to_string(),
            Regime::Stable => "stable".to_string(),
        };
        let ok = match regime {
            Regime::Periodic(d) => policy
                .periodic_hours
                .iter()
                .any(|h| (h - d).abs() <= (h / 50).max(1)),
            Regime::RenumberOnReconnect => policy.renumbers_on_reconnect,
            Regime::Stable => !effectively_periodic,
        };
        total += 1;
        if ok {
            correct += 1;
        }
        println!(
            "{:<26} {:>22} {:>24} {:>6}",
            policy.name,
            expectation,
            got,
            if ok { "yes" } else { "NO" }
        );
    }
    println!(
        "\n{} of {} regime inferences match the configured ground truth.",
        correct, total
    );
    println!(
        "(Mixed-plant ISPs legitimately straddle categories: an ISP that is 40%\n\
         capped PPP and 60% DHCP is both 'periodic' for some customers and\n\
         'stable' for others — the paper's Proximus and SFR behave the same way.)"
    );
}
