//! Building a custom world from scratch — and round-tripping the dataset
//! through the on-disk JSON-lines format.
//!
//! Configures two fictional ISPs with known policies (a 36-hour periodic
//! PPPoE DSL network and a stable DHCP cable network), simulates a year,
//! saves the dataset like a scrape of the RIPE Atlas API, reloads it, and
//! verifies the pipeline re-infers both policies from the files alone.
//!
//! ```sh
//! cargo run --release --example custom_world
//! ```

use dynaddr::analysis::filtering::filter_probes;
use dynaddr::analysis::periodic::{table5, PeriodicConfig};
use dynaddr::atlas::config::{AccessShare, IspSpec, OutageSpec, WorldConfig};
use dynaddr::atlas::logs::AtlasDataset;
use dynaddr::atlas::simulate;
use dynaddr::atlas::world::paper_route_tables;
use dynaddr::ispnet::pool::AllocationPolicy;
use dynaddr::ispnet::{AccessConfig, DhcpConfig, PppConfig};
use dynaddr::types::{SimDuration};
use std::collections::BTreeMap;

fn main() {
    // --- 1. Describe the world -------------------------------------------
    let mut dsl = IspSpec::new("Fictional DSL", 64900, "DE", 12);
    dsl.prefixes = vec!["198.18.0.0/16".parse().unwrap(), "198.19.0.0/16".parse().unwrap()];
    dsl.allocation = AllocationPolicy::RandomAny;
    dsl.shares = vec![AccessShare {
        weight: 1.0,
        access: AccessConfig::Ppp(PppConfig {
            session_cap: Some(SimDuration::from_hours(36)),
            ..PppConfig::default()
        }),
        schedule: None,
    }];

    let mut cable = IspSpec::new("Fictional Cable", 64901, "DE", 12);
    cable.prefixes = vec!["203.0.0.0/16".parse().unwrap()];
    cable.allocation = AllocationPolicy::PreferPrevious;
    cable.outages = OutageSpec::stable();
    cable.shares = vec![AccessShare {
        weight: 1.0,
        access: AccessConfig::Dhcp(DhcpConfig {
            lease: SimDuration::from_hours(8),
            churn_rate_per_hour: 0.01,
            ..DhcpConfig::default()
        }),
        schedule: None,
    }];

    let mut world = WorldConfig::empty(1234);
    world.isps = vec![dsl, cable];
    world.firmware_dates = WorldConfig::firmware_dates_2015();

    // --- 2. Simulate and export ------------------------------------------
    let out = simulate(&world);
    let dir = std::env::temp_dir().join("dynaddr-custom-world");
    out.dataset.save_dir(&dir).expect("write dataset");
    println!(
        "wrote {} (dataset.store, segmented columnar format)",
        dir.display()
    );

    // --- 3. Reload from disk and analyze ----------------------------------
    let reloaded = AtlasDataset::load_dir(&dir).expect("reload dataset");
    assert_eq!(reloaded, out.dataset, "lossless round-trip");
    let snaps = paper_route_tables(&world);
    let filtered = filter_probes(&reloaded, &snaps);
    println!(
        "{} probes analyzable out of {}",
        filtered.counts.analyzable_geo, filtered.counts.total
    );

    let mut names = BTreeMap::new();
    names.insert(64900u32, "Fictional DSL".to_string());
    names.insert(64901u32, "Fictional Cable".to_string());
    let (rows, _) = table5(&filtered.probes, &names, &PeriodicConfig::default());

    // --- 4. Check the inference against what we configured -----------------
    let dsl_row = rows
        .iter()
        .find(|r| r.asn == 64900)
        .expect("the DSL network must be detected as periodic");
    println!(
        "inferred: {} renumbers every {} h ({} of {} probes periodic)",
        dsl_row.name, dsl_row.d_hours, dsl_row.fp25, dsl_row.n
    );
    assert_eq!(dsl_row.d_hours, 36, "configured cap was 36 h");
    assert!(
        !rows.iter().any(|r| r.asn == 64901),
        "the cable network must not be detected as periodic"
    );
    println!("inferred: Fictional Cable shows no periodic renumbering — as configured.");

    std::fs::remove_dir_all(&dir).ok();
    println!("ok");
}
