//! Quickstart: simulate a small RIPE-Atlas-style world, run the full
//! analysis pipeline, and print the headline results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dynaddr::analysis::pipeline::{analyze, AnalysisConfig};
use dynaddr::analysis::report;
use dynaddr::atlas::simulate;
use dynaddr::atlas::world::{paper_route_tables, paper_world};

fn main() {
    // 1. Build a world: 10% of the paper's 10,977-probe deployment.
    let world = paper_world(0.1, 42);
    println!(
        "world: {} ISPs, {} probes (analyzable + filler + movers)",
        world.isps.len(),
        world.total_probes()
    );

    // 2. Simulate the 2015 measurement year.
    let out = simulate(&world);
    println!(
        "simulated: {} connection-log entries, {} k-root records, {} uptime records",
        out.dataset.connections.len(),
        out.dataset.kroot.len(),
        out.dataset.uptime.len()
    );

    // 3. The pipeline needs the monthly IP-to-AS snapshots (the CAIDA
    //    pfx2as stand-in) and, cosmetically, ISP display names.
    let snaps = paper_route_tables(&world);
    let mut cfg = AnalysisConfig { fig3_min_years: 0.3, ..AnalysisConfig::default() };
    for (asn, policy) in &out.truth.isp_policies {
        cfg.as_names.insert(*asn, policy.name.clone());
    }

    // 4. Analyze: every table and figure of the paper in one call.
    let rep = analyze(&out.dataset, &snaps, &cfg);

    println!("\n{}", report::render_table2(&rep));
    println!("{}", report::render_table5(&rep));

    // 5. Dip into structured results directly.
    let daily = rep
        .table5
        .iter()
        .find(|row| row.name == "All" && row.d_hours == 24);
    if let Some(row) = daily {
        println!(
            "{} of {} probes with durations are renumbered on a 24-hour cycle.",
            row.fp25, row.n
        );
    }
    let overall = &rep.table7.overall;
    println!(
        "Across {} address changes, {:.0}% changed BGP prefix and {:.0}% changed /8.",
        overall.changes,
        overall.pct_bgp(),
        overall.pct_8()
    );
}
