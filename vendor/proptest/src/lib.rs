//! Vendored, std-only stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro, `any::<T>()`, numeric range strategies (half-open and
//! inclusive), tuple strategies, `proptest::collection::vec`, `prop_map`,
//! and `prop_assert!`/`prop_assert_eq!`. Unlike upstream there is no
//! shrinking: failures report the case number and the generation is fully
//! deterministic (seeded per test case), so a failing case replays exactly.
//! Case count defaults to 64 and can be overridden with `PROPTEST_CASES`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! The glob-imported surface: traits, `any`, and the macros.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically generated
/// cases. The body may `return Ok(())` early and use `prop_assert!` /
/// `prop_assert_eq!`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let runner = $crate::test_runner::TestRunner::new(stringify!($name));
                for __case in 0..runner.cases {
                    let mut __rng = runner.rng_for(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, runner.cases, e
                        );
                    }
                }
            }
        )+
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case unless the two expressions are
/// equal, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}
