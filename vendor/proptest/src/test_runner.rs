//! Deterministic case generation and failure reporting.

use std::fmt;

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail<T: fmt::Display>(msg: T) -> TestCaseError {
        TestCaseError { msg: msg.to_string() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration: case count and the deterministic seed stream.
pub struct TestRunner {
    /// Number of cases to run.
    pub cases: u64,
    seed: u64,
}

impl TestRunner {
    /// Builds a runner for the named test. The name feeds the seed so
    /// different tests explore different streams; `PROPTEST_CASES`
    /// overrides the case count.
    pub fn new(name: &str) -> TestRunner {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        // FNV-1a over the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner { cases, seed }
    }

    /// The RNG for one case index.
    pub fn rng_for(&self, case: u64) -> TestRng {
        TestRng { state: self.seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }
}

/// SplitMix64 generator backing strategy sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
