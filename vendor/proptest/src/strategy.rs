//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )+};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Strategy from [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            self.size.start
                + rng.below((self.size.end - self.size.start) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
