//! Vendored ChaCha12-based RNG, replacing the `rand_chacha` crate for the
//! offline build. Implements the real ChaCha12 block function (12 rounds,
//! 16-word state) so the stream quality matches upstream; only the seeding
//! path differs in that just `seed_from_u64` is provided, which is the one
//! constructor this workspace uses.

pub use rand::rand_core;

use rand_core::{RngCore, SeedableRng};

/// A ChaCha stream cipher core with 12 rounds, used as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// Builds the RNG from a 256-bit key; counter and nonce start at zero.
    pub fn from_key(key: [u32; 8]) -> ChaCha12Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        ChaCha12Rng { state, buf: [0; 16], idx: 16 }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..6 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = working;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> ChaCha12Rng {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the
        // same construction rand_core uses for seed_from_u64.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let v = next();
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        ChaCha12Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = ChaCha12Rng::seed_from_u64(9);
        let mut c = ChaCha12Rng::seed_from_u64(10);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_looks_uniform() {
        let mut r = ChaCha12Rng::seed_from_u64(1234);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
