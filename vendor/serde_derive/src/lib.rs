//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! std-only serde stand-in.
//!
//! Parses the derive input by walking the raw token stream (no syn/quote —
//! the build resolves crates offline) and emits impls against the traits in
//! `vendor/serde`. Supported shapes are exactly what the workspace derives:
//! named structs, tuple/newtype structs, and enums with unit, tuple, and
//! struct variants; container attributes `#[serde(transparent)]` and
//! `#[serde(rename_all = "kebab-case")]`. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive emitted invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive emitted invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    transparent: bool,
    kebab_case: bool,
    kind: Kind,
}

enum Kind {
    /// Named-field struct with its field names in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with its arity.
    TupleStruct(usize),
    /// Enum with its variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut transparent = false;
    let mut kebab_case = false;

    // Leading attributes: `# [ ... ]` pairs. Only #[serde(...)] matters;
    // doc comments and everything else are skipped.
    while matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(pos + 1) {
            parse_container_attr(g.stream(), &mut transparent, &mut kebab_case);
        }
        pos += 2;
    }

    // Optional visibility: `pub` possibly followed by `(crate)` etc.
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }

    let keyword = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving {name})");
    }

    let kind = match (keyword.as_str(), &tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde_derive: unsupported {kw} body for {name}: {other:?}"),
    };

    Item { name, transparent, kebab_case, kind }
}

/// Inspects one outer attribute group (the `[...]` tokens) for
/// `serde(transparent)` / `serde(rename_all = "kebab-case")`.
fn parse_container_attr(stream: TokenStream, transparent: &mut bool, kebab: &mut bool) {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = iter.next() else { return };
    let text = args.stream().to_string();
    if text.contains("transparent") {
        *transparent = true;
    }
    if text.contains("rename_all") {
        if text.contains("kebab-case") {
            *kebab = true;
        } else {
            panic!("serde_derive: only rename_all = \"kebab-case\" is supported, got {text}");
        }
    }
}

/// Parses `a: T, b: U, ...` from a brace-struct body, skipping attributes
/// and visibility. Commas inside groups are invisible (they sit in their own
/// token trees); commas inside generic arguments are tracked via `<`/`>`
/// depth.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        fields.push(field);
        pos += 1;
        match &tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field, found {other:?}"),
        }
        pos = skip_type(&tokens, pos);
        // Now at a top-level comma or the end.
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Counts the `T, U, ...` fields of a paren-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        pos = skip_type(&tokens, pos);
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        pos += 1;
        let shape = match &tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported");
        }
        variants.push(Variant { name, shape });
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    variants
}

/// Skips any number of `#[...]` attributes and an optional `pub`
/// (+ restriction group) starting at `pos`; returns the new position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    loop {
        match &tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => pos += 2,
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                pos += 1;
                if matches!(
                    &tokens.get(pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    pos += 1;
                }
            }
            _ => return pos,
        }
    }
}

/// Skips one type starting at `pos`, stopping at a comma that sits at zero
/// angle-bracket depth (or at end of tokens).
fn skip_type(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle_depth = 0i32;
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return pos,
            _ => {}
        }
        pos += 1;
    }
    pos
}

// ---------------------------------------------------------------------------
// Code generation (string-based; parsed back into a TokenStream)
// ---------------------------------------------------------------------------

/// serde's kebab-case: each uppercase letter starts a new `-`-joined word.
fn kebab(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_tag(item: &Item, variant: &str) -> String {
    if item.kebab_case {
        kebab(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            if item.transparent {
                assert_eq!(fields.len(), 1, "transparent struct {name} must have one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Object(vec![{}])", entries.join(", "))
            }
        }
        Kind::TupleStruct(arity) => {
            // Newtype structs (and #[serde(transparent)]) serialize as the
            // inner value; wider tuple structs as arrays.
            if *arity == 1 || item.transparent {
                assert_eq!(*arity, 1, "transparent tuple struct {name} must have one field");
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = variant_tag(item, &v.name);
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{tag}\"))"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{tag}\"), \
                             ::serde::Serialize::to_value(__f0))])"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{tag}\"), \
                                 ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from(\"{tag}\"), \
                                 ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            if item.transparent {
                assert_eq!(fields.len(), 1, "transparent struct {name} must have one field");
                format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::deserialize(__v)? }})",
                    fields[0]
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize(\
                             ::serde::__private::field(__obj, \"{f}\", \"{name}\")?)?"
                        )
                    })
                    .collect();
                format!(
                    "let __obj = ::serde::__private::expect_object(__v, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        }
        Kind::TupleStruct(arity) => {
            if *arity == 1 || item.transparent {
                assert_eq!(*arity, 1, "transparent tuple struct {name} must have one field");
                format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize(__v)?))"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = ::serde::__private::expect_array(__v, {arity}, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = variant_tag(item, &v.name);
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "\"{tag}\" => {{ \
                             ::serde::__private::expect_unit(__data, \"{vname}\", \"{name}\")?; \
                             ::std::result::Result::Ok({name}::{vname}) }}"
                        ),
                        Shape::Tuple(1) => format!(
                            "\"{tag}\" => {{ \
                             let __d = ::serde::__private::expect_data(__data, \"{vname}\", \"{name}\")?; \
                             ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize(__d)?)) }}"
                        ),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{tag}\" => {{ \
                                 let __d = ::serde::__private::expect_data(__data, \"{vname}\", \"{name}\")?; \
                                 let __items = ::serde::__private::expect_array(__d, {n}, \"{name}\")?; \
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(\
                                         ::serde::__private::field(__fields, \"{f}\", \"{name}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{tag}\" => {{ \
                                 let __d = ::serde::__private::expect_data(__data, \"{vname}\", \"{name}\")?; \
                                 let __fields = ::serde::__private::expect_object(__d, \"{name}\")?; \
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __data) = ::serde::__private::enum_variant(__v, \"{name}\")?;\n\
                 match __tag {{ {},\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::__private::unknown_variant(__other, \"{name}\")) }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}
