//! Vendored, std-only stand-in for the `rand` crate.
//!
//! The build environment resolves crates offline, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`, `gen_range`,
//! and `gen_bool`. Distribution quality matters (the simulator's statistical
//! tests draw tens of thousands of samples), so sampling follows the same
//! constructions as upstream: 53-bit mantissa floats and widening-multiply
//! integer ranges.

pub mod rand_core {
    //! Core RNG traits, mirroring the `rand_core` facade re-exported by
    //! `rand` and `rand_chacha`.

    /// A source of random bits.
    pub trait RngCore {
        /// Returns the next 32 random bits.
        fn next_u32(&mut self) -> u32;

        /// Returns the next 64 random bits.
        fn next_u64(&mut self) -> u64;

        /// Fills `dest` with random bytes.
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    /// An RNG that can be reproducibly constructed from a seed.
    pub trait SeedableRng: Sized {
        /// Builds the generator from a 64-bit seed, expanding it to the
        /// generator's full state deterministically.
        fn seed_from_u64(state: u64) -> Self;
    }

    impl<R: RngCore + ?Sized> RngCore for &mut R {
        fn next_u32(&mut self) -> u32 {
            (**self).next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

pub use rand_core::{RngCore, SeedableRng};

/// Types that can be sampled uniformly from an RNG's raw output, like
/// `rand`'s `Standard` distribution: full range for integers and `bool`,
/// `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64,
);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits over [0, 1), as in rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform-range sampler, like rand's `SampleUniform`.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

/// A half-open or inclusive range values of type `T` can be drawn from
/// uniformly. The single generic impl per range shape (as in rand) lets
/// type inference unify the range's element type with the expected output
/// type, so unsuffixed literals like `gen_range(0..DAY)` work.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R)
                -> $t
            {
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128
                };
                let offset = widening_mul_u128(rng, span);
                (lo as i128 + offset as i128) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform u64 onto `[0, span)` via widening multiply (Lemire's
/// unbiased-enough fast path; the bias at these span sizes is < 2^-64).
fn widening_mul_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    (rng.next_u64() as u128 * span) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R)
                -> $t
            {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut r = SplitMix(42);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
