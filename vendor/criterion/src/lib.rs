//! Vendored, std-only stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple median-of-samples timer instead of upstream's statistical
//! machinery. Results print as `<name>  time: <median> (min .. max)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs one routine
/// call per setup regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large inputs that should not be pre-materialized en masse.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `<function>/<parameter>`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, N: Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` over inputs built by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::new() };
    // One warmup pass, then the measured samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort();
    if b.samples.is_empty() {
        println!("{name:<50} no samples recorded");
        return;
    }
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{name:<50} time: {} ({} .. {})",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
