//! The owned value tree all (de)serialization goes through.

/// A JSON-shaped value tree. Object fields keep insertion order so that
/// serialized output is deterministic and mirrors struct declaration order,
/// like serde_json's default (non-`preserve_order`-less) struct encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, negative or
    /// within i64).
    Int(i64),
    /// Unsigned integer beyond i64, or any non-negative integer parsed from
    /// text.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered field list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as an i64, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an f64, accepting any numeric representation.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }
}
