//! Vendored, std-only stand-in for `serde` + `serde_derive`.
//!
//! The build environment resolves crates offline, so the workspace carries a
//! minimal serialization framework exposing the same *surface* the code
//! uses: `Serialize`/`Deserialize` traits, `#[derive(Serialize,
//! Deserialize)]`, `#[serde(transparent)]`, and `#[serde(rename_all =
//! "kebab-case")]`. Instead of serde's visitor architecture it serializes
//! through an owned [`Value`] tree (see `vendor/serde_json` for the JSON
//! text layer). Formats match serde_json's defaults where the workspace
//! depends on them: transparent newtypes as bare values, externally-tagged
//! enums, maps as objects with stringified keys, and IP addresses as
//! display strings.

mod impls;
mod value;

pub use value::Value;

pub mod de {
    //! Deserialization error type.

    use std::fmt;

    /// Error produced when a [`Value`](crate::Value) tree or JSON document
    /// cannot be decoded into the requested type.
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Builds an error from any displayable message.
        pub fn custom<T: fmt::Display>(msg: T) -> Error {
            Error { msg: msg.to_string() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}
}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// The lifetime parameter exists only for signature compatibility with
/// serde's `for<'de> Deserialize<'de>` bounds; this implementation always
/// decodes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs a value from the tree, or reports why it cannot.
    fn deserialize(v: &Value) -> Result<Self, de::Error>;
}

pub use serde_derive::{Deserialize, Serialize};

pub mod __private {
    //! Helpers targeted by the derive macro. Not part of the public API.

    use crate::de::Error;
    use crate::Value;

    /// Unwraps an object, or errors with the expecting type's name.
    pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        match v {
            Value::Object(fields) => Ok(fields),
            other => Err(Error::custom(format!(
                "invalid type for {ty}: expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// Unwraps an array of exactly `len` elements.
    pub fn expect_array<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], Error> {
        match v {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "invalid length for {ty}: expected {len} elements, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "invalid type for {ty}: expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a struct field by name.
    pub fn field<'a>(
        fields: &'a [(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<&'a Value, Error> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))
    }

    /// Splits an externally-tagged enum value into (variant name, payload).
    /// Unit variants arrive as a bare string; data variants as a one-entry
    /// object.
    pub fn enum_variant<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), Error> {
        match v {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(Error::custom(format!(
                "invalid type for enum {ty}: expected string or single-key object, found {}",
                other.kind()
            ))),
        }
    }

    /// Asserts a unit variant carries no payload.
    pub fn expect_unit(data: Option<&Value>, variant: &str, ty: &str) -> Result<(), Error> {
        match data {
            None => Ok(()),
            Some(_) => Err(Error::custom(format!(
                "unexpected payload for unit variant {ty}::{variant}"
            ))),
        }
    }

    /// Asserts a data variant actually carries a payload.
    pub fn expect_data<'a>(
        data: Option<&'a Value>,
        variant: &str,
        ty: &str,
    ) -> Result<&'a Value, Error> {
        data.ok_or_else(|| {
            Error::custom(format!("missing payload for variant {ty}::{variant}"))
        })
    }

    /// Error for an unrecognized enum variant name.
    pub fn unknown_variant(name: &str, ty: &str) -> Error {
        Error::custom(format!("unknown variant `{name}` for enum {ty}"))
    }
}
