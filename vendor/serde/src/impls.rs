//! `Serialize`/`Deserialize` implementations for the std types the
//! workspace serializes.

use crate::de::Error;
use crate::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, Ipv6Addr};

macro_rules! impl_signed {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        "invalid type: expected integer, found {}", v.kind()
                    )))?;
                <$t>::try_from(i)
                    .map_err(|_| Error::custom(format!("integer {i} out of range")))
            }
        }
    )+};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        "invalid type: expected unsigned integer, found {}", v.kind()
                    )))?;
                <$t>::try_from(u)
                    .map_err(|_| Error::custom(format!("integer {u} out of range")))
            }
        }
    )+};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),+ $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| Error::custom(format!(
                    "invalid type: expected number, found {}", v.kind()
                )))
            }
        }
    )+};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "invalid type: expected boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "invalid type: expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($len:expr => $(($idx:tt, $name:ident)),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = crate::__private::expect_array(v, $len, "tuple")?;
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => (0, A));
impl_tuple!(2 => (0, A), (1, B));
impl_tuple!(3 => (0, A), (1, B), (2, C));
impl_tuple!(4 => (0, A), (1, B), (2, C), (3, D));

/// Renders a serialized map key as a JSON object key, mirroring
/// serde_json's integer-keys-as-strings behavior.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

/// Recovers a map key from its object-key string: tries the string form
/// first, then the numeric forms, so both `BTreeMap<String, _>` and integer
/// or integer-newtype keys roundtrip.
fn key_from_string<'de, K: Deserialize<'de>>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Int(i)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot decode map key `{s}`")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::deserialize(val)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for Ipv4Addr {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("invalid IPv4 address `{s}`"))),
            other => Err(Error::custom(format!(
                "invalid type: expected IPv4 string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for Ipv6Addr {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| Error::custom(format!("invalid IPv6 address `{s}`"))),
            other => Err(Error::custom(format!(
                "invalid type: expected IPv6 string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
