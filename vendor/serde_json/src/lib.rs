//! Vendored, std-only JSON layer over the serde stand-in's value tree.
//!
//! Provides the workspace's serde_json surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Error`]. Output conventions
//! follow serde_json: compact form has no whitespace, pretty form indents
//! with two spaces, floats print via Rust's shortest-roundtrip `Display`,
//! and non-finite floats serialize as `null`.

mod parse;

pub use serde::de::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses a JSON document into any deserializable type.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize(&value)
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        Value::Array(_) => out.push_str("[]"),
        Value::Object(_) => out.push_str("{}"),
        other => write_compact(other, out),
    }
}

fn push_indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep a numeric marker so integral floats stay floats on reparse,
        // matching serde_json's `1.0` rendering.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<i64> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
        let s: String = from_str("\"a\\n\\\"b\\\" \\u00e9\"").unwrap();
        assert_eq!(s, "a\n\"b\" é");
        let f: f64 = from_str("2.5e2").unwrap();
        assert_eq!(f, 250.0);
        let o: Option<u32> = from_str("null").unwrap();
        assert_eq!(o, None);
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        use serde::Value;
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }
}
