//! Recursive-descent JSON parser producing the serde stand-in's [`Value`]
//! tree. Strict where the workspace needs it: malformed documents and
//! trailing garbage are errors (the JSONL reader relies on that to report
//! bad lines).

use serde::de::Error;
use serde::Value;

pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of document")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(ch.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                            // hex4 leaves pos one past the digits; undo the
                            // shared advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16)
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(if let Ok(i) = i64::try_from(u) {
                    Value::Int(i)
                } else {
                    Value::UInt(u)
                });
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
