//! # dynaddr
//!
//! A full Rust reproduction of *"Reasons Dynamic Addresses Change"*
//! (Padmanabhan et al., IMC 2016): a deterministic simulator of the RIPE
//! Atlas measurement plane plus the paper's complete analysis pipeline.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`types`] — time, prefixes, ASNs, probes, RNG, distributions;
//! * [`ip2as`] — the IP-to-AS mapping substrate (monthly pfx2as snapshots);
//! * [`ispnet`] — address pools, DHCP, and PPP/RADIUS session machinery;
//! * [`atlas`] — the discrete-event simulator emitting the three log
//!   datasets and ground truth;
//! * [`analysis`] — the paper's pipeline: filtering, durations, periodic
//!   detection, outage association, prefix analysis, reporting.
//!
//! ## Example
//!
//! Simulate a small world and re-infer Deutsche Telekom's daily
//! renumbering from the logs alone:
//!
//! ```
//! use dynaddr::analysis::pipeline::{analyze, AnalysisConfig};
//! use dynaddr::atlas::world::{paper_route_tables, paper_world};
//! use dynaddr::atlas::simulate;
//!
//! let world = paper_world(0.03, 7);
//! let out = simulate(&world);
//! let snaps = paper_route_tables(&world);
//! let report = analyze(&out.dataset, &snaps, &AnalysisConfig::default());
//!
//! // The filtering funnel saw every probe...
//! assert_eq!(report.filter.total, out.dataset.meta.len());
//! // ...and Table 5 recovers DTAG's configured 24-hour period.
//! let dtag = report.table5.iter().find(|r| r.asn == 3320).expect("DTAG row");
//! assert_eq!(dtag.d_hours, 24);
//! ```

#![forbid(unsafe_code)]

pub use dynaddr_atlas as atlas;
pub use dynaddr_core as analysis;
pub use dynaddr_ip2as as ip2as;
pub use dynaddr_ispnet as ispnet;
pub use dynaddr_store as store;
pub use dynaddr_types as types;
