#!/usr/bin/env sh
# CI gate: release build, full workspace tests, and a perfsnap smoke run.
#
# The smoke run times the pipeline at a tiny scale (0.01) just to prove the
# bench binary exits 0 and writes valid JSON — it is NOT a benchmark and its
# numbers are meaningless; refresh BENCH_pipeline.json with the default
# scale on quiet hardware instead.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> perfsnap smoke (scale 0.01)"
SNAP="$(mktemp /tmp/perfsnap-smoke.XXXXXX.json)"
trap 'rm -f "$SNAP"' EXIT
cargo run --release -q -p dynaddr-bench --bin perfsnap -- \
    --scale 0.01 --iters 1 --out "$SNAP"

python3 -m json.tool "$SNAP" > /dev/null
grep -q '"sim_queue"' "$SNAP"
grep -q '"sim_event_loop"' "$SNAP"

echo "==> ci OK"
