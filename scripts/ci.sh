#!/usr/bin/env sh
# CI gate: release build, full workspace tests, a perfsnap smoke run, a
# store-vs-jsonl round-trip smoke, a query-serving smoke (queryd/queryc), a
# shard-local-vs-serial world-build smoke, and the quickstart example.
#
# The smoke run times the pipeline at a tiny scale (0.01) just to prove the
# bench binary exits 0 and writes valid JSON — it is NOT a benchmark and its
# numbers are meaningless; refresh BENCH_pipeline.json with the default
# scale on quiet hardware instead.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace: the root package alone would skip the member binaries the
# smokes below run straight from target/release (queryd, dynaddrd, ...).
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> perfsnap smoke (scale 0.01, tier ladder s005 only)"
SNAP="$(mktemp /tmp/perfsnap-smoke.XXXXXX.json)"
SMOKE="$(mktemp -d /tmp/dynaddr-smoke.XXXXXX)"
trap 'rm -rf "$SNAP" "$SMOKE"' EXIT
cargo run --release -q -p dynaddr-bench --bin perfsnap -- \
    --scale 0.01 --iters 1 --tiers s005 --lookups 5000 --out "$SNAP"

python3 -m json.tool "$SNAP" > /dev/null
grep -q '"sim_queue"' "$SNAP"
grep -q '"world_build"' "$SNAP"
grep -q '"sim_event_loop"' "$SNAP"
grep -q '"store_decode"' "$SNAP"
grep -q '"dataset_bytes"' "$SNAP"
grep -q '"probes_per_sec"' "$SNAP"
grep -q '"peak_rss_bytes"' "$SNAP"
grep -q '"exec_stats"' "$SNAP"
grep -q '"tasks_per_worker"' "$SNAP"
grep -q '"trace_overhead_pct"' "$SNAP"
grep -q '"lookups_per_sec"' "$SNAP"
grep -q '"cache_hit_rate"' "$SNAP"
grep -q '"latency_p99_us"' "$SNAP"
grep -q '"replay_rows_per_sec"' "$SNAP"
grep -q '"point_p99_ns"' "$SNAP"
grep -q '"sealed_matches_batch": true' "$SNAP"

echo "==> store round-trip smoke (scale 0.01, store vs jsonl)"
# The same world written in both formats must analyze to identical reports.
cargo run --release -q -p dynaddr-bench --bin simulate -- \
    --out "$SMOKE/store" --scale 0.01 --seed 5 --format store
cargo run --release -q -p dynaddr-bench --bin simulate -- \
    --out "$SMOKE/jsonl" --scale 0.01 --seed 5 --format jsonl
test -f "$SMOKE/store/dataset.store"
test -f "$SMOKE/jsonl/meta.jsonl"
cargo run --release -q -p dynaddr-bench --bin analyze -- \
    --data "$SMOKE/store" --report "$SMOKE/store.txt" > /dev/null
cargo run --release -q -p dynaddr-bench --bin analyze -- \
    --data "$SMOKE/jsonl" --report "$SMOKE/jsonl.txt" > /dev/null
diff "$SMOKE/store.txt" "$SMOKE/jsonl.txt"

echo "==> query serving smoke (queryd on the scale-0.01 store)"
# The daemon's cache-backed answers must match the batch-loaded local
# oracle byte for byte (remote vs local), and a second identical batch —
# now served from a warm cache — must match the first (cold vs warm).
QSOCK="$SMOKE/queryd.sock"
./target/release/queryd --data "$SMOKE/store" --socket "$QSOCK" \
    --trace "$SMOKE/queryd-trace.jsonl" 2> "$SMOKE/queryd.err" &
QPID=$!
trap 'kill "$QPID" 2>/dev/null; rm -rf "$SNAP" "$SMOKE"' EXIT
./target/release/queryc --data "$SMOKE/store" --socket "$QSOCK" \
    --count 400 --seed 99 --out "$SMOKE/q-remote-cold.txt"
./target/release/queryc --data "$SMOKE/store" --socket "$QSOCK" \
    --count 400 --seed 99 --out "$SMOKE/q-remote-warm.txt"
./target/release/queryc --data "$SMOKE/store" \
    --count 400 --seed 99 --out "$SMOKE/q-local.txt"
diff "$SMOKE/q-remote-cold.txt" "$SMOKE/q-local.txt"
diff "$SMOKE/q-remote-cold.txt" "$SMOKE/q-remote-warm.txt"
kill "$QPID"
wait "$QPID" 2>/dev/null || true

echo "==> dynaddrd replay smoke (scale 0.01 store, daemon vs batch report)"
# Replaying the full stream through the live per-probe state machines and
# sealing must reproduce the batch analyzer's report byte for byte — at 1
# thread, 2 threads, and the ambient count. Mid-replay, the daemon must
# answer rolling point queries over its socket.
trap 'kill "$DPID" 2>/dev/null; rm -rf "$SNAP" "$SMOKE"' EXIT
for THREADS in 1 2 ambient; do
    DSOCK="$SMOKE/dynaddrd-$THREADS.sock"
    DREPORT="$SMOKE/dynaddrd-$THREADS.txt"
    if [ "$THREADS" = ambient ]; then
        set --
    else
        set -- --threads "$THREADS"
    fi
    ./target/release/dynaddrd --replay "$SMOKE/store/dataset.store" \
        --socket "$DSOCK" --rate max --report "$DREPORT" \
        --trace "$SMOKE/dynaddrd-$THREADS-trace.jsonl" \
        "$@" 2> "$SMOKE/dynaddrd-$THREADS.err" &
    DPID=$!
    # Rolling snapshot + probe state while (or just after) the replay
    # runs; then block until the stream is sealed.
    ./target/release/dynaddrd query --socket "$DSOCK" snapshot \
        > "$SMOKE/dynaddrd-$THREADS.snap"
    grep -q '^snapshot: ' "$SMOKE/dynaddrd-$THREADS.snap"
    ./target/release/dynaddrd query --socket "$DSOCK" --wait-sealed 120 ingest \
        | grep -q 'sealed true'
    # The report is published by atomic rename just after sealing.
    N=0
    until [ -f "$DREPORT" ]; do
        N=$((N+1))
        [ "$N" -lt 200 ] || { echo "dynaddrd report never appeared"; exit 1; }
        sleep 0.1
    done
    diff "$SMOKE/store.txt" "$DREPORT"
    grep -q '"ev":"heartbeat"' "$SMOKE/dynaddrd-$THREADS-trace.jsonl"
    kill "$DPID"
    wait "$DPID" 2>/dev/null || true
done

echo "==> build-mode smoke (scale 0.01, shard-local vs serial world build)"
# Nets and probes are normally materialized inside the parallel shard map;
# --serial-build materializes them up front on one thread. The two
# construction orders must analyze to identical reports.
cargo run --release -q -p dynaddr-bench --bin simulate -- \
    --out "$SMOKE/serial" --scale 0.01 --seed 5 --serial-build
test -f "$SMOKE/serial/dataset.store"
cargo run --release -q -p dynaddr-bench --bin analyze -- \
    --data "$SMOKE/serial" --report "$SMOKE/serial.txt" > /dev/null
diff "$SMOKE/store.txt" "$SMOKE/serial.txt"

echo "==> streamed pipeline smoke (scale 0.01, streamed vs batch)"
# Shard-streamed store writing must produce the byte-identical file, and
# the out-of-core analyzer the byte-identical report.
cargo run --release -q -p dynaddr-bench --bin simulate -- \
    --out "$SMOKE/streamed" --scale 0.01 --seed 5 --streamed
cmp "$SMOKE/store/dataset.store" "$SMOKE/streamed/dataset.store"
cargo run --release -q -p dynaddr-bench --bin analyze -- \
    --data "$SMOKE/streamed" --streamed --report "$SMOKE/streamed.txt" > /dev/null
diff "$SMOKE/store.txt" "$SMOKE/streamed.txt"

echo "==> traced pipeline smoke (scale 0.01, trace on vs off)"
# Observability is strictly off the output path: with --trace the binaries
# must write a valid JSONL sidecar (heartbeats, spans, executor stats)
# while the dataset and report bytes stay identical to the untraced runs.
cargo run --release -q -p dynaddr-bench --bin simulate -- \
    --out "$SMOKE/traced" --scale 0.01 --seed 5 --streamed \
    --trace "$SMOKE/simulate-trace.jsonl"
cmp "$SMOKE/store/dataset.store" "$SMOKE/traced/dataset.store"
DYNADDR_HEARTBEAT_SECS=0 cargo run --release -q -p dynaddr-bench --bin analyze -- \
    --data "$SMOKE/traced" --streamed --report "$SMOKE/traced.txt" \
    --trace "$SMOKE/analyze-trace.jsonl" > /dev/null
diff "$SMOKE/store.txt" "$SMOKE/traced.txt"
# Every sidecar line must be one valid JSON object.
for TRACE in "$SMOKE/simulate-trace.jsonl" "$SMOKE/analyze-trace.jsonl"; do
    test -s "$TRACE"
    while IFS= read -r line; do
        printf '%s\n' "$line" | python3 -m json.tool > /dev/null
    done < "$TRACE"
done
grep -q '"ev":"exec_stats"' "$SMOKE/analyze-trace.jsonl"
grep -q '"ev":"heartbeat"' "$SMOKE/analyze-trace.jsonl"
grep -q '"ev":"span"' "$SMOKE/analyze-trace.jsonl"

echo "==> paper-tier streamed smoke (memory ceiling)"
# The full 10,977-probe tier must analyze out-of-core under 150 MiB peak
# RSS — a ceiling the materialized path exceeds (~220 MB). The analyze
# binary self-reports VmHWM on stderr as "peak_rss_bytes: N".
cargo run --release -q -p dynaddr-bench --bin simulate -- \
    --out "$SMOKE/paper" --tier paper --streamed
cargo run --release -q -p dynaddr-bench --bin analyze -- \
    --data "$SMOKE/paper" --streamed > /dev/null 2> "$SMOKE/paper-analyze.err"
RSS="$(sed -n 's/^peak_rss_bytes: //p' "$SMOKE/paper-analyze.err")"
echo "    paper-tier streamed analyze peak RSS: $RSS bytes"
test -n "$RSS"
test "$RSS" -lt 157286400

echo "==> quickstart example smoke"
cargo run --release -q --example quickstart > /dev/null

echo "==> ci OK"
