//! Shared harness for the integration tests: one simulated paper world and
//! one analysis report, built lazily and reused by every test in the binary.

use dynaddr::analysis::pipeline::{analyze, AnalysisConfig, AnalysisReport};
use dynaddr::atlas::world::{paper_route_tables, paper_world};
use dynaddr::atlas::{simulate, SimOutput};
use dynaddr::ip2as::MonthlySnapshots;
use std::sync::OnceLock;

/// The scale used by integration tests: big enough for every named ISP to
/// carry its minimum population, small enough to run in seconds.
pub const SCALE: f64 = 0.1;
/// The seed all shape tests share.
pub const SEED: u64 = 2015;

#[allow(dead_code)] // different test binaries use different fields
pub struct Harness {
    pub out: SimOutput,
    pub snaps: MonthlySnapshots,
    pub cfg: AnalysisConfig,
    pub report: AnalysisReport,
}

static HARNESS: OnceLock<Harness> = OnceLock::new();

/// The shared world + report.
pub fn harness() -> &'static Harness {
    HARNESS.get_or_init(|| {
        let world = paper_world(SCALE, SEED);
        let out = simulate(&world);
        let snaps = paper_route_tables(&world);
        let mut cfg = AnalysisConfig {
            fig3_min_years: 3.0 * SCALE,
            ..AnalysisConfig::default()
        };
        for (asn, policy) in &out.truth.isp_policies {
            cfg.as_names.insert(*asn, policy.name.clone());
        }
        let report = analyze(&out.dataset, &snaps, &cfg);
        Harness { out, snaps, cfg, report }
    })
}
