//! The columnar store's end-to-end contract: any normalized dataset
//! round-trips exactly (property-tested), any flipped bit yields a typed
//! error naming the damaged region — never a panic or silently wrong data —
//! and directory loading attributes every failure to the file (and segment)
//! that caused it.

use dynaddr::atlas::logs::{LoadError, StoreFormat};
use dynaddr::atlas::{
    AtlasDataset, ConnectionLogEntry, GroundTruth, KrootPingRecord, PeerAddr, ProbeMeta,
    SosUptimeRecord,
};
use dynaddr::atlas::truth::IspPolicyTruth;
use dynaddr::store::{FileReader, ReadMode, StoreError, MAGIC};
use dynaddr::types::{Country, ProbeId, ProbeTag, ProbeVersion, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dynaddr-store-{tag}-{}", std::process::id()))
}

// ---------------------------------------------------------------------------
// Property: random normalized datasets round-trip exactly and idempotently
// ---------------------------------------------------------------------------

fn arb_dataset() -> impl Strategy<Value = AtlasDataset> {
    let meta = proptest::collection::vec((0u32..40, 0u8..3, 0u8..4, 0u8..4), 0..12);
    let conns = proptest::collection::vec((0u32..40, 0i64..100_000, 0i64..50_000, 0u8..255), 0..30);
    let kroot = proptest::collection::vec((0u32..40, 0i64..100_000, 0u8..4, -100i64..100_000), 0..30);
    let uptime = proptest::collection::vec((0u32..40, 0i64..100_000, 0u64..1_000_000), 0..20);
    (meta, conns, kroot, uptime).prop_map(|(meta, conns, kroot, uptime)| {
        let mut ds = AtlasDataset::default();
        let mut seen = std::collections::HashSet::new();
        for (p, ver, country, tags) in meta {
            if !seen.insert(p) {
                continue; // meta is one row per probe
            }
            ds.meta.push(ProbeMeta {
                probe: ProbeId(p),
                version: [ProbeVersion::V1, ProbeVersion::V2, ProbeVersion::V3][ver as usize],
                country: Country::new(["DE", "US", "JP", "GR"][country as usize]).unwrap(),
                tags: [ProbeTag::Home, ProbeTag::Dsl, ProbeTag::Nat][..tags as usize % 4]
                    .to_vec(),
            });
        }
        for (p, start, len, addr) in conns {
            ds.connections.push(ConnectionLogEntry {
                probe: ProbeId(p),
                start: SimTime(start),
                end: SimTime(start + len),
                peer: PeerAddr::V4(Ipv4Addr::new(10, 0, (p % 256) as u8, addr)),
            });
        }
        for (p, ts, success, lts) in kroot {
            ds.kroot.push(KrootPingRecord {
                probe: ProbeId(p),
                timestamp: SimTime(ts),
                sent: 3,
                success,
                lts_secs: lts,
            });
        }
        for (p, ts, up) in uptime {
            ds.uptime.push(SosUptimeRecord {
                probe: ProbeId(p),
                timestamp: SimTime(ts),
                uptime_secs: up,
            });
        }
        ds.normalize();
        ds
    })
}

proptest! {
    /// Encode→decode is the identity on normalized datasets, and the
    /// encoding has one canonical form (re-encoding the decoded copy
    /// reproduces the bytes).
    #[test]
    fn random_dataset_roundtrips(ds in arb_dataset()) {
        let bytes = ds.to_store_bytes();
        let back = AtlasDataset::from_store_bytes(&bytes).expect("clean bytes decode");
        prop_assert_eq!(&ds, &back);
        prop_assert_eq!(bytes, back.to_store_bytes());
    }
}

// ---------------------------------------------------------------------------
// Corruption: a flipped bit in any region is a typed error, never a panic
// ---------------------------------------------------------------------------

fn sample_dataset() -> AtlasDataset {
    let mut ds = AtlasDataset::default();
    for p in 0..20u32 {
        ds.meta.push(ProbeMeta {
            probe: ProbeId(p),
            version: ProbeVersion::V3,
            country: Country::new("DE").unwrap(),
            tags: vec![ProbeTag::Home],
        });
        for k in 0..10i64 {
            ds.connections.push(ConnectionLogEntry {
                probe: ProbeId(p),
                start: SimTime(k * 1000),
                end: SimTime(k * 1000 + 500),
                peer: PeerAddr::V4(Ipv4Addr::new(10, 0, p as u8, k as u8)),
            });
        }
    }
    ds.normalize();
    ds
}

/// The file's regions, located from the public layout: magic, segments,
/// footer, trailer (footer offset + end magic in the last 16 bytes).
fn regions(bytes: &[u8]) -> (std::ops::Range<usize>, std::ops::Range<usize>, std::ops::Range<usize>) {
    let n = bytes.len();
    let footer_at =
        u64::from_le_bytes(bytes[n - 16..n - 8].try_into().unwrap()) as usize;
    (MAGIC.len()..footer_at, footer_at..n - 16, n - 16..n)
}

#[test]
fn bit_flip_in_magic_is_bad_magic() {
    let mut bytes = sample_dataset().to_store_bytes();
    bytes[3] ^= 0x10;
    for mode in [ReadMode::Strict, ReadMode::Recover] {
        let err = match mode {
            ReadMode::Strict => AtlasDataset::from_store_bytes(&bytes).unwrap_err(),
            ReadMode::Recover => {
                AtlasDataset::from_store_bytes_recover(&bytes).unwrap_err()
            }
        };
        assert!(matches!(err, StoreError::BadMagic { .. }), "{mode:?}: {err}");
    }
}

#[test]
fn bit_flip_in_any_segment_is_segment_corrupt() {
    let bytes = sample_dataset().to_store_bytes();
    let (segments, _, _) = regions(&bytes);
    // Flip one bit in every 13th byte of the segment region (all of them
    // is the store crate's own exhaustive test; this pins the typed error
    // and the segment attribution at the dataset level).
    for at in segments.step_by(13) {
        let mut copy = bytes.clone();
        copy[at] ^= 0x01;
        let err = AtlasDataset::from_store_bytes(&copy).unwrap_err();
        match &err {
            StoreError::SegmentCorrupt { table, offset, .. } => {
                assert!(!table.is_empty(), "segment error must name its table");
                assert!((*offset as usize) < bytes.len());
            }
            other => panic!("byte {at}: expected SegmentCorrupt, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("segment"), "error should mention the segment: {msg}");
    }
}

#[test]
fn bit_flip_in_footer_is_bad_footer() {
    let bytes = sample_dataset().to_store_bytes();
    let (_, footer, _) = regions(&bytes);
    for at in footer.step_by(7) {
        let mut copy = bytes.clone();
        copy[at] ^= 0x80;
        let err = AtlasDataset::from_store_bytes(&copy).unwrap_err();
        assert!(
            matches!(err, StoreError::BadFooter { .. }),
            "byte {at}: expected BadFooter, got {err}"
        );
    }
}

#[test]
fn bit_flip_in_trailer_is_typed() {
    let bytes = sample_dataset().to_store_bytes();
    let (_, _, trailer) = regions(&bytes);
    for at in trailer {
        let mut copy = bytes.clone();
        copy[at] ^= 0x40;
        let err = AtlasDataset::from_store_bytes(&copy).unwrap_err();
        assert!(
            matches!(err, StoreError::BadTrailer { .. } | StoreError::BadFooter { .. }),
            "byte {at}: expected BadTrailer/BadFooter, got {err}"
        );
    }
}

#[test]
fn truncated_and_garbage_files_are_typed() {
    assert!(matches!(
        AtlasDataset::from_store_bytes(b"short").unwrap_err(),
        StoreError::TooShort { .. }
    ));
    let garbage = vec![0xA5u8; 256];
    assert!(matches!(
        AtlasDataset::from_store_bytes(&garbage).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
}

#[test]
fn recover_mode_skips_corrupt_segment_and_reports_it() {
    let ds = sample_dataset();
    let mut bytes = ds.to_store_bytes();
    // Damage one connections segment (table id 2) mid-body.
    let reader = FileReader::open(&bytes).expect("clean file opens");
    let seg = reader
        .segments()
        .iter()
        .find(|s| s.table == 2)
        .copied()
        .expect("a connections segment exists");
    bytes[seg.offset as usize + 4 + (seg.len / 2) as usize] ^= 0x04;

    // Strict: typed failure.
    assert!(matches!(
        AtlasDataset::from_store_bytes(&bytes).unwrap_err(),
        StoreError::SegmentCorrupt { .. }
    ));

    // Recover: the other tables survive intact, the drop is reported.
    let (recovered, report) = AtlasDataset::from_store_bytes_recover(&bytes).expect("recovers");
    assert!(!report.is_clean());
    assert_eq!(report.dropped.len(), 1);
    assert_eq!(report.dropped[0].table, "connections");
    assert_eq!(report.rows_dropped(), seg.rows);
    assert_eq!(recovered.meta, ds.meta);
    assert_eq!(recovered.uptime, ds.uptime);
    assert_eq!(
        recovered.connections.len() as u64,
        ds.connections.len() as u64 - seg.rows
    );
}

// ---------------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------------

#[test]
fn ground_truth_roundtrips_including_exact_floats() {
    let mut truth = GroundTruth::default();
    truth.isp_policies.insert(
        3320,
        IspPolicyTruth {
            name: "Deutsche Telekom".into(),
            country: "DE".into(),
            periodic_hours: vec![24, 720],
            renumbers_on_reconnect: true,
            periodic_weight: 1.0 / 3.0,
            probes: 977,
        },
    );
    truth.firmware_dates.push(SimTime(86_400));
    let bytes = truth.to_store_bytes();
    let back = GroundTruth::from_store_bytes(&bytes).expect("decodes");
    assert_eq!(
        truth.isp_policies[&3320].periodic_weight.to_bits(),
        back.isp_policies[&3320].periodic_weight.to_bits(),
        "float policy weight must round-trip bit-exactly"
    );
    assert_eq!(bytes, back.to_store_bytes());

    let mut corrupt = bytes.clone();
    let mid = MAGIC.len() + 6;
    corrupt[mid] ^= 0x01;
    assert!(GroundTruth::from_store_bytes(&corrupt).is_err());
}

// ---------------------------------------------------------------------------
// Directory loading: formats, sniffing, and error attribution
// ---------------------------------------------------------------------------

#[test]
fn save_dir_roundtrips_in_both_formats() {
    let ds = sample_dataset();
    for format in [StoreFormat::Store, StoreFormat::Jsonl] {
        let dir = temp_dir(&format!("fmt-{format}"));
        ds.save_dir_format(&dir, format).expect("saves");
        assert_eq!(AtlasDataset::sniff_format(&dir), format);
        let back = AtlasDataset::load_dir(&dir).expect("loads");
        assert_eq!(ds, back);
        // Forcing the written format explicitly also works.
        assert_eq!(ds, AtlasDataset::load_dir_as(&dir, format).expect("forced load"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn rewriting_in_the_other_format_leaves_no_stale_files() {
    let ds = sample_dataset();
    let dir = temp_dir("stale");
    ds.save_dir_format(&dir, StoreFormat::Jsonl).expect("saves jsonl");
    ds.save_dir_format(&dir, StoreFormat::Store).expect("saves store");
    assert!(!dir.join("meta.jsonl").exists(), "jsonl files must be removed");
    assert!(dir.join("dataset.store").exists());
    ds.save_dir_format(&dir, StoreFormat::Jsonl).expect("saves jsonl again");
    assert!(!dir.join("dataset.store").exists(), "store file must be removed");
    assert_eq!(ds, AtlasDataset::load_dir(&dir).expect("loads"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_errors_name_the_offending_file() {
    // Empty directory: the failure names the first missing jsonl file.
    let dir = temp_dir("missing");
    std::fs::create_dir_all(&dir).unwrap();
    let err = AtlasDataset::load_dir(&dir).unwrap_err();
    assert!(matches!(err, LoadError::Io { .. }));
    assert!(err.to_string().contains("meta.jsonl"), "{err}");

    // Garbage store file with no jsonl fallback: named, typed as store.
    std::fs::write(dir.join("dataset.store"), b"not a store file at all").unwrap();
    let err = AtlasDataset::load_dir(&dir).unwrap_err();
    assert!(matches!(
        err,
        LoadError::Store { source: StoreError::BadMagic { .. }, .. }
    ));
    assert!(err.to_string().contains("dataset.store"), "{err}");
    std::fs::remove_dir_all(&dir).ok();

    // A malformed jsonl line is attributed to its file.
    let dir = temp_dir("badline");
    sample_dataset().save_dir_format(&dir, StoreFormat::Jsonl).expect("saves");
    let path = dir.join("kroot.jsonl");
    let mut doc = std::fs::read_to_string(&path).unwrap();
    doc.push_str("{not json\n");
    std::fs::write(&path, doc).unwrap();
    let err = AtlasDataset::load_dir(&dir).unwrap_err();
    assert!(matches!(err, LoadError::Jsonl { .. }));
    assert!(err.to_string().contains("kroot.jsonl"), "{err}");
    std::fs::remove_dir_all(&dir).ok();

    // A corrupt segment inside dataset.store is named file-and-segment.
    let dir = temp_dir("badseg");
    let ds = sample_dataset();
    ds.save_dir(&dir).expect("saves");
    let path = dir.join("dataset.store");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x02;
    std::fs::write(&path, &bytes).unwrap();
    let err = AtlasDataset::load_dir(&dir).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("dataset.store"), "{msg}");
    // Recovery still loads what survived.
    let (recovered, report) = AtlasDataset::load_dir_recover(&dir).expect("recovers");
    assert!(!report.is_clean());
    assert!(recovered.meta.len() <= ds.meta.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_magic_falls_back_to_jsonl_when_legacy_files_exist() {
    let ds = sample_dataset();
    let dir = temp_dir("fallback");
    ds.save_dir_format(&dir, StoreFormat::Jsonl).expect("saves jsonl");
    // A stray non-store file named dataset.store must not shadow good data.
    std::fs::write(dir.join("dataset.store"), b"stray bytes, wrong magic").unwrap();
    assert_eq!(AtlasDataset::sniff_format(&dir), StoreFormat::Jsonl);
    assert_eq!(ds, AtlasDataset::load_dir(&dir).expect("falls back to jsonl"));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Streamed writer: interleaved shard runs merge to the canonical file
// ---------------------------------------------------------------------------

#[test]
fn sink_merges_interleaved_runs_to_canonical_bytes() {
    use dynaddr::store::{SegmentFileReader, SegmentSink, StreamWriter};

    let ds = sample_dataset();
    let dir = temp_dir("sink");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let spill = dir.join("sink.spill");

    // Three "shards" own probes by id % 3; each appends its key-sorted
    // rows in two batches, and the shards arrive in scrambled order.
    let mut sink = SegmentSink::with_segment_rows(&spill, 7).expect("create sink");
    for run in [2u64, 0, 1] {
        let meta: Vec<ProbeMeta> = ds
            .meta
            .iter()
            .filter(|m| u64::from(m.probe.0) % 3 == run)
            .cloned()
            .collect();
        let conns: Vec<ConnectionLogEntry> = ds
            .connections
            .iter()
            .filter(|c| u64::from(c.probe.0) % 3 == run)
            .cloned()
            .collect();
        sink.append(run, &meta[..meta.len() / 2]).expect("append meta");
        sink.append(run, &meta[meta.len() / 2..]).expect("append meta");
        sink.append(run, &conns[..conns.len() / 2]).expect("append conns");
        sink.append(run, &conns[conns.len() / 2..]).expect("append conns");
    }
    let mut merger = sink.finish().expect("seal spill");

    let out_path = dir.join("sink.store");
    let file = std::fs::File::create(&out_path).expect("create out");
    let mut w = StreamWriter::new(std::io::BufWriter::new(file)).expect("stream writer");
    merger.merge_table::<ProbeMeta, _>(&mut w).expect("merge meta");
    merger.merge_table::<ConnectionLogEntry, _>(&mut w).expect("merge connections");
    merger.merge_table::<KrootPingRecord, _>(&mut w).expect("merge kroot");
    merger.merge_table::<SosUptimeRecord, _>(&mut w).expect("merge uptime");
    w.finish().expect("finish file");

    // The merged file is the canonical encoding, bit for bit, and decodes
    // back to the dataset.
    let merged = std::fs::read(&out_path).expect("read merged");
    assert!(
        merged == ds.to_store_bytes(),
        "merged file differs from the canonical batch encoding"
    );
    assert_eq!(AtlasDataset::from_store_bytes(&merged).expect("decodes"), ds);

    // Bit flips in the appended segments stay typed through the
    // file-backed reader the streaming paths use.
    let (segments, _, _) = regions(&merged);
    for at in segments.step_by(41) {
        let mut copy = merged.clone();
        copy[at] ^= 0x02;
        std::fs::write(&out_path, &copy).expect("write damaged copy");
        let mut reader = SegmentFileReader::open(&out_path).expect("index still reads");
        let segs = reader.segments().to_vec();
        let hit = segs
            .iter()
            .position(|s| {
                (s.offset as usize) <= at && at < s.offset as usize + s.len as usize + 8
            })
            .expect("flip lands in a segment frame");
        let info = segs[hit];
        let ordinal = segs[..hit].iter().filter(|s| s.table == info.table).count();
        let err = match info.table {
            1 => reader.read_segment::<ProbeMeta>(ordinal, info).unwrap_err(),
            2 => reader.read_segment::<ConnectionLogEntry>(ordinal, info).unwrap_err(),
            other => panic!("unexpected table id {other}"),
        };
        assert!(
            matches!(err, StoreError::SegmentCorrupt { .. }),
            "byte {at}: expected SegmentCorrupt, got {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
