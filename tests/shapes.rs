//! Integration tests asserting the *qualitative shapes* of every table and
//! figure — the reproduction criteria of EXPERIMENTS.md. Absolute numbers
//! are world-scale-dependent; who wins, by roughly what factor, and where
//! the crossovers fall must match the paper.

mod common;

use common::harness;
use dynaddr::analysis::report;

// ---------------------------------------------------------------------------
// Table 2 — the filtering funnel
// ---------------------------------------------------------------------------

#[test]
fn table2_funnel_proportions() {
    let f = &harness().report.filter;
    // Partition property.
    assert_eq!(
        f.never_changed + f.dual_stack + f.ipv6_only + f.tagged + f.multihomed
            + f.testing_only + f.analyzable_geo,
        f.total
    );
    assert_eq!(f.analyzable_geo, f.analyzable_as + f.multi_as);
    // Paper proportions (of 10,977): dual-stack ≈ 34%, never ≈ 28%,
    // analyzable-geo ≈ 28%, v6-only ≈ 2%. Allow generous slack.
    let frac = |n: usize| n as f64 / f.total as f64;
    assert!((0.25..0.45).contains(&frac(f.dual_stack)), "dual {}", frac(f.dual_stack));
    assert!((0.20..0.45).contains(&frac(f.never_changed)), "never {}", frac(f.never_changed));
    assert!((0.15..0.40).contains(&frac(f.analyzable_geo)), "geo {}", frac(f.analyzable_geo));
    assert!(frac(f.ipv6_only) < 0.05);
    // Multi-AS probes are a strict minority of analyzable probes but exist.
    assert!(f.multi_as > 0 && f.multi_as < f.analyzable_geo / 2);
}

// ---------------------------------------------------------------------------
// Fig. 1 — geography
// ---------------------------------------------------------------------------

fn continent<'a>(code: &str) -> &'a dynaddr::analysis::pipeline::TtfSummary {
    harness()
        .report
        .fig1_continents
        .iter()
        .find(|s| s.label == code)
        .unwrap_or_else(|| panic!("continent {code} missing"))
}

#[test]
fn fig1_europe_has_daily_and_weekly_modes() {
    let eu = continent("EU");
    assert!(eu.mode_24h > 0.10, "EU 24h mode {}", eu.mode_24h);
    assert!(eu.mode_168h > 0.04, "EU 1w mode {}", eu.mode_168h);
}

#[test]
fn fig1_north_america_is_long_lived_and_modeless() {
    let na = continent("NA");
    let eu = continent("EU");
    assert!(na.mode_24h < 0.05, "NA 24h mode {}", na.mode_24h);
    // Paper: NA spent more than half its time in durations > 50 days.
    let le_50d = na
        .curve
        .iter()
        .take_while(|(h, _)| *h <= 50.0 * 24.0)
        .last()
        .map(|(_, f)| *f)
        .unwrap_or(0.0);
    assert!(le_50d < 0.5, "NA fraction ≤ 50d is {le_50d}");
    // And much longer-lived than Europe at the one-week mark.
    let at_1w = |s: &dynaddr::analysis::pipeline::TtfSummary| {
        s.curve
            .iter()
            .take_while(|(h, _)| *h <= 168.0 + 1e-9)
            .last()
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    };
    assert!(at_1w(eu) > 3.0 * at_1w(na), "EU {} vs NA {}", at_1w(eu), at_1w(na));
}

#[test]
fn fig1_africa_has_pronounced_daily_mode() {
    let af = continent("AF");
    assert!(af.mode_24h > 0.10, "AF 24h mode {}", af.mode_24h);
}

#[test]
fn fig1_south_america_has_multiple_modes() {
    let sa = continent("SA");
    // Paper: modes at 12 h (0.11), 28 h, 48 h, 192 h — and notably weak at
    // exactly 24 h compared to other continents.
    let twelve = sa
        .curve
        .iter()
        .take_while(|(h, _)| *h <= 12.6)
        .last()
        .map(|(_, f)| *f)
        .unwrap_or(0.0);
    assert!(twelve > 0.08, "SA 12h mass {twelve}");
    assert!(sa.mode_24h < 0.10, "SA 24h mode {}", sa.mode_24h);
}

// ---------------------------------------------------------------------------
// Figs. 2–3 — per-AS distributions
// ---------------------------------------------------------------------------

#[test]
fn fig2_top_ases_include_contrasting_regimes() {
    let r = &harness().report;
    assert!(r.fig2_top_ases.len() >= 4);
    // At least one strongly daily AS and one modeless long-lived AS.
    assert!(
        r.fig2_top_ases.iter().any(|s| s.mode_24h > 0.5),
        "a DTAG-like series must exist"
    );
    assert!(
        r.fig2_top_ases.iter().any(|s| s.mode_24h < 0.05 && s.median_hours > 24.0 * 7.0),
        "an LGI/Verizon-like series must exist: {:?}",
        r.fig2_top_ases.iter().map(|s| (&s.label, s.mode_24h, s.median_hours)).collect::<Vec<_>>()
    );
}

#[test]
fn fig3_germany_mixes_daily_and_stable_isps() {
    let de = &harness().report.fig3_country;
    assert!(de.len() >= 2, "need several German ASes, got {}", de.len());
    assert!(
        de.iter().any(|s| s.mode_24h > 0.5),
        "German daily renumberers must dominate some AS"
    );
}

// ---------------------------------------------------------------------------
// Table 5 — periodic ISPs
// ---------------------------------------------------------------------------

#[test]
fn table5_detects_the_flagship_periods() {
    let rows = &harness().report.table5;
    let d_of = |asn: u32| rows.iter().find(|r| r.asn == asn).map(|r| r.d_hours);
    assert_eq!(d_of(3215), Some(168), "Orange renumbers weekly");
    assert_eq!(d_of(3320), Some(24), "DTAG renumbers daily");
    assert_eq!(d_of(6057), Some(12), "ANTEL renumbers twice a day");
    assert_eq!(d_of(18881), Some(48), "GVT renumbers every two days");
    assert_eq!(d_of(6830), None, "LGI must not appear periodic");
    assert_eq!(d_of(701), None, "Verizon must not appear periodic");
    assert_eq!(d_of(31334), None, "Kabel Deutschland must not appear periodic");
}

#[test]
fn table5_all_rows_exist_and_24h_dominates() {
    let rows = &harness().report.table5;
    let all24 = rows.iter().find(|r| r.name == "All" && r.d_hours == 24).expect("All@24h");
    let all168 = rows.iter().find(|r| r.name == "All" && r.d_hours == 168).expect("All@168h");
    assert!(all24.fp25 > all168.fp25, "daily renumbering is the most common period");
    // Paper: 8.5% of AS-level probes at 24 h, 5.4% at one week.
    let f24 = all24.fp25 as f64 / all24.n as f64;
    let f168 = all168.fp25 as f64 / all168.n as f64;
    assert!((0.05..0.75).contains(&f24), "24h periodic fraction {f24}");
    assert!((0.02..0.40).contains(&f168), "168h periodic fraction {f168}");
    // Weekly plans are overwhelmingly harmonic/bounded (paper: 94–98%).
    assert!(all168.pct_max_le_d > 70.0);
    assert!(all168.pct_harmonic > 80.0);
}

#[test]
fn table5_gvt_overruns_are_not_harmonic() {
    let rows = &harness().report.table5;
    let gvt = rows.iter().find(|r| r.asn == 18881).expect("GVT row");
    assert!(gvt.pct_max_le_d < 30.0, "GVT probes overrun the cap");
    assert!(gvt.pct_harmonic < 40.0, "GVT overruns are not multiples of d");
    // Contrast with an orderly daily ISP.
    let dtag = rows.iter().find(|r| r.asn == 3320).expect("DTAG row");
    assert!(dtag.pct_harmonic > 60.0);
}

// ---------------------------------------------------------------------------
// Figs. 4–5 — synchronization
// ---------------------------------------------------------------------------

#[test]
fn fig4_fig5_orange_free_runs_dtag_synchronizes() {
    let hourly = &harness().report.hourly;
    let orange = hourly.iter().find(|h| h.asn == 3215).expect("Orange panel");
    let dtag = hourly.iter().find(|h| h.asn == 3320).expect("DTAG panel");
    assert!(orange.hist.iter().sum::<usize>() > 100);
    assert!(dtag.hist.iter().sum::<usize>() > 300);
    // Orange: roughly uniform (peak 6h window near 0.25); DTAG: most
    // changes between 00:00 and 06:00 GMT (paper: almost three quarters).
    assert!(orange.peak6h_fraction < 0.45, "Orange peak {}", orange.peak6h_fraction);
    assert!(dtag.peak6h_fraction > 0.55, "DTAG peak {}", dtag.peak6h_fraction);
    let night: usize = dtag.hist[0..6].iter().sum();
    let total: usize = dtag.hist.iter().sum();
    assert!(
        night as f64 / total as f64 > 0.5,
        "DTAG night-window fraction {}",
        night as f64 / total as f64
    );
}

// ---------------------------------------------------------------------------
// Fig. 6 — firmware spikes
// ---------------------------------------------------------------------------

#[test]
fn fig6_firmware_spikes_land_on_push_dates() {
    let fw = &harness().report.firmware;
    let configured: Vec<i64> = harness()
        .out
        .truth
        .firmware_dates
        .iter()
        .map(|d| d.day_of_year())
        .collect();
    assert_eq!(configured.len(), 5);
    // Every detected spike must be within 2 days of a configured push, and
    // most pushes must be detected.
    for day in &fw.update_days {
        assert!(
            configured.iter().any(|c| (c - day).abs() <= 2),
            "spurious spike on day {day}; configured {configured:?}"
        );
    }
    assert!(
        fw.update_days.len() >= 3,
        "at least 3 of 5 pushes detected: {:?}",
        fw.update_days
    );
    // Spike days dwarf the median.
    for &day in &fw.update_days {
        assert!(fw.daily[day as usize] as f64 > 2.0 * fw.median);
    }
}

// ---------------------------------------------------------------------------
// Figs. 7–8 and Table 6 — outage-driven changes
// ---------------------------------------------------------------------------

#[test]
fn fig7_ppp_isps_renumber_on_network_outages() {
    let panels = &harness().report.fig7_network;
    assert!(!panels.is_empty());
    let orange = panels.iter().find(|p| p.asn == 3215).expect("Orange in Fig 7");
    // Paper: around half of Orange probes had P(ac|nw) = 1.
    assert!(orange.fraction_ge(1.0) > 0.4, "Orange P=1 fraction {}", orange.fraction_ge(1.0));
    assert!(orange.fraction_ge(0.8) > 0.6);
}

#[test]
fn fig7_dhcp_isps_rarely_renumber_on_outages() {
    // LGI/Verizon probes — fetch their per-probe conditional probabilities
    // regardless of panel membership.
    use dynaddr::analysis::assoc::{cond_prob, OutageKind};
    use dynaddr::analysis::filtering::filter_probes;
    use dynaddr::analysis::pipeline::outage_analysis;
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);
    let oa = outage_analysis(&h.out.dataset, &filtered.probes);
    let mut lgi_probs = Vec::new();
    for p in &filtered.probes {
        if p.multi_as || p.primary_asn.0 != 6830 {
            continue;
        }
        let cp = cond_prob(p.probe(), &oa.outages, OutageKind::Network);
        if cp.outages >= 3 {
            lgi_probs.push(cp.p());
        }
    }
    assert!(lgi_probs.len() >= 4, "LGI probes with outages: {}", lgi_probs.len());
    let high = lgi_probs.iter().filter(|&&p| p > 0.8).count();
    assert!(
        (high as f64) < 0.3 * lgi_probs.len() as f64,
        "LGI probes mostly keep addresses across outages: {lgi_probs:?}"
    );
}

#[test]
fn table6_is_consistent_and_headed_by_ppp_isps() {
    let t6 = &harness().report.table6;
    let all = &t6[0];
    assert_eq!(all.name, "All");
    assert!(all.n > 30);
    for row in t6 {
        assert!(row.pct_nw_eq1 <= row.pct_nw_gt08 + 1e-9);
        assert!(row.pct_pw_eq1 <= row.pct_pw_gt08 + 1e-9);
        if row.asn != 0 {
            // Rows qualify via P(ac|nw) > 0.8 probes; power behaviour
            // corroborates (paper §5.3 finding).
            assert!(row.pct_pw_gt08 > 30.0, "{}: power {}", row.name, row.pct_pw_gt08);
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 — renumbering by outage duration
// ---------------------------------------------------------------------------

#[test]
fn fig9_lgi_rises_with_duration_orange_flat_high() {
    let f9 = &harness().report.fig9;
    let lgi = f9.iter().find(|p| p.asn == 6830).expect("LGI panel");
    let orange = f9.iter().find(|p| p.asn == 3215).expect("Orange panel");

    // LGI: short outages almost never renumber; 12h+ outages often do.
    let pct = lgi.buckets.percentages();
    let short = pct[0].unwrap_or(0.0); // <5m
    assert!(short < 10.0, "LGI <5m renumber rate {short}");
    let long_total: usize = lgi.buckets.total[8..].iter().sum();
    let long_renum: usize = lgi.buckets.renumbered[8..].iter().sum();
    assert!(long_total > 0, "LGI must see some 12h+ outages");
    let long_rate = 100.0 * long_renum as f64 / long_total as f64;
    assert!(long_rate > 25.0, "LGI 12h+ renumber rate {long_rate}");

    // Orange: even the shortest outages renumber (paper: 91% under 5 min).
    let o_pct = orange.buckets.percentages();
    assert!(o_pct[0].unwrap_or(0.0) > 75.0, "Orange <5m rate {:?}", o_pct[0]);
    assert!(orange.buckets.total[0] > 30, "Orange sees many short outages");
}

// ---------------------------------------------------------------------------
// Table 7 — prefix changes
// ---------------------------------------------------------------------------

#[test]
fn table7_changes_span_prefixes() {
    let t7 = &harness().report.table7;
    assert!(t7.overall.changes > 10_000);
    // Paper: 48.9% of changes crossed BGP prefixes, 33.5% crossed /8s.
    assert!(
        (25.0..70.0).contains(&t7.overall.pct_bgp()),
        "overall diff-BGP {}",
        t7.overall.pct_bgp()
    );
    assert!(
        (15.0..55.0).contains(&t7.overall.pct_8()),
        "overall diff-/8 {}",
        t7.overall.pct_8()
    );
    // DTAG is among the most prefix-local ISPs (paper: 24%).
    let dtag = t7.per_as.get(&3320).expect("DTAG in Table 7");
    assert!(dtag.pct_bgp() < t7.overall.pct_bgp());
    // Consistency: diff_8 ≤ diff_16 cannot be asserted in general (BGP
    // prefixes are not nested in /16s), but counts never exceed changes.
    for (asn, c) in &t7.per_as {
        assert!(c.diff_bgp <= c.changes && c.diff_16 <= c.changes && c.diff_8 <= c.changes,
            "AS{asn} counts exceed changes");
        assert!(c.diff_8 <= c.diff_16, "/8 change implies /16 change (AS{asn})");
    }
}

// ---------------------------------------------------------------------------
// Rendering — the full report renders without panicking and mentions
// every experiment
// ---------------------------------------------------------------------------

#[test]
fn full_report_renders() {
    let h = harness();
    let text = report::render_full(&h.report, &h.cfg.as_names);
    for needle in [
        "Table 2", "Fig 1", "Fig 2", "Fig 3", "Table 5", "Hour-of-day", "Fig 6",
        "Fig 7", "Fig 8", "Table 6", "Fig 9", "Table 7",
    ] {
        assert!(text.contains(needle), "rendered report misses {needle}");
    }
    assert!(text.len() > 4_000);
}
