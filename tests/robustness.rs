//! Robustness: the pipeline must behave sensibly on degenerate, hostile,
//! or externally produced data — empty datasets, single probes, unsorted
//! logs, adversarial records — and its extraction invariants must hold for
//! arbitrary well-formed inputs (property tests).

use dynaddr::analysis::changes::{extract_events, strip_testing_entries};
use dynaddr::analysis::pipeline::{analyze, AnalysisConfig};
use dynaddr::atlas::logs::{AtlasDataset, ConnectionLogEntry, PeerAddr, ProbeMeta};
use dynaddr::ip2as::{MonthlySnapshots, RouteTable};
use dynaddr::types::{ProbeId, SimTime};
use proptest::prelude::*;

fn empty_snaps() -> MonthlySnapshots {
    MonthlySnapshots::uniform(RouteTable::new())
}

#[test]
fn empty_dataset_analyzes_to_empty_report() {
    let ds = AtlasDataset::default();
    let report = analyze(&ds, &empty_snaps(), &AnalysisConfig::default());
    assert_eq!(report.filter.total, 0);
    assert!(report.fig1_continents.is_empty());
    assert!(report.table5.is_empty());
    assert_eq!(report.table7.overall.changes, 0);
    assert!(report.firmware.update_days.is_empty());
    // Rendering an empty report must not panic.
    let text = dynaddr::analysis::report::render_full(&report, &Default::default());
    assert!(text.contains("Table 2"));
}

#[test]
fn metadata_without_logs_is_never_changed_free() {
    let mut ds = AtlasDataset::default();
    ds.meta.push(ProbeMeta { probe: ProbeId(1), ..ProbeMeta::default() });
    ds.normalize();
    let report = analyze(&ds, &empty_snaps(), &AnalysisConfig::default());
    assert_eq!(report.filter.total, 1);
    // No connections at all: classified IPv6-only (no v4 evidence).
    assert_eq!(report.filter.ipv6_only, 1);
}

#[test]
fn single_connection_probe() {
    let mut ds = AtlasDataset::default();
    ds.meta.push(ProbeMeta { probe: ProbeId(1), ..ProbeMeta::default() });
    ds.connections.push(ConnectionLogEntry {
        probe: ProbeId(1),
        start: SimTime(0),
        end: SimTime(3_600),
        peer: PeerAddr::V4("10.0.0.1".parse().unwrap()),
    });
    ds.normalize();
    let report = analyze(&ds, &empty_snaps(), &AnalysisConfig::default());
    assert_eq!(report.filter.never_changed, 1);
}

#[test]
fn unannounced_address_space_degrades_gracefully() {
    // Changes in space absent from the IP-to-AS snapshots map to AS0 and
    // still produce durations (the paper keeps unmapped space in the
    // geographic analysis).
    let mut ds = AtlasDataset::default();
    ds.meta.push(ProbeMeta { probe: ProbeId(1), ..ProbeMeta::default() });
    for k in 0..10i64 {
        ds.connections.push(ConnectionLogEntry {
            probe: ProbeId(1),
            start: SimTime(k * 86_400),
            end: SimTime(k * 86_400 + 80_000),
            peer: PeerAddr::V4(format!("10.0.0.{}", k + 1).parse().unwrap()),
        });
    }
    ds.normalize();
    let report = analyze(&ds, &empty_snaps(), &AnalysisConfig::default());
    assert_eq!(report.filter.analyzable_geo, 1);
    assert_eq!(report.table7.overall.changes, 9);
    // Both sides unannounced → same (absent) BGP prefix.
    assert_eq!(report.table7.overall.diff_bgp, 0);
}

#[test]
fn testing_only_probe_with_multiple_testing_entries() {
    let mut entries: Vec<ConnectionLogEntry> = (0..3)
        .map(|k| ConnectionLogEntry {
            probe: ProbeId(1),
            start: SimTime(k * 1_000),
            end: SimTime(k * 1_000 + 500),
            peer: PeerAddr::V4(dynaddr::atlas::logs::testing_address()),
        })
        .collect();
    assert!(strip_testing_entries(&mut entries));
    assert!(entries.is_empty(), "all-leading testing entries removed");
}

// ---------------------------------------------------------------------------
// Property tests on extraction invariants
// ---------------------------------------------------------------------------

/// Arbitrary well-formed per-probe connection log: increasing, non-
/// overlapping entries over a small address alphabet (so changes and
/// repeats both occur).
fn arb_entries() -> impl Strategy<Value = Vec<ConnectionLogEntry>> {
    proptest::collection::vec((1i64..50_000, 1i64..40_000, 0u8..6), 0..40).prop_map(|segs| {
        let mut t = 0i64;
        let mut out = Vec::new();
        for (gap, len, addr) in segs {
            let start = t + gap;
            let end = start + len;
            t = end;
            out.push(ConnectionLogEntry {
                probe: ProbeId(7),
                start: SimTime(start),
                end: SimTime(end),
                peer: PeerAddr::V4(format!("10.0.0.{}", addr + 1).parse().unwrap()),
            });
        }
        out
    })
}

proptest! {
    /// Spans partition the entries: every entry belongs to exactly one
    /// span, span boundaries coincide with changes, and counts line up.
    #[test]
    fn extraction_invariants(entries in arb_entries()) {
        let ev = extract_events(&entries);
        if entries.is_empty() {
            prop_assert!(ev.spans.is_empty());
            return Ok(());
        }
        // Count invariants.
        prop_assert_eq!(ev.gaps.len(), entries.len() - 1);
        prop_assert_eq!(ev.spans.len(), ev.changes.len() + 1);
        let changed_gaps = ev.gaps.iter().filter(|g| g.address_changed).count();
        prop_assert_eq!(changed_gaps, ev.changes.len());

        // Complete spans are exactly the interior ones.
        let complete = ev.spans.iter().filter(|s| s.complete).count();
        prop_assert_eq!(complete, ev.spans.len().saturating_sub(2).min(ev.changes.len().saturating_sub(1)));

        // Spans are time-ordered, non-overlapping, and cover the log range.
        for pair in ev.spans.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
            prop_assert!(pair[0].addr != pair[1].addr, "adjacent spans differ in address");
        }
        prop_assert_eq!(ev.spans[0].start, entries[0].start);
        prop_assert_eq!(ev.spans.last().unwrap().end, entries.last().unwrap().end);

        // Every change connects consecutive spans.
        for (i, c) in ev.changes.iter().enumerate() {
            prop_assert_eq!(c.from, ev.spans[i].addr);
            prop_assert_eq!(c.to, ev.spans[i + 1].addr);
            prop_assert_eq!(c.gap_start, ev.spans[i].end);
            prop_assert_eq!(c.gap_end, ev.spans[i + 1].start);
        }

        // Durations are positive and no longer than the whole log range.
        let range = entries.last().unwrap().end - entries[0].start;
        for d in ev.durations() {
            prop_assert!(d.secs() > 0);
            prop_assert!(d <= range);
        }
    }

    /// Duration clustering: fractions sum to 1, members are conserved, and
    /// every cluster honours the relative tolerance.
    #[test]
    fn clustering_invariants(
        hours in proptest::collection::vec(0.05f64..2_000.0, 1..60),
        tol in 0.01f64..0.2,
    ) {
        use dynaddr::analysis::ttf::duration_clusters;
        use dynaddr::types::SimDuration;
        let durations: Vec<SimDuration> =
            hours.iter().map(|h| SimDuration::from_hours_f64(*h)).collect();
        let clusters = duration_clusters(&durations, tol);
        let total_members: usize = clusters.iter().map(|c| c.count).sum();
        prop_assert_eq!(total_members, durations.len());
        let total_fraction: f64 = clusters.iter().map(|c| c.fraction).sum();
        prop_assert!((total_fraction - 1.0).abs() < 1e-6);
        // Cluster centres are ordered.
        for pair in clusters.windows(2) {
            prop_assert!(pair[0].center_hours <= pair[1].center_hours);
        }
    }

    /// JSONL round-trip for arbitrary connection entries.
    #[test]
    fn jsonl_roundtrip(entries in arb_entries()) {
        use dynaddr::atlas::logs::{from_jsonl, to_jsonl};
        let doc = to_jsonl(&entries);
        let back: Vec<ConnectionLogEntry> = from_jsonl(&doc).unwrap();
        prop_assert_eq!(entries, back);
    }
}
