//! Thread-count invariance: the parallel executor must not change a single
//! byte of the analysis output. The whole pipeline — simulation, filtering,
//! and every table/figure — runs pinned to 1 thread, to 2 threads, and with
//! the override cleared (whatever the machine offers), and the serialized
//! reports are compared byte for byte. The simulator gets its own check:
//! the full `SimOutput` (dataset and ground truth) must also be invariant
//! across forced shard layouts, not just worker counts.

use dynaddr::analysis::pipeline::{analyze, AnalysisConfig, AnalysisReport};
use dynaddr::atlas::engine::set_bucket_width;
use dynaddr::atlas::world::{paper_route_tables, paper_world};
use dynaddr::atlas::{simulate, simulate_with_options, SimOptions};

fn report_at(threads: Option<usize>) -> AnalysisReport {
    dynaddr_exec::set_threads(threads);
    let world = paper_world(0.03, 7);
    let out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let report = analyze(&out.dataset, &snaps, &AnalysisConfig::default());
    dynaddr_exec::set_threads(None);
    report
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let sequential = serde_json::to_string(&report_at(Some(1))).expect("serializes");
    let two = serde_json::to_string(&report_at(Some(2))).expect("serializes");
    assert_eq!(sequential, two, "1-thread and 2-thread reports differ");

    // Whatever available_parallelism() picks must agree too.
    let ambient = serde_json::to_string(&report_at(None)).expect("serializes");
    assert_eq!(sequential, ambient, "1-thread and ambient-thread reports differ");
}

#[test]
fn oversubscribed_executor_is_still_identical() {
    // More workers than work: empty chunks and tiny chunks must not change
    // ordering or drop items.
    let sequential = serde_json::to_string(&report_at(Some(1))).expect("serializes");
    let many = serde_json::to_string(&report_at(Some(64))).expect("serializes");
    assert_eq!(sequential, many, "64-thread report differs from sequential");
}

/// Serializes a full `SimOutput` — all four dataset documents plus the
/// ground truth — produced at the given worker count and sharding options.
fn sim_fingerprint_opts(threads: Option<usize>, opts: &SimOptions, seed: u64) -> String {
    dynaddr_exec::set_threads(threads);
    let world = paper_world(0.02, seed);
    let out = simulate_with_options(&world, opts);
    dynaddr_exec::set_threads(None);
    let docs = out.dataset.to_jsonl();
    let truth = serde_json::to_string(&out.truth).expect("truth serializes");
    format!(
        "{}\n{}\n{}\n{}\n{truth}",
        docs.meta, docs.connections, docs.kroot, docs.uptime
    )
}

/// [`sim_fingerprint_opts`] with only a forced shard cap.
fn sim_fingerprint(threads: Option<usize>, cap: Option<usize>, seed: u64) -> String {
    sim_fingerprint_opts(threads, &SimOptions { shard_cap: cap, ..SimOptions::default() }, seed)
}

#[test]
fn simulation_is_byte_identical_across_threads_and_shard_layouts() {
    for seed in [7u64, 23] {
        let base = sim_fingerprint(Some(1), None, seed);
        // Worker-count invariance at the natural one-shard-per-component
        // layout: 2 workers, heavy oversubscription, and the ambient count.
        for threads in [Some(2), Some(64), None] {
            assert_eq!(
                base,
                sim_fingerprint(threads, None, seed),
                "threads={threads:?} seed={seed}"
            );
        }
        // Layout invariance: folding all components into one shard, or into
        // an arbitrary few, must not change a byte either.
        for cap in [Some(1), Some(3)] {
            assert_eq!(
                base,
                sim_fingerprint(Some(4), cap, seed),
                "cap={cap:?} seed={seed}"
            );
        }
    }
}

/// Store-encodes a freshly simulated dataset and truth at the given worker
/// count, returning both byte blobs.
fn store_bytes_at(threads: Option<usize>) -> (Vec<u8>, Vec<u8>) {
    dynaddr_exec::set_threads(threads);
    let world = paper_world(0.02, 7);
    let out = simulate(&world);
    let (dataset, truth) = (out.dataset.to_store_bytes(), out.truth.to_store_bytes());
    dynaddr_exec::set_threads(None);
    (dataset, truth)
}

#[test]
fn store_encoding_is_byte_identical_across_thread_counts() {
    let (base_ds, base_truth) = store_bytes_at(Some(1));
    for threads in [Some(2), Some(64), None] {
        let (ds, truth) = store_bytes_at(threads);
        assert_eq!(base_ds, ds, "dataset.store bytes differ at threads={threads:?}");
        assert_eq!(base_truth, truth, "truth.store bytes differ at threads={threads:?}");
    }

    // Decoding must reproduce the normalized in-memory dataset exactly, at
    // any worker count, and re-encoding the decoded copy must reproduce the
    // file bytes (the format has one canonical form).
    dynaddr_exec::set_threads(Some(1));
    let expect = simulate(&paper_world(0.02, 7));
    dynaddr_exec::set_threads(None);
    for threads in [Some(1), Some(2), Some(64), None] {
        dynaddr_exec::set_threads(threads);
        let ds = dynaddr::atlas::AtlasDataset::from_store_bytes(&base_ds).expect("decodes");
        let truth = dynaddr::atlas::GroundTruth::from_store_bytes(&base_truth).expect("decodes");
        dynaddr_exec::set_threads(None);
        assert_eq!(expect.dataset, ds, "decoded dataset differs at threads={threads:?}");
        assert_eq!(
            serde_json::to_string(&expect.truth).expect("serializes"),
            serde_json::to_string(&truth).expect("serializes"),
            "decoded truth differs at threads={threads:?}"
        );
        assert_eq!(base_ds, ds.to_store_bytes(), "re-encode differs at threads={threads:?}");
    }
}

#[test]
fn simulation_is_byte_identical_across_bucket_widths_and_splitting() {
    for seed in [7u64, 23] {
        // Default calendar layout, intra-ISP splitting on (the default).
        let base = sim_fingerprint(Some(1), None, seed);
        // Forced non-default bucket widths: hour-wide, week-wide, and a
        // width that divides nothing evenly. The calendar layout must
        // never leak into the output.
        for width in [3_600i64, 7 * 86_400, 100_000] {
            set_bucket_width(Some(width));
            let got = sim_fingerprint(Some(2), None, seed);
            set_bucket_width(None);
            assert_eq!(base, got, "width={width} seed={seed}");
        }
        // The coarse pre-splitting layout (all share-nets of an ASN
        // unified) must produce the same bytes, with and without a cap.
        for cap in [None, Some(2)] {
            let coarse =
                SimOptions { shard_cap: cap, unify_all_isps: true, ..SimOptions::default() };
            assert_eq!(
                base,
                sim_fingerprint_opts(Some(4), &coarse, seed),
                "unify_all cap={cap:?} seed={seed}"
            );
        }
    }
}

#[test]
fn streamed_pipeline_matches_materialized_byte_for_byte() {
    // Shard outputs encoded into the store file as they complete, and the
    // out-of-core analyzer over that file, must both be byte-identical to
    // the batch paths at any worker count.
    use dynaddr::analysis::pipeline::analyze_streamed_batched;
    use dynaddr::atlas::simulate_to_store;

    let dir = std::env::temp_dir().join(format!("dynaddr-streamed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for seed in [7u64, 23] {
        let world = paper_world(0.02, seed);
        dynaddr_exec::set_threads(Some(1));
        let out = simulate(&world);
        dynaddr_exec::set_threads(None);
        let batch_bytes = out.dataset.to_store_bytes();
        let batch_truth = serde_json::to_string(&out.truth).expect("truth serializes");
        let snaps = paper_route_tables(&world);
        let batch_report =
            serde_json::to_string(&analyze(&out.dataset, &snaps, &AnalysisConfig::default()))
                .expect("report serializes");

        for threads in [Some(1), Some(2), None] {
            dynaddr_exec::set_threads(threads);
            let path = dir.join(format!("streamed-{seed}.store"));
            let (truth, _stats) =
                simulate_to_store(&world, &SimOptions::default(), &path).expect("streamed sim");
            // 16 probes per batch forces the analyzer through many
            // partial views of the dataset.
            let streamed_report = serde_json::to_string(
                &analyze_streamed_batched(&path, &snaps, &AnalysisConfig::default(), 16)
                    .expect("streamed analyze"),
            )
            .expect("report serializes");
            dynaddr_exec::set_threads(None);

            let streamed_bytes = std::fs::read(&path).expect("read streamed store");
            assert!(
                batch_bytes == streamed_bytes,
                "dataset.store bytes differ at threads={threads:?} seed={seed}"
            );
            assert_eq!(
                batch_truth,
                serde_json::to_string(&truth).expect("truth serializes"),
                "ground truth differs at threads={threads:?} seed={seed}"
            );
            assert_eq!(
                batch_report, streamed_report,
                "streamed report differs at threads={threads:?} seed={seed}"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn shard_local_build_matches_serial_build_byte_for_byte() {
    // Nets and probes are normally materialized *inside* the parallel shard
    // map; `serial_build` materializes every shard up front on one thread.
    // The two construction orders must not change a byte of the full
    // `SimOutput`, at any worker count, under either unification layout.
    for seed in [7u64, 23] {
        let serial = SimOptions { serial_build: true, ..SimOptions::default() };
        let base = sim_fingerprint_opts(Some(1), &serial, seed);
        for threads in [Some(1), Some(2), Some(64), None] {
            assert_eq!(
                base,
                sim_fingerprint_opts(threads, &SimOptions::default(), seed),
                "shard-local build differs from serial build at threads={threads:?} seed={seed}"
            );
        }
        for unify in [false, true] {
            let opts = SimOptions { unify_all_isps: unify, ..SimOptions::default() };
            let serial_opts = SimOptions { serial_build: true, ..opts };
            assert_eq!(
                sim_fingerprint_opts(Some(4), &serial_opts, seed),
                sim_fingerprint_opts(Some(4), &opts, seed),
                "serial vs shard-local build differs: unify_all_isps={unify} seed={seed}"
            );
            assert_eq!(
                base,
                sim_fingerprint_opts(Some(4), &opts, seed),
                "layout changed output: unify_all_isps={unify} seed={seed}"
            );
        }
    }
}

#[test]
fn daemon_replay_seal_is_byte_identical_across_thread_counts() {
    // The keystone daemon property under the executor: replaying the full
    // stream from t=0 into the live per-probe machines and sealing must
    // render byte-for-byte the batch analyzer's report, at 1 thread, 2
    // threads, heavy oversubscription, and the ambient count. (The ci.sh
    // daemon smoke re-checks the same equivalence end-to-end through the
    // dynaddrd binary and its Unix socket.)
    use dynaddr::analysis::report::render_full;
    use dynaddr_daemon::{Daemon, Rate};

    let world = paper_world(0.02, 7);
    dynaddr_exec::set_threads(Some(1));
    let out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let cfg = AnalysisConfig::default();
    let batch = render_full(&analyze(&out.dataset, &snaps, &cfg), &cfg.as_names);
    dynaddr_exec::set_threads(None);

    for threads in [Some(1), Some(2), Some(64), None] {
        dynaddr_exec::set_threads(threads);
        let daemon = Daemon::new(snaps.clone(), cfg.clone());
        daemon.replay(&out.dataset, Rate::Max);
        let sealed = daemon.seal_text();
        dynaddr_exec::set_threads(None);
        assert_eq!(
            batch, sealed,
            "daemon replay+seal differs from batch analyze at threads={threads:?}"
        );
    }
}

#[test]
fn tracing_never_changes_a_report_byte() {
    // Observability is strictly off the output path: the report must be
    // byte-identical with the JSONL trace sink on and off, at every worker
    // count. Heartbeats are forced hot (0-second interval) so the traced
    // runs actually exercise the emit path, not just the enabled check.
    let untraced = serde_json::to_string(&report_at(Some(1))).expect("serializes");

    let path = std::env::temp_dir()
        .join(format!("dynaddr-determinism-trace-{}.jsonl", std::process::id()));
    std::env::set_var("DYNADDR_HEARTBEAT_SECS", "0");
    for threads in [Some(1), Some(2), Some(64), None] {
        dynaddr_obs::init_trace(&path).expect("create trace sink");
        let traced = serde_json::to_string(&report_at(threads)).expect("serializes");
        dynaddr_obs::flush_trace();
        dynaddr_obs::disable_trace();
        assert_eq!(
            untraced, traced,
            "tracing changed the report at threads={threads:?}"
        );
    }
    std::env::remove_var("DYNADDR_HEARTBEAT_SECS");

    // The sidecar itself must be real JSONL: every line parses, and the
    // last traced run produced span events.
    let sidecar = std::fs::read_to_string(&path).expect("read trace sidecar");
    let mut spans = 0usize;
    for line in sidecar.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("each trace line is JSON");
        let serde::Value::Object(fields) = v else {
            panic!("trace line is not an object: {line}");
        };
        let (_, ev) =
            fields.iter().find(|(k, _)| k == "ev").expect("trace event has an ev field");
        if *ev == serde::Value::Str("span".to_string()) {
            spans += 1;
        }
    }
    assert!(spans > 0, "traced run produced no span events");
    std::fs::remove_file(&path).ok();
}
