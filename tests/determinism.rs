//! Thread-count invariance: the parallel executor must not change a single
//! byte of the analysis output. The whole pipeline — simulation, filtering,
//! and every table/figure — runs pinned to 1 thread, to 2 threads, and with
//! the override cleared (whatever the machine offers), and the serialized
//! reports are compared byte for byte.

use dynaddr::analysis::pipeline::{analyze, AnalysisConfig, AnalysisReport};
use dynaddr::atlas::world::{paper_route_tables, paper_world};
use dynaddr::atlas::simulate;

fn report_at(threads: Option<usize>) -> AnalysisReport {
    dynaddr_exec::set_threads(threads);
    let world = paper_world(0.03, 7);
    let out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let report = analyze(&out.dataset, &snaps, &AnalysisConfig::default());
    dynaddr_exec::set_threads(None);
    report
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let sequential = serde_json::to_string(&report_at(Some(1))).expect("serializes");
    let two = serde_json::to_string(&report_at(Some(2))).expect("serializes");
    assert_eq!(sequential, two, "1-thread and 2-thread reports differ");

    // Whatever available_parallelism() picks must agree too.
    let ambient = serde_json::to_string(&report_at(None)).expect("serializes");
    assert_eq!(sequential, ambient, "1-thread and ambient-thread reports differ");
}

#[test]
fn oversubscribed_executor_is_still_identical() {
    // More workers than work: empty chunks and tiny chunks must not change
    // ordering or drop items.
    let sequential = serde_json::to_string(&report_at(Some(1))).expect("serializes");
    let many = serde_json::to_string(&report_at(Some(64))).expect("serializes");
    assert_eq!(sequential, many, "64-thread report differs from sequential");
}
