//! The §8 future-work extension, validated on the full simulated world:
//! the detector must recover the one configured administrative renumbering
//! event and nothing else, despite tens of thousands of ordinary changes.

mod common;

use common::harness;
use dynaddr::analysis::admin::{attribute_churn, detect_admin_renumbering, AdminConfig};
use dynaddr::analysis::filtering::filter_probes;

#[test]
fn detects_the_configured_event_and_nothing_else() {
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);
    let events = detect_admin_renumbering(&filtered.probes, &h.snaps, &AdminConfig::default());
    let (truth_asn, truth_when) =
        h.out.truth.admin_renumbering.expect("world configures one event");

    assert_eq!(
        events.len(),
        1,
        "exactly the configured event must be found: {events:?}"
    );
    let e = &events[0];
    assert_eq!(e.asn, truth_asn.0);
    assert!(
        (e.start - truth_when).secs().abs() < 6 * 3_600,
        "detected {} vs configured {}",
        e.start,
        truth_when
    );
    assert!(e.probes.len() >= 3);
    // The new prefixes the detector reports must belong to the renumbering
    // AS in the post-migration snapshots.
    for p in &e.new_prefixes {
        assert_eq!(h.snaps.month(12).origin(p.nth(1)).map(|o| o.asn.0), Some(truth_asn.0));
    }
}

#[test]
fn churn_is_overwhelmingly_not_administrative() {
    // The paper found exactly one administrative instance in a year of
    // data and notes the CDN-observed 8%-per-day churn must come from
    // elsewhere — our attribution agrees.
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);
    let events = detect_admin_renumbering(&filtered.probes, &h.snaps, &AdminConfig::default());
    let att = attribute_churn(&filtered.probes, &events);
    assert!(att.total_changes > 10_000);
    assert!(att.administrative > 0);
    assert!(
        att.admin_fraction() < 0.01,
        "administrative fraction {}",
        att.admin_fraction()
    );
}

#[test]
fn stricter_thresholds_still_find_it_looser_ones_add_no_phantoms() {
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);
    // Stricter: demand 60% of the AS moved.
    let strict = AdminConfig { min_fraction: 0.6, ..AdminConfig::default() };
    let strict_events = detect_admin_renumbering(&filtered.probes, &h.snaps, &strict);
    assert!(strict_events.len() <= 1);
    // Looser fraction: still only the one AS migrates prefixes en masse.
    let loose = AdminConfig { min_fraction: 0.3, ..AdminConfig::default() };
    let loose_events = detect_admin_renumbering(&filtered.probes, &h.snaps, &loose);
    let distinct_asns: std::collections::BTreeSet<u32> =
        loose_events.iter().map(|e| e.asn).collect();
    assert!(
        distinct_asns.len() <= 2,
        "phantom administrative events: {loose_events:?}"
    );
}
