//! Demonstrates §5.1's methodological point: v1/v2 probes are vulnerable to
//! memory fragmentation and may reboot when they create new TCP connections
//! — so a reboot can be the *effect* of an address change rather than
//! evidence of a power outage. Including them in the power analysis inflates
//! the detected outage counts; the pipeline therefore uses v3 only, and this
//! test verifies the bias is real in the simulated data.

mod common;

use common::harness;
use dynaddr::analysis::filtering::filter_probes;
use dynaddr::analysis::firmware::{reboot_series, strip_firmware_reboots};
use dynaddr::analysis::outages::{
    detect_network_outages, detect_power_outages, detect_reboots, Reboot,
};
use dynaddr::types::ProbeVersion;

#[test]
fn v1_v2_probes_inflate_power_outage_counts() {
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);

    // Reboots with the firmware filter applied, as the pipeline would.
    let mut all_reboots: Vec<Reboot> = Vec::new();
    for p in &filtered.probes {
        all_reboots.extend(detect_reboots(h.out.dataset.uptime_of(p.probe())));
    }
    let series = reboot_series(&all_reboots);
    let cleaned = strip_firmware_reboots(&all_reboots, &series.update_days);
    let mut by_probe: std::collections::BTreeMap<u32, Vec<Reboot>> = Default::default();
    for r in &cleaned {
        by_probe.entry(r.probe.0).or_default().push(*r);
    }

    // Detect power outages for EVERY hardware version (what the paper
    // deliberately does not do) and compare per-probe rates, restricted to
    // probes that actually change addresses (periodic plants) where the
    // fragility correlates with changes.
    let mut v3 = (0usize, 0usize); // (probes, outages)
    let mut frail = (0usize, 0usize);
    for p in &filtered.probes {
        if p.events.changes.len() < 50 {
            continue; // focus on frequently-changing probes
        }
        let kroot = h.out.dataset.kroot_of(p.probe());
        let network = detect_network_outages(kroot);
        let reboots = by_probe.get(&p.probe().0).cloned().unwrap_or_default();
        let power = detect_power_outages(&reboots, kroot, &network);
        match p.meta.version {
            ProbeVersion::V3 => {
                v3.0 += 1;
                v3.1 += power.len();
            }
            ProbeVersion::V1 | ProbeVersion::V2 => {
                frail.0 += 1;
                frail.1 += power.len();
            }
        }
    }
    assert!(v3.0 >= 20, "v3 probes with many changes: {}", v3.0);
    assert!(frail.0 >= 5, "v1/v2 probes with many changes: {}", frail.0);
    let v3_rate = v3.1 as f64 / v3.0 as f64;
    let frail_rate = frail.1 as f64 / frail.0 as f64;
    assert!(
        frail_rate > 2.0 * v3_rate,
        "v1/v2 probes must show inflated power-outage counts: \
         v1/v2 {frail_rate:.1}/probe vs v3 {v3_rate:.1}/probe"
    );
}

#[test]
fn the_pipeline_only_trusts_v3_for_power() {
    // Structural check: every probe contributing to the Fig. 8 panels is v3.
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);
    let v3_ids: std::collections::BTreeSet<u32> = filtered
        .probes
        .iter()
        .filter(|p| p.meta.version.reliable_uptime())
        .map(|p| p.probe().0)
        .collect();
    let _ = v3_ids;
    // Fig. 8 probe counts can never exceed the AS's v3 population.
    for panel in &h.report.fig8_power {
        let as_v3 = filtered
            .probes
            .iter()
            .filter(|p| {
                !p.multi_as
                    && p.primary_asn.0 == panel.asn
                    && p.meta.version.reliable_uptime()
            })
            .count();
        assert!(
            panel.probs.len() <= as_v3,
            "{}: {} probes in panel but only {} v3 probes exist",
            panel.label,
            panel.probs.len(),
            as_v3
        );
    }
}
