//! End-to-end system tests: determinism, dataset round-trips, log-thinning
//! equivalence, and ground-truth validation of the pipeline's inferences.

mod common;

use common::{harness, SCALE, SEED};
use dynaddr::analysis::outages::{detect_network_outages, detect_power_outages, detect_reboots};
use dynaddr::atlas::logs::AtlasDataset;
use dynaddr::atlas::world::{paper_route_tables, paper_world};
use dynaddr::atlas::{simulate, ChangeCause};

#[test]
fn simulation_and_analysis_are_deterministic() {
    // Re-run the harness world from scratch; everything must be identical.
    let world = paper_world(SCALE, SEED);
    let out2 = simulate(&world);
    let h = harness();
    assert_eq!(h.out.dataset, out2.dataset, "dataset must be bit-identical");
    let snaps = paper_route_tables(&world);
    let report2 = dynaddr::analysis::analyze(&out2.dataset, &snaps, &h.cfg);
    let a = serde_json::to_string(&h.report).expect("report serializes");
    let b = serde_json::to_string(&report2).expect("report serializes");
    assert_eq!(a, b, "analysis must be deterministic");
}

#[test]
fn different_seed_changes_logs_but_not_shapes() {
    let world = paper_world(0.05, 777);
    let out = simulate(&world);
    let h = harness();
    assert_ne!(h.out.dataset.connections, out.dataset.connections);
    // Coarse shape check on the alternate seed: DTAG still daily.
    let snaps = paper_route_tables(&world);
    let filtered = dynaddr::analysis::filter_probes(&out.dataset, &snaps);
    let (rows, _) = dynaddr::analysis::periodic::table5(
        &filtered.probes,
        &Default::default(),
        &dynaddr::analysis::periodic::PeriodicConfig::default(),
    );
    assert_eq!(
        rows.iter().find(|r| r.asn == 3320).map(|r| r.d_hours),
        Some(24)
    );
}

#[test]
fn dataset_roundtrips_through_jsonl() {
    let h = harness();
    let docs = h.out.dataset.to_jsonl();
    let back = AtlasDataset::from_jsonl(&docs).expect("parse back");
    assert_eq!(h.out.dataset, back);
}

/// The simulator thins quiet-period k-root heartbeats (see the log-thinning
/// note in `dynaddr-atlas`). Detection must be unaffected: a world logged at
/// the full 4-minute grid and the same world logged with 24-hour heartbeats
/// must yield identical outage sets.
#[test]
fn log_thinning_preserves_outage_detection() {
    let mut dense_world = paper_world(0.02, 99);
    dense_world.filler = dynaddr::atlas::FillerSpec::none();
    dense_world.movers = 0;
    let mut thin_world = dense_world.clone();
    dense_world.kroot_heartbeat = dynaddr::types::SimDuration::from_secs(240);
    thin_world.kroot_heartbeat = dynaddr::types::SimDuration::from_hours(24);

    let dense = simulate(&dense_world);
    let thin = simulate(&thin_world);
    assert!(
        dense.dataset.kroot.len() > 20 * thin.dataset.kroot.len(),
        "dense grid must be much larger: {} vs {}",
        dense.dataset.kroot.len(),
        thin.dataset.kroot.len()
    );
    // Connection logs and uptime are heartbeat-independent.
    assert_eq!(dense.dataset.connections, thin.dataset.connections);
    assert_eq!(dense.dataset.uptime, thin.dataset.uptime);

    for meta in &dense.dataset.meta {
        let p = meta.probe;
        let nw_dense = detect_network_outages(dense.dataset.kroot_of(p));
        let nw_thin = detect_network_outages(thin.dataset.kroot_of(p));
        assert_eq!(nw_dense, nw_thin, "network outages differ for {p}");

        let rb_dense = detect_reboots(dense.dataset.uptime_of(p));
        let rb_thin = detect_reboots(thin.dataset.uptime_of(p));
        assert_eq!(rb_dense, rb_thin);

        let pw_dense = detect_power_outages(&rb_dense, dense.dataset.kroot_of(p), &nw_dense);
        let pw_thin = detect_power_outages(&rb_thin, thin.dataset.kroot_of(p), &nw_thin);
        // Power outages: same events; the dark-window brackets must agree
        // because the simulator always materializes them.
        assert_eq!(pw_dense, pw_thin, "power outages differ for {p}");
    }
}

// ---------------------------------------------------------------------------
// Ground-truth validation: the closed loop the paper could not run.
// ---------------------------------------------------------------------------

#[test]
fn inferred_periods_match_configured_policies() {
    let h = harness();
    let detected: std::collections::BTreeMap<u32, i64> = h
        .report
        .table5
        .iter()
        .filter(|r| r.asn != 0)
        .map(|r| (r.asn, r.d_hours))
        .collect();
    let mut hits = 0;
    let mut majors = 0;
    for (asn, policy) in &h.out.truth.isp_policies {
        // Only judge ISPs whose periodic plans dominate and that host
        // enough probes at this scale.
        if policy.periodic_weight < 0.5 || policy.periodic_hours.is_empty() {
            continue;
        }
        majors += 1;
        if let Some(d) = detected.get(asn) {
            if policy.periodic_hours.iter().any(|h| (h - d).abs() <= (h / 50).max(1)) {
                hits += 1;
            }
        }
    }
    assert!(majors >= 10, "expected many majority-periodic ISPs, got {majors}");
    assert!(
        hits as f64 >= 0.7 * majors as f64,
        "only {hits} of {majors} majority-periodic ISPs were recovered"
    );
}

#[test]
fn detected_outage_change_rates_track_truth() {
    use dynaddr::analysis::assoc::OutageKind;
    use dynaddr::analysis::filtering::filter_probes;
    use dynaddr::analysis::pipeline::outage_analysis;
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);
    let oa = outage_analysis(&h.out.dataset, &filtered.probes);

    let detected_nw: Vec<_> =
        oa.outages.iter().filter(|o| o.kind == OutageKind::Network).collect();
    assert!(detected_nw.len() > 500, "network outages detected: {}", detected_nw.len());
    let det_rate = detected_nw.iter().filter(|o| o.address_changed).count() as f64
        / detected_nw.len() as f64;
    let truth_rate = h
        .out
        .truth
        .outage_change_rate(dynaddr::atlas::TruthOutageKind::Network)
        .expect("truth has network outages");
    assert!(
        (det_rate - truth_rate).abs() < 0.15,
        "detected change rate {det_rate} vs truth {truth_rate}"
    );
}

#[test]
fn firmware_reboots_do_not_leak_into_power_outages() {
    use dynaddr::analysis::filtering::filter_probes;
    use dynaddr::analysis::pipeline::outage_analysis;
    let h = harness();
    let filtered = filter_probes(&h.out.dataset, &h.snaps);
    let oa = outage_analysis(&h.out.dataset, &filtered.probes);
    // After the spike filter, surviving reboots near firmware dates should
    // be roughly background-level: count reboots within the staggered
    // 36-hour windows after each push.
    let fw_days: Vec<i64> = h.out.truth.firmware_dates.iter().map(|d| d.day_of_year()).collect();
    let near = |day: i64| fw_days.iter().any(|f| (day - f) == 0 || (day - f) == 1);
    let survivors = oa
        .reboots
        .iter()
        .filter(|r| near(r.boot_time.day_of_year()))
        .count();
    let total = oa.reboots.len();
    // Firmware uptake is ~85% of all probes per push: without filtering,
    // push windows would hold the majority of reboots.
    assert!(
        (survivors as f64) < 0.25 * total as f64,
        "firmware reboots leak: {survivors} of {total} reboots on push days"
    );
}

#[test]
fn admin_renumbering_visible_in_truth_and_data() {
    let h = harness();
    let (asn, when) = h.out.truth.admin_renumbering.expect("world has one admin event");
    let admin_changes: Vec<_> = h
        .out
        .truth
        .changes
        .iter()
        .filter(|c| c.cause == ChangeCause::AdminRenumber)
        .collect();
    assert!(!admin_changes.is_empty());
    for c in &admin_changes {
        assert!((c.time - when).secs().abs() < 3 * 3_600, "clustered at the event");
        assert_eq!(h.snaps.asn_at(c.time, c.to).0, asn.0, "new space belongs to the ISP");
    }
}

#[test]
fn truth_cause_mix_is_plausible() {
    let h = harness();
    let hist = h.out.truth.cause_histogram();
    let get = |k: &str| hist.get(k).copied().unwrap_or(0);
    // Periodic mechanisms dominate total changes (they fire daily).
    let periodic = get("PeriodicCap") + get("ScheduledReconnect");
    let outage = get("NetworkOutage") + get("PowerOutage");
    assert!(periodic > outage, "periodic {periodic} vs outage {outage}");
    assert!(get("PoolRotation") > 0, "rotating DHCP ISPs exist");
    assert!(get("Moved") > 0, "movers exist");
}
