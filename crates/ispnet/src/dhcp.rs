//! DHCP server model (RFC 2131).
//!
//! The model captures exactly the protocol features the paper reasons about:
//!
//! * leases with a configurable duration; clients renew half-way through
//!   (§2.1), and a renewal always yields the *same* address;
//! * the §4.3.1 design goal: when a client returns after its lease expired,
//!   the server re-issues the old address *if nobody claimed it meanwhile*;
//! * pool churn: once a lease expires the address returns to the pool and
//!   background demand claims it at a configurable rate — the longer the
//!   outage, the likelier the address is gone (the Fig. 9 LGI shape).
//!
//! Time is handled lazily: nothing needs a periodic tick. Expiry and churn
//! are resolved at the next client interaction, which keeps the simulator's
//! event queue small.

use crate::pool::{AddressPool, ClientId};
use dynaddr_types::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Configuration of a DHCP server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DhcpConfig {
    /// Lease duration handed to clients.
    pub lease: SimDuration,
    /// Fraction of the lease after which a client attempts renewal
    /// (RFC 2131 T1; default 0.5).
    pub renew_at: f64,
    /// Rate (events per hour) at which background demand claims a *freed*
    /// address. The probability an expired binding survives `t` hours
    /// unclaimed is `exp(-rate × t)`.
    pub churn_rate_per_hour: f64,
    /// Mean interval between administrative pool rotations per client
    /// (`None` = never). Cable ISPs periodically rebalance CMTS pools,
    /// handing customers a new address at a renewal boundary even though the
    /// client kept renewing — the weeks-scale, non-periodic churn the paper
    /// measures for Verizon and LGI (Fig. 2). Intervals are exponential, so
    /// rotations produce no modal durations.
    pub rotation_mean: Option<SimDuration>,
}

impl Default for DhcpConfig {
    fn default() -> DhcpConfig {
        DhcpConfig {
            lease: SimDuration::from_hours(6),
            renew_at: 0.5,
            churn_rate_per_hour: 0.03,
            rotation_mean: None,
        }
    }
}

#[derive(Debug, Clone)]
struct Binding {
    addr: Ipv4Addr,
    expiry: SimTime,
}

/// The outcome of a client interaction with the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseOutcome {
    /// The address now bound to the client.
    pub addr: Ipv4Addr,
    /// Whether the address differs from the client's previous one.
    pub changed: bool,
    /// When the client should attempt its next renewal (T1).
    pub renew_at: SimTime,
}

/// A DHCP server bound to (but not owning) an [`AddressPool`].
///
/// ```
/// use dynaddr_ispnet::pool::{AddressPool, AllocationPolicy, ClientId, PoolConfig};
/// use dynaddr_ispnet::{DhcpConfig, DhcpServer};
/// use dynaddr_types::{SimDuration, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
/// let mut pool = AddressPool::new(
///     &PoolConfig {
///         prefixes: vec!["100.64.0.0/20".parse().unwrap()],
///         policy: AllocationPolicy::PreferPrevious,
///         background_occupancy: 0.5,
///     },
///     1,
/// );
/// let mut server = DhcpServer::new(DhcpConfig::default());
///
/// // First lease, then a renewal within the lease: same address.
/// let first = server.acquire(&mut pool, &mut rng, ClientId(1), SimTime(0));
/// let renewed = server.renew(&mut pool, &mut rng, ClientId(1), first.renew_at);
/// assert_eq!(first.addr, renewed.addr);
/// assert!(!renewed.changed);
///
/// // Even after expiry, §4.3.1 re-issues the address while it is unclaimed
/// // (churn here is probabilistic; with default config it usually holds).
/// let later = SimTime(0) + SimDuration::from_hours(9);
/// let back = server.acquire(&mut pool, &mut rng, ClientId(1), later);
/// assert_eq!(back.addr, first.addr);
/// ```
#[derive(Debug, Clone)]
pub struct DhcpServer {
    config: DhcpConfig,
    bindings: HashMap<ClientId, Binding>,
}

impl DhcpServer {
    /// Creates a server with the given configuration.
    pub fn new(config: DhcpConfig) -> DhcpServer {
        assert!(config.lease.is_positive(), "lease must be positive");
        assert!(
            (0.0..=1.0).contains(&config.renew_at) && config.renew_at > 0.0,
            "renew_at must be in (0, 1]"
        );
        assert!(config.churn_rate_per_hour >= 0.0, "churn rate must be non-negative");
        DhcpServer { config, bindings: HashMap::new() }
    }

    /// The server configuration.
    pub fn config(&self) -> &DhcpConfig {
        &self.config
    }

    fn renew_time(&self, now: SimTime) -> SimTime {
        now + SimDuration::from_secs(
            (self.config.lease.secs() as f64 * self.config.renew_at) as i64,
        )
    }

    /// The client's current address, if it has an unexpired binding.
    pub fn address_of(&self, client: ClientId, now: SimTime) -> Option<Ipv4Addr> {
        self.bindings
            .get(&client)
            .filter(|b| now <= b.expiry)
            .map(|b| b.addr)
    }

    /// Client (re)acquires an address: initial boot, reboot, or return from
    /// an outage. Implements the RFC 2131 §4.3.1 stability goal with lazy
    /// expiry + churn resolution.
    pub fn acquire<R: Rng + ?Sized>(
        &mut self,
        pool: &mut AddressPool,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> LeaseOutcome {
        let renew_at = self.renew_time(now);
        let expiry = now + self.config.lease;

        match self.bindings.get(&client).cloned() {
            // Active lease: plain renewal, same address.
            Some(b) if now <= b.expiry => {
                self.bindings.insert(client, Binding { addr: b.addr, expiry });
                LeaseOutcome { addr: b.addr, changed: false, renew_at }
            }
            // Expired lease: the address went back to the pool at b.expiry.
            // Background demand may have claimed it since.
            Some(b) => {
                // Consistency with the pool: the pool held the address for
                // the binding's lifetime; free it before deciding its fate.
                // (It may already be gone after administrative renumbering.)
                let was_held = pool.address_of(client) == Some(b.addr);
                if was_held {
                    pool.release(client);
                }
                let idle_hours = (now - b.expiry).secs() as f64 / 3_600.0;
                let survives = was_held
                    && rng.gen::<f64>()
                        < (-self.config.churn_rate_per_hour * idle_hours).exp();
                if survives && pool.claim_specific(client, b.addr) {
                    self.bindings.insert(client, Binding { addr: b.addr, expiry });
                    return LeaseOutcome { addr: b.addr, changed: false, renew_at };
                }
                if was_held && !survives {
                    // Someone else took it while the client was away.
                    pool.background_claim(b.addr);
                }
                let addr = pool
                    .allocate(rng, client, Some(b.addr))
                    .expect("pool exhausted");
                let changed = addr != b.addr;
                self.bindings.insert(client, Binding { addr, expiry });
                LeaseOutcome { addr, changed, renew_at }
            }
            // Unknown client: fresh allocation.
            None => {
                let addr = pool.allocate(rng, client, None).expect("pool exhausted");
                self.bindings.insert(client, Binding { addr, expiry });
                LeaseOutcome { addr, changed: false, renew_at }
            }
        }
    }

    /// In-lease renewal at T1. Extends the lease and keeps the address; if
    /// the lease already lapsed this degenerates to [`DhcpServer::acquire`].
    pub fn renew<R: Rng + ?Sized>(
        &mut self,
        pool: &mut AddressPool,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> LeaseOutcome {
        self.acquire(pool, rng, client, now)
    }

    /// Samples the next administrative rotation instant after `now`, if the
    /// server rotates at all.
    pub fn next_rotation<R: Rng + ?Sized>(&self, rng: &mut R, now: SimTime) -> Option<SimTime> {
        let mean = self.config.rotation_mean?;
        let gap = dynaddr_types::dist::DurationDist::Exponential { mean: mean.secs() as f64 };
        Some(now + gap.sample_duration(rng))
    }

    /// Administrative pool rotation: the server moves the client to a fresh
    /// address at a renewal boundary. The old address returns to the pool.
    pub fn rotate<R: Rng + ?Sized>(
        &mut self,
        pool: &mut AddressPool,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> LeaseOutcome {
        let renew_at = self.renew_time(now);
        let expiry = now + self.config.lease;
        let prev = self.bindings.get(&client).map(|b| b.addr);
        if prev.is_some() && pool.address_of(client).is_some() {
            pool.release(client);
        }
        // Allocate afresh (no previous-address preference): the rotation's
        // purpose is to move the client.
        let addr = pool.allocate(rng, client, None).expect("pool exhausted");
        self.bindings.insert(client, Binding { addr, expiry });
        LeaseOutcome { addr, changed: prev.map(|p| p != addr).unwrap_or(false), renew_at }
    }

    /// Records that the client kept renewing (on schedule) until `until`.
    ///
    /// The simulator uses this instead of materializing every T1 renewal
    /// event: a client that was online and renewing until the moment it went
    /// offline holds a lease that expires one full lease duration after its
    /// last renewal. Extends the binding's expiry to `until + lease`; never
    /// shortens it.
    pub fn note_renewed_until(&mut self, client: ClientId, until: SimTime) {
        let lease = self.config.lease;
        if let Some(b) = self.bindings.get_mut(&client) {
            b.expiry = b.expiry.max(until + lease);
        }
    }

    /// Client releases its address (DHCPRELEASE).
    pub fn release(&mut self, pool: &mut AddressPool, client: ClientId) {
        if self.bindings.remove(&client).is_some() && pool.address_of(client).is_some() {
            pool.release(client);
        }
    }

    /// Forgets every binding (administrative renumbering support). The pool
    /// is assumed to have been rebuilt by the caller.
    pub fn reset_all(&mut self) {
        self.bindings.clear();
    }

    /// Number of known bindings (including lazily-expired ones).
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{AllocationPolicy, PoolConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn setup(churn: f64) -> (DhcpServer, AddressPool, ChaCha12Rng) {
        let rng = ChaCha12Rng::seed_from_u64(11);
        let pool = AddressPool::new(
            &PoolConfig {
                prefixes: vec!["100.64.0.0/18".parse().unwrap()],
                policy: AllocationPolicy::PreferPrevious,
                background_occupancy: 0.5,
            },
            11,
        );
        let server = DhcpServer::new(DhcpConfig {
            lease: SimDuration::from_hours(6),
            renew_at: 0.5,
            churn_rate_per_hour: churn,
            rotation_mean: None,
        });
        (server, pool, rng)
    }

    const T0: SimTime = SimTime(0);

    #[test]
    fn fresh_client_gets_address_and_t1() {
        let (mut s, mut pool, mut r) = setup(0.03);
        let out = s.acquire(&mut pool, &mut r, ClientId(1), T0);
        assert!(!out.changed);
        assert_eq!(out.renew_at, T0 + SimDuration::from_hours(3));
        assert_eq!(s.address_of(ClientId(1), T0), Some(out.addr));
    }

    #[test]
    fn renewals_never_change_address() {
        let (mut s, mut pool, mut r) = setup(0.03);
        let first = s.acquire(&mut pool, &mut r, ClientId(1), T0);
        let mut now = T0;
        for _ in 0..100 {
            now += SimDuration::from_hours(3);
            let out = s.renew(&mut pool, &mut r, ClientId(1), now);
            assert_eq!(out.addr, first.addr);
            assert!(!out.changed);
        }
    }

    #[test]
    fn short_outage_within_lease_keeps_address() {
        let (mut s, mut pool, mut r) = setup(10.0); // vicious churn
        let first = s.acquire(&mut pool, &mut r, ClientId(1), T0);
        // Outage of 5 hours; lease is 6h, so the binding never expired.
        let out = s.acquire(&mut pool, &mut r, ClientId(1), T0 + SimDuration::from_hours(5));
        assert_eq!(out.addr, first.addr);
        assert!(!out.changed);
    }

    #[test]
    fn expired_lease_with_zero_churn_reissues_same_address() {
        let (mut s, mut pool, mut r) = setup(0.0);
        let first = s.acquire(&mut pool, &mut r, ClientId(1), T0);
        let out = s.acquire(&mut pool, &mut r, ClientId(1), T0 + SimDuration::from_days(30));
        assert_eq!(out.addr, first.addr, "no churn → §4.3.1 keeps the address");
        assert!(!out.changed);
    }

    #[test]
    fn long_outage_with_churn_changes_address() {
        let (mut s, mut pool, mut r) = setup(1.0); // ~1 claim/hour
        let first = s.acquire(&mut pool, &mut r, ClientId(1), T0);
        // Expired for days under heavy churn: address is certainly gone.
        let out = s.acquire(&mut pool, &mut r, ClientId(1), T0 + SimDuration::from_days(10));
        assert_ne!(out.addr, first.addr);
        assert!(out.changed);
    }

    #[test]
    fn change_probability_grows_with_outage_duration() {
        // Statistical check of the Fig. 9 LGI mechanism.
        let mut changed_short = 0;
        let mut changed_long = 0;
        let trials = 300;
        for seed in 0..trials {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut pool = AddressPool::new(
                &PoolConfig {
                    prefixes: vec!["100.64.0.0/18".parse().unwrap()],
                    policy: AllocationPolicy::PreferPrevious,
                    background_occupancy: 0.5,
                },
                seed,
            );
            let mut s = DhcpServer::new(DhcpConfig {
                lease: SimDuration::from_hours(6),
                renew_at: 0.5,
                churn_rate_per_hour: 0.05,
                rotation_mean: None,
            });
            s.acquire(&mut pool, &mut rng, ClientId(1), T0);
            // 8-hour outage: expired for 2 h.
            let o1 = s.acquire(&mut pool, &mut rng, ClientId(1), T0 + SimDuration::from_hours(8));
            if o1.changed {
                changed_short += 1;
            }
            // Another 3-day outage on top.
            let o2 = s.acquire(&mut pool, &mut rng, ClientId(1), T0 + SimDuration::from_days(4));
            if o2.changed {
                changed_long += 1;
            }
        }
        let p_short = changed_short as f64 / trials as f64;
        let p_long = changed_long as f64 / trials as f64;
        assert!(p_short < 0.25, "short-outage change rate {p_short}");
        assert!(p_long > 2.0 * p_short, "long {p_long} vs short {p_short}");
    }

    #[test]
    fn release_frees_the_address() {
        let (mut s, mut pool, mut r) = setup(0.0);
        let out = s.acquire(&mut pool, &mut r, ClientId(1), T0);
        s.release(&mut pool, ClientId(1));
        assert!(pool.is_free(out.addr));
        assert_eq!(s.binding_count(), 0);
    }

    #[test]
    fn reset_all_survives_pool_migration() {
        let (mut s, mut pool, mut r) = setup(0.0);
        s.acquire(&mut pool, &mut r, ClientId(1), T0);
        pool.migrate_prefixes(
            std::sync::Arc::new(vec!["198.18.0.0/19".parse().unwrap()]),
            0.2,
            42,
        );
        s.reset_all();
        let out = s.acquire(&mut pool, &mut r, ClientId(1), T0 + SimDuration::from_hours(1));
        assert!("198.18.0.0/19".parse::<dynaddr_types::Prefix>().unwrap().contains(out.addr));
    }

    #[test]
    fn expired_binding_after_migration_does_not_panic() {
        // A binding whose address vanished from the pool (admin renumbering
        // without reset_all) must be handled gracefully.
        let (mut s, mut pool, mut r) = setup(0.0);
        s.acquire(&mut pool, &mut r, ClientId(1), T0);
        pool.migrate_prefixes(
            std::sync::Arc::new(vec!["198.18.0.0/19".parse().unwrap()]),
            0.2,
            42,
        );
        let out = s.acquire(&mut pool, &mut r, ClientId(1), T0 + SimDuration::from_days(1));
        assert!(out.changed);
    }

    #[test]
    #[should_panic(expected = "lease must be positive")]
    fn zero_lease_rejected() {
        DhcpServer::new(DhcpConfig {
            lease: SimDuration::ZERO,
            renew_at: 0.5,
            churn_rate_per_hour: 0.0,
            rotation_mean: None,
        });
    }
}
