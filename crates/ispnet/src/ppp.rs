//! PPP/PPPoE + RADIUS session model.
//!
//! The paper's ground truth (private communication with a large European
//! ISP, §4.3.2 and §5.4) describes PPPoE DSL lines where *any*
//! reboot/reconnect event yields a fresh address from the dynamic pool, and
//! where the ISP caps session length — 24 hours for DTAG-style networks,
//! one week for Orange-style networks — forcing periodic renumbering even of
//! connected, functioning equipment.
//!
//! Mechanisms modelled here:
//!
//! * a **hold timer**: connectivity loss shorter than the timer keeps the
//!   session (and address) alive; anything longer tears the session down;
//! * **renumber-on-reconnect**: a new session draws a fresh address from the
//!   pool (RADIUS without address memory). Can be disabled to model PPP
//!   deployments that do remember addresses;
//! * a **session cap** with optional jitter, producing the periodic address
//!   durations of §4;
//! * a **skip probability**: a scheduled cap termination is occasionally
//!   skipped (the session runs another full period), reproducing the
//!   harmonic durations of §4.4.2 (48 h / 72 h modes on a 24 h plan).

use crate::pool::{AddressPool, ClientId};
use dynaddr_types::dist::DurationDist;
use dynaddr_types::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Configuration of a PPP/RADIUS access server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PppConfig {
    /// Connectivity loss longer than this tears the session down.
    pub hold_timer: SimDuration,
    /// Whether a new session receives a fresh address (true for the ISPs in
    /// the paper's Table 6).
    pub renumber_on_reconnect: bool,
    /// ISP-imposed maximum session length (periodic renumbering period d).
    pub session_cap: Option<SimDuration>,
    /// Random slack added on top of the cap each time it is armed. `None`
    /// means the cap fires exactly on schedule.
    pub cap_jitter: Option<DurationDist>,
    /// Probability that a scheduled cap termination is skipped and the
    /// session runs on.
    pub skip_renumber_prob: f64,
    /// How much longer a skipped session runs before the next termination
    /// attempt. `None` means one full period (harmonic overruns: 48 h / 72 h
    /// on a 24 h plan); a distribution yields non-harmonic overruns like
    /// Global Village Telecom's in Table 5.
    pub skip_extension: Option<DurationDist>,
}

impl Default for PppConfig {
    fn default() -> PppConfig {
        PppConfig {
            hold_timer: SimDuration::from_secs(60),
            renumber_on_reconnect: true,
            session_cap: None,
            cap_jitter: None,
            skip_renumber_prob: 0.0,
            skip_extension: None,
        }
    }
}

#[derive(Debug, Clone)]
struct Session {
    addr: Ipv4Addr,
    /// When the session was established.
    started: SimTime,
}

/// Outcome of a connect or cap-expiry interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOutcome {
    /// The address bound to the client after the interaction.
    pub addr: Ipv4Addr,
    /// Whether it differs from the previous address.
    pub changed: bool,
    /// When the ISP will next force this session to terminate, if capped.
    pub cap_deadline: Option<SimTime>,
}

/// A PPP/RADIUS access server bound to (but not owning) an [`AddressPool`].
///
/// ```
/// use dynaddr_ispnet::pool::{AddressPool, AllocationPolicy, ClientId, PoolConfig};
/// use dynaddr_ispnet::{PppConfig, PppServer};
/// use dynaddr_types::{SimDuration, SimTime};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
/// let mut pool = AddressPool::new(
///     &PoolConfig {
///         prefixes: vec!["100.64.0.0/20".parse().unwrap()],
///         policy: AllocationPolicy::RandomAny,
///         background_occupancy: 0.5,
///     },
///     1,
/// );
/// // A DTAG-style 24-hour session cap.
/// let mut server = PppServer::new(PppConfig {
///     session_cap: Some(SimDuration::from_hours(24)),
///     ..PppConfig::default()
/// });
///
/// let session = server.connect(&mut pool, &mut rng, ClientId(1), SimTime(0), None);
/// let deadline = session.cap_deadline.unwrap();
/// assert_eq!(deadline, SimTime(0) + SimDuration::from_hours(24));
///
/// // The cap fires: fresh session, fresh address.
/// let renumbered = server.on_cap_expiry(&mut pool, &mut rng, ClientId(1), deadline);
/// assert!(renumbered.changed);
/// assert_ne!(renumbered.addr, session.addr);
/// ```
#[derive(Debug, Clone)]
pub struct PppServer {
    config: PppConfig,
    sessions: HashMap<ClientId, Session>,
}

impl PppServer {
    /// Creates a server with the given configuration.
    pub fn new(config: PppConfig) -> PppServer {
        assert!(config.hold_timer.secs() >= 0, "hold timer must be non-negative");
        if let Some(cap) = config.session_cap {
            assert!(cap.is_positive(), "session cap must be positive");
        }
        assert!(
            (0.0..1.0).contains(&config.skip_renumber_prob),
            "skip probability must be in [0,1)"
        );
        PppServer { config, sessions: HashMap::new() }
    }

    /// The server configuration.
    pub fn config(&self) -> &PppConfig {
        &self.config
    }

    /// The client's current address, if a session exists.
    pub fn address_of(&self, client: ClientId) -> Option<Ipv4Addr> {
        self.sessions.get(&client).map(|s| s.addr)
    }

    /// Arms the cap deadline for a session started at `started`.
    fn cap_deadline<R: Rng + ?Sized>(&self, rng: &mut R, started: SimTime) -> Option<SimTime> {
        let cap = self.config.session_cap?;
        let jitter = self
            .config
            .cap_jitter
            .as_ref()
            .map(|d| d.sample_duration(rng))
            .unwrap_or(SimDuration::ZERO);
        Some(started + cap + jitter)
    }

    /// Client connects — initial dial-in, reboot, or return from an outage
    /// that may or may not have exceeded the hold timer.
    ///
    /// `offline_for` is how long the subscriber was unreachable before this
    /// connect (`None`/zero for a first connect or an ISP-forced reconnect).
    pub fn connect<R: Rng + ?Sized>(
        &mut self,
        pool: &mut AddressPool,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
        offline_for: Option<SimDuration>,
    ) -> SessionOutcome {
        let offline = offline_for.unwrap_or(SimDuration::ZERO);
        match self.sessions.get(&client).cloned() {
            // Blip shorter than the hold timer: session survives unchanged.
            Some(s) if offline <= self.config.hold_timer => {
                let deadline = self.cap_deadline_resample_free(s.started);
                self.sessions.insert(
                    client,
                    Session { addr: s.addr, started: s.started },
                );
                SessionOutcome { addr: s.addr, changed: false, cap_deadline: deadline }
            }
            // Session torn down while the subscriber was away.
            Some(s) => {
                let prev = s.addr;
                if pool.address_of(client) == Some(prev) {
                    pool.release(client);
                }
                let addr = if self.config.renumber_on_reconnect {
                    pool.allocate(rng, client, Some(prev)).expect("pool exhausted")
                } else if pool.claim_specific(client, prev) {
                    prev
                } else {
                    pool.allocate(rng, client, Some(prev)).expect("pool exhausted")
                };
                let deadline = self.cap_deadline(rng, now);
                self.sessions.insert(client, Session { addr, started: now });
                SessionOutcome { addr, changed: addr != prev, cap_deadline: deadline }
            }
            // Unknown client: fresh session.
            None => {
                let addr = pool.allocate(rng, client, None).expect("pool exhausted");
                let deadline = self.cap_deadline(rng, now);
                self.sessions.insert(client, Session { addr, started: now });
                SessionOutcome { addr, changed: false, cap_deadline: deadline }
            }
        }
    }

    /// Deadline recomputation without jitter re-sampling, used when a session
    /// survives a blip: the original deadline (relative to the session start)
    /// still stands. Without jitter this is exact; with jitter we conservatively
    /// re-arm from the cap alone.
    fn cap_deadline_resample_free(&self, started: SimTime) -> Option<SimTime> {
        self.config.session_cap.map(|cap| started + cap)
    }

    /// The CPE deliberately tears the session down and re-dials (the
    /// scheduled nightly reconnect privacy feature of §4.4.3). Unlike
    /// [`PppServer::connect`], this never takes the survives-a-blip path:
    /// the old session ends now regardless of the hold timer.
    pub fn reconnect_new_session<R: Rng + ?Sized>(
        &mut self,
        pool: &mut AddressPool,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> SessionOutcome {
        let prev = self.sessions.get(&client).map(|s| s.addr);
        if let Some(prev) = prev {
            if pool.address_of(client) == Some(prev) {
                pool.release(client);
            }
        }
        let addr = match prev {
            Some(prev) if !self.config.renumber_on_reconnect
                && pool.claim_specific(client, prev) =>
            {
                prev
            }
            Some(prev) => pool.allocate(rng, client, Some(prev)).expect("pool exhausted"),
            None => pool.allocate(rng, client, None).expect("pool exhausted"),
        };
        let deadline = self.cap_deadline(rng, now);
        self.sessions.insert(client, Session { addr, started: now });
        SessionOutcome { addr, changed: prev.is_some() && prev != Some(addr), cap_deadline: deadline }
    }

    /// The ISP's scheduled session-cap expiry fires. With probability
    /// `skip_renumber_prob` the termination is skipped and the session runs
    /// one more full period; otherwise the session is torn down and the
    /// client immediately re-dials, receiving a fresh address.
    pub fn on_cap_expiry<R: Rng + ?Sized>(
        &mut self,
        pool: &mut AddressPool,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> SessionOutcome {
        let cap = self
            .config
            .session_cap
            .expect("on_cap_expiry on an uncapped server");
        // The session may have vanished under the client (administrative
        // renumbering resets all sessions): treat the expiry as a re-dial.
        let Some(session) = self.sessions.get(&client).cloned() else {
            return self.reconnect_new_session(pool, rng, client, now);
        };
        if rng.gen::<f64>() < self.config.skip_renumber_prob {
            // Skipped: session continues until one more period (harmonic)
            // or a sampled extension (non-harmonic) elapses.
            let extension = self
                .config
                .skip_extension
                .as_ref()
                .map(|d| d.sample_duration(rng).max(SimDuration::from_mins(30)))
                .unwrap_or(cap);
            return SessionOutcome {
                addr: session.addr,
                changed: false,
                cap_deadline: Some(now + extension),
            };
        }
        // Tear down and immediately reconnect with a fresh address.
        let prev = session.addr;
        if pool.address_of(client) == Some(prev) {
            pool.release(client);
        }
        let addr = if self.config.renumber_on_reconnect {
            pool.allocate(rng, client, Some(prev)).expect("pool exhausted")
        } else if pool.claim_specific(client, prev) {
            prev
        } else {
            pool.allocate(rng, client, Some(prev)).expect("pool exhausted")
        };
        let deadline = self.cap_deadline(rng, now);
        self.sessions.insert(client, Session { addr, started: now });
        SessionOutcome { addr, changed: addr != prev, cap_deadline: deadline }
    }

    /// Client disconnects cleanly; the address returns to the pool.
    pub fn disconnect(&mut self, pool: &mut AddressPool, client: ClientId) {
        if self.sessions.remove(&client).is_some() && pool.address_of(client).is_some() {
            pool.release(client);
        }
    }

    /// Forgets every session (administrative renumbering support).
    pub fn reset_all(&mut self) {
        self.sessions.clear();
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{AllocationPolicy, PoolConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    const T0: SimTime = SimTime(0);

    fn setup(config: PppConfig) -> (PppServer, AddressPool, ChaCha12Rng) {
        let rng = ChaCha12Rng::seed_from_u64(23);
        let pool = AddressPool::new(
            &PoolConfig {
                prefixes: vec!["100.64.0.0/18".parse().unwrap()],
                policy: AllocationPolicy::RandomAny,
                background_occupancy: 0.6,
            },
            23,
        );
        (PppServer::new(config), pool, rng)
    }

    #[test]
    fn blip_within_hold_timer_keeps_address() {
        let (mut s, mut pool, mut r) = setup(PppConfig::default());
        let a = s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        let b = s.connect(
            &mut pool,
            &mut r,
            ClientId(1),
            T0 + SimDuration::from_secs(90),
            Some(SimDuration::from_secs(45)),
        );
        assert_eq!(a.addr, b.addr);
        assert!(!b.changed);
    }

    #[test]
    fn outage_beyond_hold_timer_renumbers() {
        let (mut s, mut pool, mut r) = setup(PppConfig::default());
        let a = s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        let b = s.connect(
            &mut pool,
            &mut r,
            ClientId(1),
            T0 + SimDuration::from_mins(5),
            Some(SimDuration::from_mins(4)),
        );
        assert_ne!(a.addr, b.addr, "PPPoE renumbers on any reconnect");
        assert!(b.changed);
    }

    #[test]
    fn renumber_disabled_keeps_address_across_outages() {
        let (mut s, mut pool, mut r) = setup(PppConfig {
            renumber_on_reconnect: false,
            ..PppConfig::default()
        });
        let a = s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        let b = s.connect(
            &mut pool,
            &mut r,
            ClientId(1),
            T0 + SimDuration::from_hours(10),
            Some(SimDuration::from_hours(9)),
        );
        assert_eq!(a.addr, b.addr);
    }

    #[test]
    fn session_cap_sets_deadline_and_renumbers() {
        let cap = SimDuration::from_hours(24);
        let (mut s, mut pool, mut r) = setup(PppConfig {
            session_cap: Some(cap),
            ..PppConfig::default()
        });
        let a = s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        assert_eq!(a.cap_deadline, Some(T0 + cap));
        let b = s.on_cap_expiry(&mut pool, &mut r, ClientId(1), T0 + cap);
        assert!(b.changed);
        assert_eq!(b.cap_deadline, Some(T0 + cap + cap));
    }

    #[test]
    fn skip_probability_produces_harmonics() {
        let cap = SimDuration::from_hours(24);
        let (mut s, mut pool, mut r) = setup(PppConfig {
            session_cap: Some(cap),
            skip_renumber_prob: 0.5,
            ..PppConfig::default()
        });
        s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        let mut skips = 0;
        let mut fires = 0;
        let mut deadline = T0 + cap;
        for _ in 0..200 {
            let out = s.on_cap_expiry(&mut pool, &mut r, ClientId(1), deadline);
            if out.changed {
                fires += 1;
            } else {
                skips += 1;
            }
            deadline = out.cap_deadline.unwrap();
        }
        assert!(skips > 60 && fires > 60, "skips {skips}, fires {fires}");
    }

    #[test]
    fn cap_jitter_extends_deadline() {
        let cap = SimDuration::from_hours(48);
        let (mut s, mut pool, mut r) = setup(PppConfig {
            session_cap: Some(cap),
            cap_jitter: Some(DurationDist::Uniform { lo: 0.0, hi: 6.0 * 3600.0 }),
            ..PppConfig::default()
        });
        for i in 0..50 {
            let out = s.connect(&mut pool, &mut r, ClientId(i), T0, None);
            let d = out.cap_deadline.unwrap() - T0;
            assert!(d >= cap && d <= cap + SimDuration::from_hours(6), "deadline {d}");
        }
    }

    #[test]
    fn blip_preserves_original_deadline() {
        let cap = SimDuration::from_hours(24);
        let (mut s, mut pool, mut r) = setup(PppConfig {
            session_cap: Some(cap),
            ..PppConfig::default()
        });
        s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        let out = s.connect(
            &mut pool,
            &mut r,
            ClientId(1),
            T0 + SimDuration::from_hours(3),
            Some(SimDuration::from_secs(30)),
        );
        assert_eq!(out.cap_deadline, Some(T0 + cap), "deadline anchored to session start");
    }

    #[test]
    fn disconnect_frees_address() {
        let (mut s, mut pool, mut r) = setup(PppConfig::default());
        let out = s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        s.disconnect(&mut pool, ClientId(1));
        assert!(pool.is_free(out.addr));
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn uncapped_sessions_have_no_deadline() {
        let (mut s, mut pool, mut r) = setup(PppConfig::default());
        let out = s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        assert_eq!(out.cap_deadline, None);
    }

    #[test]
    #[should_panic(expected = "uncapped")]
    fn cap_expiry_on_uncapped_server_panics() {
        let (mut s, mut pool, mut r) = setup(PppConfig::default());
        s.connect(&mut pool, &mut r, ClientId(1), T0, None);
        s.on_cap_expiry(&mut pool, &mut r, ClientId(1), T0 + SimDuration::from_hours(1));
    }
}
