//! Dynamic address pools spanning multiple BGP-routed prefixes.
//!
//! §6 of the paper finds that nearly half of all address changes also change
//! BGP prefix: ISP pools are not a single contiguous block. A pool here is a
//! list of prefixes flattened into one index space, with an allocation policy
//! that decides how strongly a fresh allocation is attracted to the
//! requester's *previous* prefix. That single knob reproduces the per-ISP
//! spread in Table 7 (DTAG 24% cross-BGP vs Telecom Italia 85%).
//!
//! ## Implicit background occupancy
//!
//! The background load that makes "same address again by chance" rare is not
//! stored as a bitmap. Instead, the *default* occupancy of flat index `i` is
//! the pure function `unit_hash(pool_seed, i) < background_occupancy` — a
//! splitmix-style keyed hash evaluated on demand. Only deviations from that
//! default (our own allocations, released background addresses, background
//! claims of previously-free addresses) live in a small override map touched
//! on allocate/release. Construction is therefore O(prefixes) instead of
//! O(addresses), no RNG is consumed, and pools far larger than the old
//! 2^24-address bitmap ceiling are representable. A `#[cfg(test)]` eager
//! bitmap oracle plus proptest equivalence pins the two representations to
//! identical allocate/release/occupancy behaviour.

use dynaddr_types::ip::{ipv4_to_u32, Prefix};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Identifier of an access-network client (one per CPE).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// How a pool chooses the address for a (re)connecting client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Re-issue the client's previous address whenever it is free; fall back
    /// to a random free address. This is the RFC 2131 §4.3.1 behaviour.
    PreferPrevious,
    /// Draw uniformly from the free addresses of the whole pool. The
    /// RADIUS-without-memory behaviour Maier et al. observed.
    RandomAny,
    /// With probability `bias`, draw from the free addresses of the client's
    /// previous *prefix*; otherwise from the whole pool. `bias = 0.0`
    /// degenerates to [`AllocationPolicy::RandomAny`].
    SamePrefixBias(f64),
}

/// Static description of a pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// The BGP-routed prefixes the pool allocates from (pairwise disjoint).
    pub prefixes: Vec<Prefix>,
    /// Allocation policy.
    pub policy: AllocationPolicy,
    /// Fraction of the pool pre-occupied by customers outside the simulated
    /// probe population (`0.0..1.0`). High occupancy makes "same address
    /// again by chance" rare, as in real ISPs.
    pub background_occupancy: f64,
}

impl PoolConfig {
    /// Convenience constructor.
    pub fn new(prefixes: Vec<Prefix>, policy: AllocationPolicy) -> PoolConfig {
        PoolConfig { prefixes, policy, background_occupancy: 0.6 }
    }
}

/// A concrete pool instance with allocation state.
///
/// Addresses are indexed `0..total`, flattened across the prefixes in order.
/// Background occupancy is implicit — a keyed hash of the flat index against
/// the occupancy fraction — and only indices whose real state deviates from
/// that default (plus the holder map of *our* allocations) are stored. The
/// structure deliberately has no notion of time: lease/session lifetimes
/// live in the DHCP/PPP layers above.
#[derive(Debug, Clone)]
pub struct AddressPool {
    prefixes: Arc<Vec<Prefix>>,
    /// Exclusive cumulative end index of each prefix in the flat space.
    cum_end: Vec<u64>,
    /// `(base address, prefix slot)` sorted by base, for O(log n) reverse
    /// lookup of an address's prefix.
    by_base: Vec<(u32, usize)>,
    policy: AllocationPolicy,
    background_occupancy: f64,
    /// Seed of the implicit background-occupancy function.
    seed: u64,
    /// Indices whose occupancy deviates from the background default.
    overrides: HashMap<u64, bool>,
    /// Occupancy count relative to the pure background state.
    occupied_delta: i64,
    /// Lazily counted background occupancy (an O(total) sweep on first use;
    /// only accounting queries need it, never allocation).
    bg_count: Cell<Option<u64>>,
    /// Current holder of each of *our* allocations (not background load).
    held: HashMap<ClientId, u64>,
}

impl AddressPool {
    /// Builds a pool whose background occupancy is derived from `seed`.
    /// Construction is O(prefixes): no bitmap, no RNG sweep.
    pub fn new(config: &PoolConfig, seed: u64) -> AddressPool {
        AddressPool::from_parts(
            Arc::new(config.prefixes.clone()),
            config.policy,
            config.background_occupancy,
            seed,
        )
    }

    /// Like [`AddressPool::new`], but shares an existing prefix list instead
    /// of cloning one (the simulator hands the same `Arc` to every share-net
    /// of an ISP).
    pub fn from_parts(
        prefixes: Arc<Vec<Prefix>>,
        policy: AllocationPolicy,
        background_occupancy: f64,
        seed: u64,
    ) -> AddressPool {
        assert!(!prefixes.is_empty(), "pool needs at least one prefix");
        assert!(
            (0.0..1.0).contains(&background_occupancy),
            "background occupancy must be in [0,1): {background_occupancy}"
        );
        let mut cum_end = Vec::with_capacity(prefixes.len());
        let mut total = 0u64;
        for p in prefixes.iter() {
            total += p.size();
            cum_end.push(total);
        }
        let mut by_base: Vec<(u32, usize)> = prefixes
            .iter()
            .enumerate()
            .map(|(slot, p)| (ipv4_to_u32(p.base()), slot))
            .collect();
        by_base.sort_unstable();
        for w in by_base.windows(2) {
            let (base_a, slot_a) = w[0];
            let (base_b, _) = w[1];
            assert!(
                u64::from(base_a) + prefixes[slot_a].size() <= u64::from(base_b),
                "pool prefixes must be disjoint: {} overlaps {}",
                prefixes[slot_a],
                prefixes[w[1].1]
            );
        }
        AddressPool {
            prefixes,
            cum_end,
            by_base,
            policy,
            background_occupancy,
            seed,
            overrides: HashMap::new(),
            occupied_delta: 0,
            bg_count: Cell::new(None),
            held: HashMap::new(),
        }
    }

    /// Total number of addresses across all prefixes.
    pub fn total(&self) -> u64 {
        *self.cum_end.last().expect("at least one prefix")
    }

    /// Number of currently free addresses.
    ///
    /// The first call sweeps the index space once to count the implicit
    /// background load (cached afterwards); allocation never needs this.
    pub fn free_count(&self) -> u64 {
        let occupied = (self.background_count() as i64 + self.occupied_delta) as u64;
        self.total() - occupied
    }

    /// The prefixes of the pool.
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// The address a client currently holds, if any.
    pub fn address_of(&self, client: ClientId) -> Option<Ipv4Addr> {
        self.held.get(&client).map(|&i| self.index_to_addr(i))
    }

    /// Whether the *background default* (ignoring overrides) occupies `i`.
    fn background_occupied(&self, index: u64) -> bool {
        unit_hash(self.seed, index) < self.background_occupancy
    }

    fn background_count(&self) -> u64 {
        if let Some(n) = self.bg_count.get() {
            return n;
        }
        let n = (0..self.total()).filter(|&i| self.background_occupied(i)).count() as u64;
        self.bg_count.set(Some(n));
        n
    }

    /// Whether flat index `i` is currently occupied (override, else default).
    fn occupied(&self, index: u64) -> bool {
        match self.overrides.get(&index) {
            Some(&state) => state,
            None => self.background_occupied(index),
        }
    }

    fn index_to_addr(&self, index: u64) -> Ipv4Addr {
        let slot = self.cum_end.partition_point(|&end| end <= index);
        let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
        self.prefixes[slot].nth(index - start)
    }

    /// Reverse lookup via the base-sorted prefix table — O(log prefixes)
    /// rather than a linear scan on every release/renew.
    fn addr_to_index(&self, addr: Ipv4Addr) -> Option<u64> {
        let v = ipv4_to_u32(addr);
        let cand = self.by_base.partition_point(|&(base, _)| base <= v);
        let (_, slot) = *self.by_base.get(cand.checked_sub(1)?)?;
        let off = self.prefixes[slot].index_of(addr)?;
        let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
        Some(start + off)
    }

    /// The index range `[start, end)` of the prefix containing flat `index`.
    fn prefix_range_of(&self, index: u64) -> (u64, u64) {
        let slot = self.cum_end.partition_point(|&end| end <= index);
        let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
        (start, self.cum_end[slot])
    }

    /// Whether an address is currently free.
    pub fn is_free(&self, addr: Ipv4Addr) -> bool {
        self.addr_to_index(addr).map(|i| !self.occupied(i)).unwrap_or(false)
    }

    /// Marks an arbitrary free address in `[lo, hi)` occupied, returning its
    /// index. Rejection-samples, then falls back to a linear sweep from a
    /// random start so allocation cannot fail while space remains.
    fn take_free_in<R: Rng + ?Sized>(&mut self, rng: &mut R, lo: u64, hi: u64) -> Option<u64> {
        debug_assert!(lo < hi);
        for _ in 0..64 {
            let i = rng.gen_range(lo..hi);
            if !self.occupied(i) {
                self.occupy(i);
                return Some(i);
            }
        }
        let span = hi - lo;
        let start = rng.gen_range(0..span);
        for k in 0..span {
            let i = lo + (start + k) % span;
            if !self.occupied(i) {
                self.occupy(i);
                return Some(i);
            }
        }
        None
    }

    fn occupy(&mut self, index: u64) {
        debug_assert!(!self.occupied(index));
        if self.background_occupied(index) {
            // The override said "free"; dropping it restores the default.
            self.overrides.remove(&index);
        } else {
            self.overrides.insert(index, true);
        }
        self.occupied_delta += 1;
    }

    fn vacate(&mut self, index: u64) {
        debug_assert!(self.occupied(index));
        if self.background_occupied(index) {
            self.overrides.insert(index, false);
        } else {
            self.overrides.remove(&index);
        }
        self.occupied_delta -= 1;
    }

    /// Allocates an address for `client` according to the pool policy.
    ///
    /// `previous` is the client's last known address (it need not be
    /// currently held — e.g. after an expired lease). Returns `None` only
    /// when the pool is completely full.
    pub fn allocate<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client: ClientId,
        previous: Option<Ipv4Addr>,
    ) -> Option<Ipv4Addr> {
        assert!(
            !self.held.contains_key(&client),
            "{client} already holds an address; release first"
        );
        let prev_index = previous.and_then(|a| self.addr_to_index(a));

        let chosen = match self.policy {
            AllocationPolicy::PreferPrevious => match prev_index {
                Some(i) if !self.occupied(i) => {
                    self.occupy(i);
                    Some(i)
                }
                _ => self.take_free_in(rng, 0, self.total()),
            },
            AllocationPolicy::RandomAny => self.take_free_in(rng, 0, self.total()),
            AllocationPolicy::SamePrefixBias(bias) => {
                let in_prev_prefix = prev_index
                    .filter(|_| rng.gen::<f64>() < bias)
                    .map(|i| self.prefix_range_of(i));
                match in_prev_prefix {
                    Some((lo, hi)) => self
                        .take_free_in(rng, lo, hi)
                        .or_else(|| self.take_free_in(rng, 0, self.total())),
                    None => self.take_free_in(rng, 0, self.total()),
                }
            }
        }?;
        self.held.insert(client, chosen);
        Some(self.index_to_addr(chosen))
    }

    /// Re-claims a *specific* free address for a client (used by DHCP when
    /// honouring an expired-but-unclaimed binding). Returns `false` when the
    /// address is occupied or foreign.
    pub fn claim_specific(&mut self, client: ClientId, addr: Ipv4Addr) -> bool {
        assert!(
            !self.held.contains_key(&client),
            "{client} already holds an address; release first"
        );
        match self.addr_to_index(addr) {
            Some(i) if !self.occupied(i) => {
                self.occupy(i);
                self.held.insert(client, i);
                true
            }
            _ => false,
        }
    }

    /// Releases the client's current address back to the free set.
    pub fn release(&mut self, client: ClientId) -> Option<Ipv4Addr> {
        let index = self.held.remove(&client)?;
        self.vacate(index);
        Some(self.index_to_addr(index))
    }

    /// Marks a currently-free address occupied by background demand (the
    /// churn process that makes expired DHCP bindings unrecoverable).
    pub fn background_claim(&mut self, addr: Ipv4Addr) -> bool {
        match self.addr_to_index(addr) {
            Some(i) if !self.occupied(i) => {
                self.occupy(i);
                true
            }
            _ => false,
        }
    }

    /// Replaces the pool's prefixes wholesale — administrative renumbering.
    /// All held allocations and overrides are discarded and the background
    /// occupancy re-derived from `seed`; clients must re-acquire addresses
    /// (and will land in the new space).
    pub fn migrate_prefixes(
        &mut self,
        prefixes: Arc<Vec<Prefix>>,
        background_occupancy: f64,
        seed: u64,
    ) {
        *self = AddressPool::from_parts(prefixes, self.policy, background_occupancy, seed);
    }
}

/// Maps `(seed, index)` to a uniform f64 in `[0, 1)` — FNV/splitmix-style
/// avalanche, so adjacent indices give unrelated values.
fn unit_hash(seed: u64, index: u64) -> f64 {
    let z = splitmix64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    const SEED: u64 = 7;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    fn pool(prefixes: &[&str], policy: AllocationPolicy, occ: f64) -> AddressPool {
        let config = PoolConfig {
            prefixes: prefixes.iter().map(|s| p(s)).collect(),
            policy,
            background_occupancy: occ,
        };
        AddressPool::new(&config, SEED)
    }

    #[test]
    fn totals_span_prefixes() {
        let pool = pool(&["10.0.0.0/24", "10.1.0.0/24"], AllocationPolicy::RandomAny, 0.0);
        assert_eq!(pool.total(), 512);
        assert_eq!(pool.free_count(), 512);
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        assert!(p("192.0.2.0/24").contains(a));
        assert_eq!(pool.address_of(ClientId(1)), Some(a));
        assert!(!pool.is_free(a));
        assert_eq!(pool.release(ClientId(1)), Some(a));
        assert!(pool.is_free(a));
        assert_eq!(pool.release(ClientId(1)), None);
    }

    #[test]
    fn prefer_previous_reissues_same_address() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::PreferPrevious, 0.5);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        pool.release(ClientId(1));
        let b = pool.allocate(&mut r, ClientId(1), Some(a)).unwrap();
        assert_eq!(a, b, "RFC 2131 §4.3.1: same address when free");
    }

    #[test]
    fn prefer_previous_falls_back_when_taken() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::PreferPrevious, 0.0);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        pool.release(ClientId(1));
        assert!(pool.background_claim(a));
        let b = pool.allocate(&mut r, ClientId(1), Some(a)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn random_any_rarely_reissues_same() {
        let mut pool = pool(&["10.0.0.0/20"], AllocationPolicy::RandomAny, 0.6);
        let mut r = rng();
        let mut same = 0;
        let mut prev = pool.allocate(&mut r, ClientId(1), None).unwrap();
        for _ in 0..200 {
            pool.release(ClientId(1));
            let next = pool.allocate(&mut r, ClientId(1), Some(prev)).unwrap();
            if next == prev {
                same += 1;
            }
            prev = next;
        }
        assert!(same <= 2, "random allocation almost never repeats: {same}");
    }

    #[test]
    fn same_prefix_bias_controls_cross_prefix_rate() {
        let prefixes = ["10.0.0.0/22", "10.32.0.0/22", "10.64.0.0/22", "10.96.0.0/22"];
        for (bias, lo, hi) in [(0.0, 0.60, 0.90), (0.9, 0.02, 0.25)] {
            let mut pool = pool(&prefixes, AllocationPolicy::SamePrefixBias(bias), 0.3);
            let mut r = rng();
            let mut crossings = 0;
            let mut prev = pool.allocate(&mut r, ClientId(1), None).unwrap();
            let n = 400;
            for _ in 0..n {
                pool.release(ClientId(1));
                let next = pool.allocate(&mut r, ClientId(1), Some(prev)).unwrap();
                let crossed = prefixes
                    .iter()
                    .find(|s| p(s).contains(prev))
                    != prefixes.iter().find(|s| p(s).contains(next));
                if crossed {
                    crossings += 1;
                }
                prev = next;
            }
            let frac = crossings as f64 / n as f64;
            assert!(
                (lo..hi).contains(&frac),
                "bias {bias}: cross-prefix fraction {frac} outside [{lo},{hi})"
            );
        }
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut pool = pool(&["192.0.2.0/30"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        for i in 0..4 {
            assert!(pool.allocate(&mut r, ClientId(i), None).is_some());
        }
        assert_eq!(pool.free_count(), 0);
        assert!(pool.allocate(&mut r, ClientId(99), None).is_none());
    }

    #[test]
    fn claim_specific_honours_occupancy() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::RandomAny, 0.0);
        let addr: Ipv4Addr = "192.0.2.5".parse().unwrap();
        assert!(pool.claim_specific(ClientId(1), addr));
        assert_eq!(pool.address_of(ClientId(1)), Some(addr));
        assert!(!pool.claim_specific(ClientId(2), addr));
        // Foreign address:
        assert!(!pool.claim_specific(ClientId(2), "10.0.0.1".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "already holds an address")]
    fn double_allocate_panics() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        pool.allocate(&mut r, ClientId(1), None).unwrap();
        pool.allocate(&mut r, ClientId(1), None);
    }

    #[test]
    #[should_panic(expected = "must be disjoint")]
    fn overlapping_prefixes_rejected() {
        pool(&["10.0.0.0/16", "10.0.4.0/24"], AllocationPolicy::RandomAny, 0.0);
    }

    #[test]
    fn background_occupancy_seeds_load() {
        let pool = pool(&["10.0.0.0/16"], AllocationPolicy::RandomAny, 0.6);
        let frac = 1.0 - pool.free_count() as f64 / pool.total() as f64;
        assert!((frac - 0.6).abs() < 0.02, "occupancy {frac}");
    }

    #[test]
    fn background_occupancy_differs_across_seeds() {
        let config = PoolConfig {
            prefixes: vec![p("10.0.0.0/24")],
            policy: AllocationPolicy::RandomAny,
            background_occupancy: 0.5,
        };
        let a = AddressPool::new(&config, 1);
        let b = AddressPool::new(&config, 2);
        let pattern = |pool: &AddressPool| -> Vec<bool> {
            (0..pool.total()).map(|i| pool.occupied(i)).collect()
        };
        assert_ne!(pattern(&a), pattern(&b), "seeds must decorrelate background load");
        assert_eq!(pattern(&a), pattern(&AddressPool::new(&config, 1)), "same seed, same load");
    }

    #[test]
    fn giant_pool_constructs_in_o_prefixes() {
        // 2^26 addresses — far past the old bitmap ceiling. Construction and
        // allocation must not sweep the space.
        let mut pool = pool(&["8.0.0.0/6"], AllocationPolicy::RandomAny, 0.6);
        assert_eq!(pool.total(), 1 << 26);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        assert!(p("8.0.0.0/6").contains(a));
        assert!(!pool.is_free(a));
        assert_eq!(pool.release(ClientId(1)), Some(a));
    }

    #[test]
    fn free_count_tracks_allocations_exactly() {
        let mut pool = pool(&["10.0.0.0/24", "10.1.0.0/25"], AllocationPolicy::RandomAny, 0.3);
        let before = pool.free_count();
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        assert_eq!(pool.free_count(), before - 1);
        pool.background_claim(pool.address_of(ClientId(1)).map(|_| a).unwrap());
        assert_eq!(pool.free_count(), before - 1, "occupied address cannot be re-claimed");
        pool.release(ClientId(1));
        assert_eq!(pool.free_count(), before);
    }

    #[test]
    fn migrate_prefixes_moves_address_space() {
        let mut pool = pool(&["10.0.0.0/24"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        assert!(p("10.0.0.0/24").contains(a));
        pool.migrate_prefixes(Arc::new(vec![p("172.16.0.0/24")]), 0.0, SEED ^ 1);
        assert_eq!(pool.address_of(ClientId(1)), None, "allocations reset");
        let b = pool.allocate(&mut r, ClientId(1), Some(a)).unwrap();
        assert!(p("172.16.0.0/24").contains(b));
    }

    #[test]
    fn addr_to_index_agrees_with_linear_scan() {
        // Prefix list deliberately not sorted by base.
        let pool = pool(
            &["100.96.0.0/20", "100.64.0.0/18", "100.80.0.0/21"],
            AllocationPolicy::RandomAny,
            0.0,
        );
        let linear = |addr: Ipv4Addr| -> Option<u64> {
            let mut start = 0u64;
            for pfx in pool.prefixes().iter() {
                if let Some(off) = pfx.index_of(addr) {
                    return Some(start + off);
                }
                start += pfx.size();
            }
            None
        };
        let mut probe_addrs: Vec<Ipv4Addr> = Vec::new();
        for pfx in pool.prefixes().iter() {
            probe_addrs.push(pfx.base());
            probe_addrs.push(pfx.nth(pfx.size() - 1));
            probe_addrs.push(pfx.nth(pfx.size() / 2));
        }
        probe_addrs.push("100.64.255.255".parse().unwrap());
        probe_addrs.push("9.9.9.9".parse().unwrap());
        probe_addrs.push("100.96.16.0".parse().unwrap()); // just past the /20
        for addr in probe_addrs {
            assert_eq!(pool.addr_to_index(addr), linear(addr), "{addr}");
        }
        // Round trip: every index maps to an address that maps back.
        for i in [0u64, 1, 4_095, 4_096, 16_383, 16_384, 18_431] {
            let addr = pool.index_to_addr(i);
            assert_eq!(pool.addr_to_index(addr), Some(i), "index {i} via {addr}");
        }
    }
}

#[cfg(test)]
mod oracle {
    //! An eager-bitmap mirror of [`AddressPool`]: identical allocation logic
    //! over an explicit `Vec<bool>` seeded from the same background hash.
    //! The proptests below drive both through the same operation sequences
    //! and RNG streams and demand identical observable behaviour — pinning
    //! the override bookkeeping to the materialized representation the pool
    //! used before background occupancy became implicit.

    use super::*;

    pub struct EagerPool {
        prefixes: Vec<Prefix>,
        cum_end: Vec<u64>,
        occupied: Vec<bool>,
        policy: AllocationPolicy,
        held: HashMap<ClientId, u64>,
    }

    impl EagerPool {
        pub fn new(config: &PoolConfig, seed: u64) -> EagerPool {
            let mut cum_end = Vec::new();
            let mut total = 0u64;
            for p in &config.prefixes {
                total += p.size();
                cum_end.push(total);
            }
            let occupied = (0..total)
                .map(|i| unit_hash(seed, i) < config.background_occupancy)
                .collect();
            EagerPool {
                prefixes: config.prefixes.clone(),
                cum_end,
                occupied,
                policy: config.policy,
                held: HashMap::new(),
            }
        }

        fn total(&self) -> u64 {
            *self.cum_end.last().unwrap()
        }

        pub fn free_count(&self) -> u64 {
            self.occupied.iter().filter(|&&o| !o).count() as u64
        }

        fn index_to_addr(&self, index: u64) -> Ipv4Addr {
            let slot = self.cum_end.partition_point(|&end| end <= index);
            let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
            self.prefixes[slot].nth(index - start)
        }

        fn addr_to_index(&self, addr: Ipv4Addr) -> Option<u64> {
            let mut start = 0u64;
            for p in &self.prefixes {
                if let Some(off) = p.index_of(addr) {
                    return Some(start + off);
                }
                start += p.size();
            }
            None
        }

        fn prefix_range_of(&self, index: u64) -> (u64, u64) {
            let slot = self.cum_end.partition_point(|&end| end <= index);
            let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
            (start, self.cum_end[slot])
        }

        pub fn is_free(&self, addr: Ipv4Addr) -> bool {
            self.addr_to_index(addr).map(|i| !self.occupied[i as usize]).unwrap_or(false)
        }

        fn take_free_in<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            lo: u64,
            hi: u64,
        ) -> Option<u64> {
            for _ in 0..64 {
                let i = rng.gen_range(lo..hi);
                if !self.occupied[i as usize] {
                    self.occupied[i as usize] = true;
                    return Some(i);
                }
            }
            let span = hi - lo;
            let start = rng.gen_range(0..span);
            for k in 0..span {
                let i = lo + (start + k) % span;
                if !self.occupied[i as usize] {
                    self.occupied[i as usize] = true;
                    return Some(i);
                }
            }
            None
        }

        pub fn allocate<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            client: ClientId,
            previous: Option<Ipv4Addr>,
        ) -> Option<Ipv4Addr> {
            let prev_index = previous.and_then(|a| self.addr_to_index(a));
            let chosen = match self.policy {
                AllocationPolicy::PreferPrevious => match prev_index {
                    Some(i) if !self.occupied[i as usize] => {
                        self.occupied[i as usize] = true;
                        Some(i)
                    }
                    _ => self.take_free_in(rng, 0, self.total()),
                },
                AllocationPolicy::RandomAny => self.take_free_in(rng, 0, self.total()),
                AllocationPolicy::SamePrefixBias(bias) => {
                    let in_prev = prev_index
                        .filter(|_| rng.gen::<f64>() < bias)
                        .map(|i| self.prefix_range_of(i));
                    match in_prev {
                        Some((lo, hi)) => self
                            .take_free_in(rng, lo, hi)
                            .or_else(|| self.take_free_in(rng, 0, self.total())),
                        None => self.take_free_in(rng, 0, self.total()),
                    }
                }
            }?;
            self.held.insert(client, chosen);
            Some(self.index_to_addr(chosen))
        }

        pub fn claim_specific(&mut self, client: ClientId, addr: Ipv4Addr) -> bool {
            match self.addr_to_index(addr) {
                Some(i) if !self.occupied[i as usize] => {
                    self.occupied[i as usize] = true;
                    self.held.insert(client, i);
                    true
                }
                _ => false,
            }
        }

        pub fn release(&mut self, client: ClientId) -> Option<Ipv4Addr> {
            let index = self.held.remove(&client)?;
            self.occupied[index as usize] = false;
            Some(self.index_to_addr(index))
        }

        pub fn background_claim(&mut self, addr: Ipv4Addr) -> bool {
            match self.addr_to_index(addr) {
                Some(i) if !self.occupied[i as usize] => {
                    self.occupied[i as usize] = true;
                    true
                }
                _ => false,
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::oracle::EagerPool;
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn policy_from(code: u8) -> AllocationPolicy {
        match code % 3 {
            0 => AllocationPolicy::PreferPrevious,
            1 => AllocationPolicy::RandomAny,
            _ => AllocationPolicy::SamePrefixBias(0.7),
        }
    }

    fn prefixes_from(code: u8) -> Vec<Prefix> {
        let parse = |s: &str| s.parse().unwrap();
        match code % 3 {
            0 => vec![parse("10.0.0.0/24")],
            1 => vec![parse("10.0.0.0/24"), parse("10.1.0.0/25")],
            _ => vec![parse("100.96.0.0/26"), parse("10.0.0.0/25"), parse("10.1.0.0/24")],
        }
    }

    proptest! {
        /// The lazy pool and the eager-bitmap oracle, driven by identical
        /// RNG streams and operation sequences, return identical addresses
        /// and report identical occupancy — across policies, occupancy
        /// levels, and multi-prefix layouts.
        #[test]
        fn lazy_pool_equals_eager_bitmap(
            seed in any::<u64>(),
            pool_seed in any::<u64>(),
            policy_code in 0u8..3,
            prefix_code in 0u8..3,
            occ_pct in 0u8..95,
            ops in proptest::collection::vec((0u8..4, 0u64..5), 1..150),
        ) {
            let config = PoolConfig {
                prefixes: prefixes_from(prefix_code),
                policy: policy_from(policy_code),
                background_occupancy: f64::from(occ_pct) / 100.0,
            };
            let mut lazy = AddressPool::new(&config, pool_seed);
            let mut eager = EagerPool::new(&config, pool_seed);
            let mut lazy_rng = ChaCha12Rng::seed_from_u64(seed);
            let mut eager_rng = ChaCha12Rng::seed_from_u64(seed);
            let mut last: HashMap<ClientId, Ipv4Addr> = HashMap::new();
            let mut live: Vec<ClientId> = Vec::new();
            for (op, client) in ops {
                let client = ClientId(client);
                match op {
                    0 if !lazy.address_of(client).is_some() => {
                        let prev = last.get(&client).copied();
                        let a = lazy.allocate(&mut lazy_rng, client, prev);
                        let b = eager.allocate(&mut eager_rng, client, prev);
                        prop_assert_eq!(a, b, "allocate diverged");
                        if let Some(addr) = a {
                            last.insert(client, addr);
                            live.push(client);
                        }
                    }
                    1 => {
                        let a = lazy.release(client);
                        let b = eager.release(client);
                        prop_assert_eq!(a, b, "release diverged");
                        live.retain(|&c| c != client);
                    }
                    2 => {
                        if let Some(&addr) = last.get(&client) {
                            if lazy.address_of(client).is_none() {
                                let a = lazy.claim_specific(client, addr);
                                let b = eager.claim_specific(client, addr);
                                prop_assert_eq!(a, b, "claim_specific diverged");
                                if a {
                                    live.push(client);
                                }
                            }
                        }
                    }
                    _ => {
                        if let Some(&addr) = last.get(&client) {
                            let a = lazy.background_claim(addr);
                            let b = eager.background_claim(addr);
                            prop_assert_eq!(a, b, "background_claim diverged");
                        }
                    }
                }
                prop_assert_eq!(lazy.free_count(), eager.free_count(), "free_count diverged");
                for c in &live {
                    prop_assert_eq!(lazy.address_of(*c).map(|a| eager.is_free(a)), Some(false));
                }
                for addr in last.values() {
                    prop_assert_eq!(lazy.is_free(*addr), eager.is_free(*addr), "is_free diverged");
                }
            }
        }

        /// Free count plus our allocations plus background load always
        /// equals the pool total, across any interleaving of operations.
        #[test]
        fn accounting_invariant(seed in any::<u64>(), ops in proptest::collection::vec(0u8..4, 1..200)) {
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            let config = PoolConfig {
                prefixes: vec!["10.0.0.0/24".parse().unwrap(), "10.1.0.0/25".parse().unwrap()],
                policy: AllocationPolicy::RandomAny,
                background_occupancy: 0.3,
            };
            let mut pool = AddressPool::new(&config, seed ^ 0xA5A5);
            let mut live: Vec<ClientId> = Vec::new();
            let mut next_id = 0u64;
            let mut released: Vec<Ipv4Addr> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        let c = ClientId(next_id);
                        next_id += 1;
                        if pool.allocate(&mut r, c, None).is_some() {
                            live.push(c);
                        }
                    }
                    1 => {
                        if let Some(c) = live.pop() {
                            let a = pool.release(c).unwrap();
                            released.push(a);
                        }
                    }
                    2 => {
                        if let Some(a) = released.pop() {
                            pool.background_claim(a);
                        }
                    }
                    _ => {
                        if let Some(a) = released.pop() {
                            let c = ClientId(next_id);
                            next_id += 1;
                            if pool.claim_specific(c, a) {
                                live.push(c);
                            }
                        }
                    }
                }
                // Each live client's address must be distinct and occupied.
                let mut seen = std::collections::HashSet::new();
                for c in &live {
                    let a = pool.address_of(*c).unwrap();
                    prop_assert!(seen.insert(a), "duplicate allocation {a}");
                    prop_assert!(!pool.is_free(a));
                }
                prop_assert!(pool.free_count() <= pool.total());
            }
        }
    }
}
