//! Dynamic address pools spanning multiple BGP-routed prefixes.
//!
//! §6 of the paper finds that nearly half of all address changes also change
//! BGP prefix: ISP pools are not a single contiguous block. A pool here is a
//! list of prefixes flattened into one index space, with an allocation policy
//! that decides how strongly a fresh allocation is attracted to the
//! requester's *previous* prefix. That single knob reproduces the per-ISP
//! spread in Table 7 (DTAG 24% cross-BGP vs Telecom Italia 85%).

use dynaddr_types::ip::Prefix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Identifier of an access-network client (one per CPE).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// How a pool chooses the address for a (re)connecting client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Re-issue the client's previous address whenever it is free; fall back
    /// to a random free address. This is the RFC 2131 §4.3.1 behaviour.
    PreferPrevious,
    /// Draw uniformly from the free addresses of the whole pool. The
    /// RADIUS-without-memory behaviour Maier et al. observed.
    RandomAny,
    /// With probability `bias`, draw from the free addresses of the client's
    /// previous *prefix*; otherwise from the whole pool. `bias = 0.0`
    /// degenerates to [`AllocationPolicy::RandomAny`].
    SamePrefixBias(f64),
}

/// Static description of a pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// The BGP-routed prefixes the pool allocates from.
    pub prefixes: Vec<Prefix>,
    /// Allocation policy.
    pub policy: AllocationPolicy,
    /// Fraction of the pool pre-occupied by customers outside the simulated
    /// probe population (`0.0..1.0`). High occupancy makes "same address
    /// again by chance" rare, as in real ISPs.
    pub background_occupancy: f64,
}

impl PoolConfig {
    /// Convenience constructor.
    pub fn new(prefixes: Vec<Prefix>, policy: AllocationPolicy) -> PoolConfig {
        PoolConfig { prefixes, policy, background_occupancy: 0.6 }
    }
}

/// A concrete pool instance with allocation state.
///
/// Addresses are indexed `0..total`, flattened across the prefixes in order.
/// Occupancy is a bitmap; background occupancy is modelled by marking a
/// random subset occupied at construction (deterministic under the supplied
/// RNG). The structure deliberately has no notion of time: lease/session
/// lifetimes live in the DHCP/PPP layers above.
#[derive(Debug, Clone)]
pub struct AddressPool {
    prefixes: Vec<Prefix>,
    /// Exclusive cumulative end index of each prefix in the flat space.
    cum_end: Vec<u64>,
    occupied: Vec<bool>,
    occupied_count: u64,
    policy: AllocationPolicy,
    /// Current holder of each of *our* allocations (not background load).
    held: HashMap<ClientId, u64>,
}

impl AddressPool {
    /// Builds a pool, seeding background occupancy from `rng`.
    pub fn new<R: Rng + ?Sized>(config: &PoolConfig, rng: &mut R) -> AddressPool {
        assert!(!config.prefixes.is_empty(), "pool needs at least one prefix");
        assert!(
            (0.0..1.0).contains(&config.background_occupancy),
            "background occupancy must be in [0,1): {}",
            config.background_occupancy
        );
        let mut cum_end = Vec::with_capacity(config.prefixes.len());
        let mut total = 0u64;
        for p in &config.prefixes {
            total += p.size();
            cum_end.push(total);
        }
        assert!(total <= 1 << 24, "pool too large to materialize: {total} addresses");
        let mut occupied = vec![false; total as usize];
        let mut occupied_count = 0u64;
        for slot in occupied.iter_mut() {
            if rng.gen::<f64>() < config.background_occupancy {
                *slot = true;
                occupied_count += 1;
            }
        }
        AddressPool {
            prefixes: config.prefixes.clone(),
            cum_end,
            occupied,
            occupied_count,
            policy: config.policy,
            held: HashMap::new(),
        }
    }

    /// Total number of addresses across all prefixes.
    pub fn total(&self) -> u64 {
        *self.cum_end.last().expect("at least one prefix")
    }

    /// Number of currently free addresses.
    pub fn free_count(&self) -> u64 {
        self.total() - self.occupied_count
    }

    /// The prefixes of the pool.
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// The address a client currently holds, if any.
    pub fn address_of(&self, client: ClientId) -> Option<Ipv4Addr> {
        self.held.get(&client).map(|&i| self.index_to_addr(i))
    }

    fn index_to_addr(&self, index: u64) -> Ipv4Addr {
        let slot = self.cum_end.partition_point(|&end| end <= index);
        let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
        self.prefixes[slot].nth(index - start)
    }

    fn addr_to_index(&self, addr: Ipv4Addr) -> Option<u64> {
        for (slot, p) in self.prefixes.iter().enumerate() {
            if let Some(off) = p.index_of(addr) {
                let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
                return Some(start + off);
            }
        }
        None
    }

    /// The index range `[start, end)` of the prefix containing flat `index`.
    fn prefix_range_of(&self, index: u64) -> (u64, u64) {
        let slot = self.cum_end.partition_point(|&end| end <= index);
        let start = if slot == 0 { 0 } else { self.cum_end[slot - 1] };
        (start, self.cum_end[slot])
    }

    /// Whether an address is currently free.
    pub fn is_free(&self, addr: Ipv4Addr) -> bool {
        self.addr_to_index(addr)
            .map(|i| !self.occupied[i as usize])
            .unwrap_or(false)
    }

    /// Marks an arbitrary free address in `[lo, hi)` occupied, returning its
    /// index. Rejection-samples, then falls back to a linear sweep from a
    /// random start so allocation cannot fail while space remains.
    fn take_free_in<R: Rng + ?Sized>(&mut self, rng: &mut R, lo: u64, hi: u64) -> Option<u64> {
        debug_assert!(lo < hi);
        for _ in 0..64 {
            let i = rng.gen_range(lo..hi);
            if !self.occupied[i as usize] {
                self.occupy(i);
                return Some(i);
            }
        }
        let span = hi - lo;
        let start = rng.gen_range(0..span);
        for k in 0..span {
            let i = lo + (start + k) % span;
            if !self.occupied[i as usize] {
                self.occupy(i);
                return Some(i);
            }
        }
        None
    }

    fn occupy(&mut self, index: u64) {
        debug_assert!(!self.occupied[index as usize]);
        self.occupied[index as usize] = true;
        self.occupied_count += 1;
    }

    fn vacate(&mut self, index: u64) {
        debug_assert!(self.occupied[index as usize]);
        self.occupied[index as usize] = false;
        self.occupied_count -= 1;
    }

    /// Allocates an address for `client` according to the pool policy.
    ///
    /// `previous` is the client's last known address (it need not be
    /// currently held — e.g. after an expired lease). Returns `None` only
    /// when the pool is completely full.
    pub fn allocate<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client: ClientId,
        previous: Option<Ipv4Addr>,
    ) -> Option<Ipv4Addr> {
        assert!(
            !self.held.contains_key(&client),
            "{client} already holds an address; release first"
        );
        let prev_index = previous.and_then(|a| self.addr_to_index(a));

        let chosen = match self.policy {
            AllocationPolicy::PreferPrevious => match prev_index {
                Some(i) if !self.occupied[i as usize] => {
                    self.occupy(i);
                    Some(i)
                }
                _ => self.take_free_in(rng, 0, self.total()),
            },
            AllocationPolicy::RandomAny => self.take_free_in(rng, 0, self.total()),
            AllocationPolicy::SamePrefixBias(bias) => {
                let in_prev_prefix = prev_index
                    .filter(|_| rng.gen::<f64>() < bias)
                    .map(|i| self.prefix_range_of(i));
                match in_prev_prefix {
                    Some((lo, hi)) => self
                        .take_free_in(rng, lo, hi)
                        .or_else(|| self.take_free_in(rng, 0, self.total())),
                    None => self.take_free_in(rng, 0, self.total()),
                }
            }
        }?;
        self.held.insert(client, chosen);
        Some(self.index_to_addr(chosen))
    }

    /// Re-claims a *specific* free address for a client (used by DHCP when
    /// honouring an expired-but-unclaimed binding). Returns `false` when the
    /// address is occupied or foreign.
    pub fn claim_specific(&mut self, client: ClientId, addr: Ipv4Addr) -> bool {
        assert!(
            !self.held.contains_key(&client),
            "{client} already holds an address; release first"
        );
        match self.addr_to_index(addr) {
            Some(i) if !self.occupied[i as usize] => {
                self.occupy(i);
                self.held.insert(client, i);
                true
            }
            _ => false,
        }
    }

    /// Releases the client's current address back to the free set.
    pub fn release(&mut self, client: ClientId) -> Option<Ipv4Addr> {
        let index = self.held.remove(&client)?;
        self.vacate(index);
        Some(self.index_to_addr(index))
    }

    /// Marks a currently-free address occupied by background demand (the
    /// churn process that makes expired DHCP bindings unrecoverable).
    pub fn background_claim(&mut self, addr: Ipv4Addr) -> bool {
        match self.addr_to_index(addr) {
            Some(i) if !self.occupied[i as usize] => {
                self.occupy(i);
                true
            }
            _ => false,
        }
    }

    /// Replaces the pool's prefixes wholesale — administrative renumbering.
    /// All held allocations and background occupancy are rebuilt; clients
    /// must re-acquire addresses (and will land in the new space).
    pub fn migrate_prefixes<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        prefixes: &[Prefix],
        background_occupancy: f64,
    ) {
        let config = PoolConfig {
            prefixes: prefixes.to_vec(),
            policy: self.policy,
            background_occupancy,
        };
        *self = AddressPool::new(&config, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    fn pool(prefixes: &[&str], policy: AllocationPolicy, occ: f64) -> AddressPool {
        let config = PoolConfig {
            prefixes: prefixes.iter().map(|s| p(s)).collect(),
            policy,
            background_occupancy: occ,
        };
        AddressPool::new(&config, &mut rng())
    }

    #[test]
    fn totals_span_prefixes() {
        let pool = pool(&["10.0.0.0/24", "10.1.0.0/24"], AllocationPolicy::RandomAny, 0.0);
        assert_eq!(pool.total(), 512);
        assert_eq!(pool.free_count(), 512);
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        assert!(p("192.0.2.0/24").contains(a));
        assert_eq!(pool.address_of(ClientId(1)), Some(a));
        assert!(!pool.is_free(a));
        assert_eq!(pool.release(ClientId(1)), Some(a));
        assert!(pool.is_free(a));
        assert_eq!(pool.release(ClientId(1)), None);
    }

    #[test]
    fn prefer_previous_reissues_same_address() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::PreferPrevious, 0.5);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        pool.release(ClientId(1));
        let b = pool.allocate(&mut r, ClientId(1), Some(a)).unwrap();
        assert_eq!(a, b, "RFC 2131 §4.3.1: same address when free");
    }

    #[test]
    fn prefer_previous_falls_back_when_taken() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::PreferPrevious, 0.0);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        pool.release(ClientId(1));
        assert!(pool.background_claim(a));
        let b = pool.allocate(&mut r, ClientId(1), Some(a)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn random_any_rarely_reissues_same() {
        let mut pool = pool(&["10.0.0.0/20"], AllocationPolicy::RandomAny, 0.6);
        let mut r = rng();
        let mut same = 0;
        let mut prev = pool.allocate(&mut r, ClientId(1), None).unwrap();
        for _ in 0..200 {
            pool.release(ClientId(1));
            let next = pool.allocate(&mut r, ClientId(1), Some(prev)).unwrap();
            if next == prev {
                same += 1;
            }
            prev = next;
        }
        assert!(same <= 2, "random allocation almost never repeats: {same}");
    }

    #[test]
    fn same_prefix_bias_controls_cross_prefix_rate() {
        let prefixes = ["10.0.0.0/22", "10.32.0.0/22", "10.64.0.0/22", "10.96.0.0/22"];
        for (bias, lo, hi) in [(0.0, 0.60, 0.90), (0.9, 0.02, 0.25)] {
            let mut pool = pool(&prefixes, AllocationPolicy::SamePrefixBias(bias), 0.3);
            let mut r = rng();
            let mut crossings = 0;
            let mut prev = pool.allocate(&mut r, ClientId(1), None).unwrap();
            let n = 400;
            for _ in 0..n {
                pool.release(ClientId(1));
                let next = pool.allocate(&mut r, ClientId(1), Some(prev)).unwrap();
                let crossed = prefixes
                    .iter()
                    .find(|s| p(s).contains(prev))
                    != prefixes.iter().find(|s| p(s).contains(next));
                if crossed {
                    crossings += 1;
                }
                prev = next;
            }
            let frac = crossings as f64 / n as f64;
            assert!(
                (lo..hi).contains(&frac),
                "bias {bias}: cross-prefix fraction {frac} outside [{lo},{hi})"
            );
        }
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut pool = pool(&["192.0.2.0/30"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        for i in 0..4 {
            assert!(pool.allocate(&mut r, ClientId(i), None).is_some());
        }
        assert_eq!(pool.free_count(), 0);
        assert!(pool.allocate(&mut r, ClientId(99), None).is_none());
    }

    #[test]
    fn claim_specific_honours_occupancy() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::RandomAny, 0.0);
        let addr: Ipv4Addr = "192.0.2.5".parse().unwrap();
        assert!(pool.claim_specific(ClientId(1), addr));
        assert_eq!(pool.address_of(ClientId(1)), Some(addr));
        assert!(!pool.claim_specific(ClientId(2), addr));
        // Foreign address:
        assert!(!pool.claim_specific(ClientId(2), "10.0.0.1".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "already holds an address")]
    fn double_allocate_panics() {
        let mut pool = pool(&["192.0.2.0/24"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        pool.allocate(&mut r, ClientId(1), None).unwrap();
        pool.allocate(&mut r, ClientId(1), None);
    }

    #[test]
    fn background_occupancy_seeds_load() {
        let pool = pool(&["10.0.0.0/16"], AllocationPolicy::RandomAny, 0.6);
        let frac = 1.0 - pool.free_count() as f64 / pool.total() as f64;
        assert!((frac - 0.6).abs() < 0.02, "occupancy {frac}");
    }

    #[test]
    fn migrate_prefixes_moves_address_space() {
        let mut pool = pool(&["10.0.0.0/24"], AllocationPolicy::RandomAny, 0.0);
        let mut r = rng();
        let a = pool.allocate(&mut r, ClientId(1), None).unwrap();
        assert!(p("10.0.0.0/24").contains(a));
        pool.migrate_prefixes(&mut r, &[p("172.16.0.0/24")], 0.0);
        assert_eq!(pool.address_of(ClientId(1)), None, "allocations reset");
        let b = pool.allocate(&mut r, ClientId(1), Some(a)).unwrap();
        assert!(p("172.16.0.0/24").contains(b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    proptest! {
        /// Free count plus our allocations plus background load always
        /// equals the pool total, across any interleaving of operations.
        #[test]
        fn accounting_invariant(seed in any::<u64>(), ops in proptest::collection::vec(0u8..4, 1..200)) {
            let mut r = ChaCha12Rng::seed_from_u64(seed);
            let config = PoolConfig {
                prefixes: vec!["10.0.0.0/24".parse().unwrap(), "10.1.0.0/25".parse().unwrap()],
                policy: AllocationPolicy::RandomAny,
                background_occupancy: 0.3,
            };
            let mut pool = AddressPool::new(&config, &mut r);
            let mut live: Vec<ClientId> = Vec::new();
            let mut next_id = 0u64;
            let mut released: Vec<Ipv4Addr> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        let c = ClientId(next_id);
                        next_id += 1;
                        if pool.allocate(&mut r, c, None).is_some() {
                            live.push(c);
                        }
                    }
                    1 => {
                        if let Some(c) = live.pop() {
                            let a = pool.release(c).unwrap();
                            released.push(a);
                        }
                    }
                    2 => {
                        if let Some(a) = released.pop() {
                            pool.background_claim(a);
                        }
                    }
                    _ => {
                        if let Some(a) = released.pop() {
                            let c = ClientId(next_id);
                            next_id += 1;
                            if pool.claim_specific(c, a) {
                                live.push(c);
                            }
                        }
                    }
                }
                // Each live client's address must be distinct and occupied.
                let mut seen = std::collections::HashSet::new();
                for c in &live {
                    let a = pool.address_of(*c).unwrap();
                    prop_assert!(seen.insert(a), "duplicate allocation {a}");
                    prop_assert!(!pool.is_free(a));
                }
                prop_assert!(pool.free_count() <= pool.total());
            }
        }
    }
}
