//! The [`IspNetwork`] facade: one object per ISP that the Atlas simulator
//! drives, hiding whether the access technology is DHCP or PPP.
//!
//! The simulator only needs four verbs:
//!
//! * [`IspNetwork::connect`] — CPE boots, reconnects, or recovers from an
//!   outage; the ISP decides whether the address survives;
//! * [`IspNetwork::next_action`] — when the ISP side will next act on its
//!   own (DHCP T1 renewal, PPP session-cap expiry);
//! * [`IspNetwork::handle_action`] — execute that scheduled action;
//! * [`IspNetwork::admin_renumber`] — en-masse migration to new prefixes
//!   (the rare administrative renumbering of §8).

use crate::dhcp::{DhcpConfig, DhcpServer};
use crate::pool::{AddressPool, ClientId, PoolConfig};
use crate::ppp::{PppConfig, PppServer};
use dynaddr_types::{Asn, Prefix, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Access-technology configuration for an ISP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessConfig {
    /// DHCP-based access (cable-style): stable addresses, outage-driven
    /// changes gated by lease expiry and pool churn.
    Dhcp(DhcpConfig),
    /// PPP/PPPoE + RADIUS access (DSL-style): renumber on reconnect,
    /// optional periodic session caps.
    Ppp(PppConfig),
}

impl AccessConfig {
    /// The configured periodic renumbering period, if any (ground truth for
    /// validating Table 5).
    pub fn periodic_period(&self) -> Option<SimDuration> {
        match self {
            AccessConfig::Dhcp(_) => None,
            AccessConfig::Ppp(c) => c.session_cap,
        }
    }

    /// Whether reconnects after connectivity loss renumber (ground truth
    /// for validating Table 6).
    pub fn renumbers_on_reconnect(&self) -> bool {
        match self {
            AccessConfig::Dhcp(_) => false,
            AccessConfig::Ppp(c) => c.renumber_on_reconnect,
        }
    }
}

enum AccessServer {
    Dhcp(DhcpServer),
    Ppp(PppServer),
}

/// Result of a client-facing interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The client's (possibly new) address.
    pub addr: Ipv4Addr,
    /// Whether the address changed relative to before the interaction.
    pub changed: bool,
}

/// The next ISP-initiated event for a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextIspAction {
    /// DHCP T1 renewal the client should perform (address never changes).
    Renew(SimTime),
    /// PPP session-cap expiry; the ISP may terminate the session then.
    CapExpiry(SimTime),
}

impl NextIspAction {
    /// When the action is due.
    pub fn due(self) -> SimTime {
        match self {
            NextIspAction::Renew(t) | NextIspAction::CapExpiry(t) => t,
        }
    }
}

/// One ISP's access network: pool + access server + per-client schedule.
pub struct IspNetwork {
    asn: Asn,
    pool: AddressPool,
    server: AccessServer,
    access: AccessConfig,
    /// Pending ISP-initiated action per client.
    schedule: HashMap<ClientId, NextIspAction>,
}

impl IspNetwork {
    /// Builds an ISP network; background occupancy is the implicit function
    /// of `pool_seed` (construction is O(prefixes), no RNG is consumed).
    pub fn new(
        asn: Asn,
        pool_config: &PoolConfig,
        access: AccessConfig,
        pool_seed: u64,
    ) -> IspNetwork {
        IspNetwork::with_pool(asn, AddressPool::new(pool_config, pool_seed), access)
    }

    /// Builds an ISP network around an already-constructed pool (the
    /// simulator builds pools from `Arc`-shared prefix lists per shard).
    pub fn with_pool(asn: Asn, pool: AddressPool, access: AccessConfig) -> IspNetwork {
        let server = match &access {
            AccessConfig::Dhcp(c) => AccessServer::Dhcp(DhcpServer::new(c.clone())),
            AccessConfig::Ppp(c) => AccessServer::Ppp(PppServer::new(c.clone())),
        };
        IspNetwork { asn, pool, server, access, schedule: HashMap::new() }
    }

    /// The ISP's autonomous system number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The access configuration (ground truth for validation).
    pub fn access(&self) -> &AccessConfig {
        &self.access
    }

    /// The prefixes the pool currently allocates from.
    pub fn prefixes(&self) -> &[Prefix] {
        self.pool.prefixes()
    }

    /// The client's current address, if the ISP believes it holds one.
    pub fn address_of(&self, client: ClientId, now: SimTime) -> Option<Ipv4Addr> {
        match &self.server {
            AccessServer::Dhcp(s) => s.address_of(client, now),
            AccessServer::Ppp(s) => s.address_of(client),
        }
    }

    /// CPE connects: first boot, reboot, or recovery after being offline for
    /// `offline_for`. Returns the assigned address and whether it changed;
    /// reschedules the next ISP-initiated action.
    pub fn connect<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
        offline_for: Option<SimDuration>,
    ) -> AccessOutcome {
        match &mut self.server {
            AccessServer::Dhcp(s) => {
                // A client that was online kept renewing until it went
                // offline; reflect that before deciding expiry.
                if let Some(off) = offline_for {
                    s.note_renewed_until(client, now - off);
                }
                let out = s.acquire(&mut self.pool, rng, client, now);
                // Administrative pool rotations are ISP-initiated renumber
                // actions; plain T1 renewals never change the address and
                // need no events.
                match s.next_rotation(rng, now) {
                    Some(t) => {
                        self.schedule.insert(client, NextIspAction::CapExpiry(t));
                    }
                    None => {
                        self.schedule.insert(client, NextIspAction::Renew(out.renew_at));
                    }
                }
                AccessOutcome { addr: out.addr, changed: out.changed }
            }
            AccessServer::Ppp(s) => {
                let out = s.connect(&mut self.pool, rng, client, now, offline_for);
                match out.cap_deadline {
                    Some(t) => {
                        self.schedule.insert(client, NextIspAction::CapExpiry(t));
                    }
                    None => {
                        self.schedule.remove(&client);
                    }
                }
                AccessOutcome { addr: out.addr, changed: out.changed }
            }
        }
    }

    /// When the ISP will next act on its own for this client.
    pub fn next_action(&self, client: ClientId) -> Option<NextIspAction> {
        self.schedule.get(&client).copied()
    }

    /// Executes the scheduled ISP action at `now`. For DHCP this is the T1
    /// renewal (never a change); for PPP it is the session-cap expiry (a
    /// change unless skipped). Returns the outcome and reschedules.
    pub fn handle_action<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> AccessOutcome {
        match &mut self.server {
            AccessServer::Dhcp(s) => {
                let pending = self.schedule.get(&client).copied();
                let out = if matches!(pending, Some(NextIspAction::CapExpiry(_))) {
                    s.rotate(&mut self.pool, rng, client, now)
                } else {
                    s.renew(&mut self.pool, rng, client, now)
                };
                match s.next_rotation(rng, now) {
                    Some(t) => {
                        self.schedule.insert(client, NextIspAction::CapExpiry(t));
                    }
                    None => {
                        self.schedule.insert(client, NextIspAction::Renew(out.renew_at));
                    }
                }
                AccessOutcome { addr: out.addr, changed: out.changed }
            }
            AccessServer::Ppp(s) => {
                let out = s.on_cap_expiry(&mut self.pool, rng, client, now);
                match out.cap_deadline {
                    Some(t) => {
                        self.schedule.insert(client, NextIspAction::CapExpiry(t));
                    }
                    None => {
                        self.schedule.remove(&client);
                    }
                }
                AccessOutcome { addr: out.addr, changed: out.changed }
            }
        }
    }

    /// The CPE deliberately tears its session down and re-dials (scheduled
    /// nightly reconnect). For PPP this always establishes a fresh session
    /// (renumbering unless the server remembers addresses); for DHCP it is
    /// an INIT-REBOOT re-acquire that keeps the address.
    pub fn force_reconnect<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        client: ClientId,
        now: SimTime,
    ) -> AccessOutcome {
        match &mut self.server {
            AccessServer::Dhcp(s) => {
                let out = s.acquire(&mut self.pool, rng, client, now);
                self.schedule.insert(client, NextIspAction::Renew(out.renew_at));
                AccessOutcome { addr: out.addr, changed: out.changed }
            }
            AccessServer::Ppp(s) => {
                let out = s.reconnect_new_session(&mut self.pool, rng, client, now);
                match out.cap_deadline {
                    Some(t) => {
                        self.schedule.insert(client, NextIspAction::CapExpiry(t));
                    }
                    None => {
                        self.schedule.remove(&client);
                    }
                }
                AccessOutcome { addr: out.addr, changed: out.changed }
            }
        }
    }

    /// Client leaves the network for good.
    pub fn disconnect(&mut self, client: ClientId) {
        match &mut self.server {
            AccessServer::Dhcp(s) => s.release(&mut self.pool, client),
            AccessServer::Ppp(s) => s.disconnect(&mut self.pool, client),
        }
        self.schedule.remove(&client);
    }

    /// Administrative renumbering: the ISP migrates its dynamic pool to new
    /// prefixes. All bindings are forgotten; every client receives an
    /// address from the new space at its next `connect`. The new background
    /// load is seeded by one draw from `rng`.
    pub fn admin_renumber<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        new_prefixes: Arc<Vec<Prefix>>,
        background_occupancy: f64,
    ) {
        let seed = rng.gen::<u64>();
        self.pool.migrate_prefixes(new_prefixes, background_occupancy, seed);
        match &mut self.server {
            AccessServer::Dhcp(s) => s.reset_all(),
            AccessServer::Ppp(s) => s.reset_all(),
        }
        self.schedule.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::AllocationPolicy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    const T0: SimTime = SimTime(0);

    fn pool_config() -> PoolConfig {
        PoolConfig {
            prefixes: vec!["100.64.0.0/18".parse().unwrap(), "100.65.0.0/18".parse().unwrap()],
            policy: AllocationPolicy::RandomAny,
            background_occupancy: 0.5,
        }
    }

    fn dhcp_isp() -> (IspNetwork, ChaCha12Rng) {
        let rng = ChaCha12Rng::seed_from_u64(31);
        let isp = IspNetwork::new(
            Asn(6830),
            &pool_config(),
            AccessConfig::Dhcp(DhcpConfig::default()),
            31,
        );
        (isp, rng)
    }

    fn ppp_isp(cap_hours: i64) -> (IspNetwork, ChaCha12Rng) {
        let rng = ChaCha12Rng::seed_from_u64(31);
        let isp = IspNetwork::new(
            Asn(3320),
            &pool_config(),
            AccessConfig::Ppp(PppConfig {
                session_cap: Some(SimDuration::from_hours(cap_hours)),
                ..PppConfig::default()
            }),
            31,
        );
        (isp, rng)
    }

    #[test]
    fn dhcp_schedules_renewals() {
        let (mut isp, mut rng) = dhcp_isp();
        let out = isp.connect(&mut rng, ClientId(1), T0, None);
        let action = isp.next_action(ClientId(1)).unwrap();
        assert!(matches!(action, NextIspAction::Renew(_)));
        assert_eq!(action.due(), T0 + SimDuration::from_hours(3));
        let renewed = isp.handle_action(&mut rng, ClientId(1), action.due());
        assert_eq!(renewed.addr, out.addr);
        assert!(!renewed.changed);
        // Renewal chain keeps marching forward.
        let next = isp.next_action(ClientId(1)).unwrap();
        assert_eq!(next.due(), action.due() + SimDuration::from_hours(3));
    }

    #[test]
    fn ppp_schedules_cap_expiry_and_renumbers() {
        let (mut isp, mut rng) = ppp_isp(24);
        let out = isp.connect(&mut rng, ClientId(1), T0, None);
        let action = isp.next_action(ClientId(1)).unwrap();
        assert!(matches!(action, NextIspAction::CapExpiry(_)));
        assert_eq!(action.due(), T0 + SimDuration::from_hours(24));
        let renum = isp.handle_action(&mut rng, ClientId(1), action.due());
        assert!(renum.changed);
        assert_ne!(renum.addr, out.addr);
    }

    #[test]
    fn ground_truth_accessors() {
        let (isp, _) = ppp_isp(24);
        assert_eq!(isp.access().periodic_period(), Some(SimDuration::from_hours(24)));
        assert!(isp.access().renumbers_on_reconnect());
        let (isp, _) = dhcp_isp();
        assert_eq!(isp.access().periodic_period(), None);
        assert!(!isp.access().renumbers_on_reconnect());
    }

    #[test]
    fn admin_renumber_moves_all_clients() {
        let (mut isp, mut rng) = dhcp_isp();
        let before = isp.connect(&mut rng, ClientId(1), T0, None);
        isp.admin_renumber(&mut rng, Arc::new(vec!["198.18.0.0/17".parse().unwrap()]), 0.3);
        assert_eq!(isp.next_action(ClientId(1)), None);
        let after = isp.connect(&mut rng, ClientId(1), T0 + SimDuration::from_hours(1), None);
        // `changed` is relative to the server's (reset) memory; the caller
        // observes the change by comparing addresses.
        assert_ne!(before.addr, after.addr);
        assert!("198.18.0.0/17".parse::<Prefix>().unwrap().contains(after.addr));
    }

    #[test]
    fn disconnect_clears_schedule() {
        let (mut isp, mut rng) = dhcp_isp();
        isp.connect(&mut rng, ClientId(1), T0, None);
        assert!(isp.next_action(ClientId(1)).is_some());
        isp.disconnect(ClientId(1));
        assert!(isp.next_action(ClientId(1)).is_none());
        assert_eq!(isp.address_of(ClientId(1), T0), None);
    }

    #[test]
    fn ppp_outage_recovery_changes_address() {
        let (mut isp, mut rng) = ppp_isp(24);
        let a = isp.connect(&mut rng, ClientId(1), T0, None);
        let b = isp.connect(
            &mut rng,
            ClientId(1),
            T0 + SimDuration::from_mins(30),
            Some(SimDuration::from_mins(29)),
        );
        assert!(b.changed);
        assert_ne!(a.addr, b.addr);
    }

    #[test]
    fn dhcp_outage_recovery_within_lease_is_stable() {
        let (mut isp, mut rng) = dhcp_isp();
        let a = isp.connect(&mut rng, ClientId(1), T0, None);
        let b = isp.connect(
            &mut rng,
            ClientId(1),
            T0 + SimDuration::from_hours(2),
            Some(SimDuration::from_hours(2)),
        );
        assert!(!b.changed);
        assert_eq!(a.addr, b.addr);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::pool::AllocationPolicy;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn pool_config() -> PoolConfig {
        PoolConfig {
            prefixes: vec!["10.0.0.0/22".parse().unwrap(), "10.1.0.0/23".parse().unwrap()],
            policy: AllocationPolicy::PreferPrevious,
            background_occupancy: 0.4,
        }
    }

    proptest! {
        /// Driving an ISP (either access technology) through arbitrary
        /// interleavings of connects, outages, scheduled actions, forced
        /// reconnects, and disconnects never panics, never double-assigns an
        /// address across live clients, and keeps the ISP's view consistent
        /// with what clients were told.
        #[test]
        fn isp_state_machine_is_consistent(
            seed in any::<u64>(),
            use_ppp in any::<bool>(),
            ops in proptest::collection::vec((0u8..5, 0u64..6, 1i64..100_000), 1..120),
        ) {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let access = if use_ppp {
                AccessConfig::Ppp(PppConfig {
                    session_cap: Some(SimDuration::from_hours(24)),
                    skip_renumber_prob: 0.2,
                    ..PppConfig::default()
                })
            } else {
                AccessConfig::Dhcp(DhcpConfig {
                    churn_rate_per_hour: 0.5,
                    rotation_mean: Some(SimDuration::from_days(10)),
                    ..DhcpConfig::default()
                })
            };
            let mut isp = IspNetwork::new(Asn(64500), &pool_config(), access, seed);
            let mut now = SimTime(0);
            // What each connected client was last told it holds.
            let mut held: std::collections::HashMap<ClientId, std::net::Ipv4Addr> =
                Default::default();
            for (op, client, dt) in ops {
                now += SimDuration::from_secs(dt);
                let client = ClientId(client);
                match op {
                    0 => {
                        let out = isp.connect(&mut rng, client, now, None);
                        held.insert(client, out.addr);
                    }
                    1 => {
                        // Outage recovery with a random offline period.
                        let off = SimDuration::from_secs(dt * 7);
                        let out = isp.connect(&mut rng, client, now, Some(off));
                        held.insert(client, out.addr);
                    }
                    2 => {
                        if let std::collections::hash_map::Entry::Occupied(mut e) = held.entry(client) {
                            if let Some(action) = isp.next_action(client) {
                                let at = action.due().max(now);
                                let out = isp.handle_action(&mut rng, client, at);
                                now = at;
                                e.insert(out.addr);
                            }
                        }
                    }
                    3 => {
                        if held.contains_key(&client) {
                            let out = isp.force_reconnect(&mut rng, client, now);
                            held.insert(client, out.addr);
                        }
                    }
                    _ => {
                        isp.disconnect(client);
                        held.remove(&client);
                    }
                }
                // Invariant: live clients hold pairwise-distinct addresses.
                let mut seen = std::collections::HashSet::new();
                for (c, addr) in &held {
                    prop_assert!(
                        seen.insert(*addr),
                        "duplicate address {addr} at op on {c}"
                    );
                }
                // Invariant: the ISP's own view agrees where it has one.
                for (c, addr) in &held {
                    if let Some(isp_view) = isp.address_of(*c, now) {
                        prop_assert_eq!(isp_view, *addr, "ISP and client disagree for {}", c);
                    }
                }
            }
        }
    }
}
