//! # dynaddr-ispnet
//!
//! The ISP access-network substrate: everything between a customer's CPE and
//! the address it is assigned. The paper observes address-change behaviour
//! from the outside and infers the mechanisms; this crate *implements* those
//! mechanisms so the analysis pipeline can be validated against ground truth:
//!
//! * [`pool`] — dynamic address pools spanning multiple BGP-routed prefixes,
//!   with allocation policies that control how often consecutive assignments
//!   cross prefixes (the behaviour measured in Table 7);
//! * [`dhcp`] — a DHCP server model faithful to RFC 2131's address-stability
//!   goal (§4.3.1: re-issue the same address whenever possible), with leases,
//!   half-life renewals, expiry, and pool churn reclaiming expired bindings;
//! * [`ppp`] — a PPP/PPPoE + RADIUS session model: a session drop for *any*
//!   reason yields a fresh address, and ISPs may cap session length
//!   (the periodic renumbering of §4) with optional jitter and skip
//!   probability to reproduce the harmonics of §4.4.2;
//! * [`server`] — the [`server::IspNetwork`] facade the simulator drives:
//!   connect / renew / forced-renumber / outage-recovery, plus
//!   administrative renumbering (en-masse prefix migration, §8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dhcp;
pub mod pool;
pub mod ppp;
pub mod server;

pub use dhcp::{DhcpConfig, DhcpServer};
pub use pool::{AddressPool, AllocationPolicy, ClientId, PoolConfig};
pub use ppp::{PppConfig, PppServer};
pub use server::{AccessConfig, AccessOutcome, IspNetwork, NextIspAction};
