//! Column encodings: how one field of a table is laid out inside a segment.
//!
//! Two physical kinds cover every logical field in the workspace:
//!
//! * [`ColumnKind::I64`] — a sequence of integers stored as **delta +
//!   zigzag + varint**: the first value zigzag-varint coded directly, each
//!   subsequent value as the zigzag-varint of its difference from the
//!   previous one. Sorted probe-id and timestamp columns collapse to ~1
//!   byte per row.
//! * [`ColumnKind::Bytes`] — a sequence of byte strings, each as a varint
//!   length followed by the raw bytes (addresses, tags, names, nested
//!   varint lists).
//!
//! Builders and readers never panic on malformed input: every read is
//! bounds-checked and returns a [`DecodeError`] that the segment layer
//! wraps with the segment's identity.

use crate::varint;
use std::fmt;

/// Error from decoding a column payload (wrapped by the segment layer into
/// a [`crate::StoreError::SegmentCorrupt`] naming the segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub reason: String,
}

impl DecodeError {
    /// A decode error with the given reason.
    pub fn new(reason: impl Into<String>) -> DecodeError {
        DecodeError { reason: reason.into() }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// Physical encoding of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Delta + zigzag + varint coded integers.
    I64,
    /// Varint-length-prefixed byte strings.
    Bytes,
}

/// Accumulates one column's values during segment encode.
#[derive(Debug)]
pub enum ColumnBuilder {
    /// An integer column; `prev` is the delta base.
    I64 {
        /// Last value pushed (delta base for the next push).
        prev: i64,
        /// Encoded payload so far.
        buf: Vec<u8>,
    },
    /// A byte-string column.
    Bytes {
        /// Encoded payload so far.
        buf: Vec<u8>,
    },
}

impl ColumnBuilder {
    /// An empty builder of the given kind.
    pub fn new(kind: ColumnKind) -> ColumnBuilder {
        match kind {
            ColumnKind::I64 => ColumnBuilder::I64 { prev: 0, buf: Vec::new() },
            ColumnKind::Bytes => ColumnBuilder::Bytes { buf: Vec::new() },
        }
    }

    /// Appends an integer (panics if the column is a bytes column — a
    /// schema bug in the `ColumnarRecord` impl, not a data error).
    pub fn push_i64(&mut self, v: i64) {
        match self {
            ColumnBuilder::I64 { prev, buf } => {
                varint::write_i64(buf, v.wrapping_sub(*prev));
                *prev = v;
            }
            ColumnBuilder::Bytes { .. } => panic!("push_i64 on a bytes column"),
        }
    }

    /// Appends a byte string (panics if the column is an integer column).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        match self {
            ColumnBuilder::Bytes { buf } => {
                varint::write_u64(buf, bytes.len() as u64);
                buf.extend_from_slice(bytes);
            }
            ColumnBuilder::I64 { .. } => panic!("push_bytes on an integer column"),
        }
    }

    /// The finished column payload.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            ColumnBuilder::I64 { buf, .. } | ColumnBuilder::Bytes { buf } => buf,
        }
    }
}

/// Streams one column's values back out of a segment payload.
#[derive(Debug)]
pub enum ColumnReader<'a> {
    /// An integer column mid-decode.
    I64 {
        /// Last value decoded (delta base for the next read).
        prev: i64,
        /// The column payload.
        buf: &'a [u8],
        /// Read position within `buf`.
        pos: usize,
    },
    /// A byte-string column mid-decode.
    Bytes {
        /// The column payload.
        buf: &'a [u8],
        /// Read position within `buf`.
        pos: usize,
    },
}

impl<'a> ColumnReader<'a> {
    /// A reader over one column's payload bytes.
    pub fn new(kind: ColumnKind, buf: &'a [u8]) -> ColumnReader<'a> {
        match kind {
            ColumnKind::I64 => ColumnReader::I64 { prev: 0, buf, pos: 0 },
            ColumnKind::Bytes => ColumnReader::Bytes { buf, pos: 0 },
        }
    }

    /// Next integer value.
    pub fn next_i64(&mut self) -> Result<i64, DecodeError> {
        match self {
            ColumnReader::I64 { prev, buf, pos } => {
                let delta = varint::read_i64(buf, pos)?;
                *prev = prev.wrapping_add(delta);
                Ok(*prev)
            }
            ColumnReader::Bytes { .. } => Err(DecodeError::new("integer read on bytes column")),
        }
    }

    /// Next byte string.
    pub fn next_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        match self {
            ColumnReader::Bytes { buf, pos } => {
                let len = varint::read_u64(buf, pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| DecodeError::new("byte string runs past column end"))?;
                let out = &buf[*pos..end];
                *pos = end;
                Ok(out)
            }
            ColumnReader::I64 { .. } => Err(DecodeError::new("bytes read on integer column")),
        }
    }

    /// Verifies the whole payload was consumed — trailing garbage in a
    /// column is corruption even when every row decoded.
    pub fn finish(&self) -> Result<(), DecodeError> {
        let (pos, len) = match self {
            ColumnReader::I64 { buf, pos, .. } | ColumnReader::Bytes { buf, pos } => {
                (*pos, buf.len())
            }
        };
        if pos != len {
            return Err(DecodeError::new(format!(
                "column has {} trailing bytes",
                len - pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_column_roundtrips_and_deltas_compress() {
        let values = [100i64, 101, 102, 103, 50, -7, i64::MAX, i64::MIN];
        let mut b = ColumnBuilder::new(ColumnKind::I64);
        for &v in &values {
            b.push_i64(v);
        }
        let bytes = b.into_bytes();
        let mut r = ColumnReader::new(ColumnKind::I64, &bytes);
        for &v in &values {
            assert_eq!(r.next_i64().unwrap(), v);
        }
        r.finish().unwrap();

        // A sorted run costs one byte per element.
        let mut sorted = ColumnBuilder::new(ColumnKind::I64);
        for v in 1_000_000i64..1_000_100 {
            sorted.push_i64(v);
        }
        let sorted_bytes = sorted.into_bytes();
        assert!(sorted_bytes.len() <= 104, "sorted run should delta-compress");
    }

    #[test]
    fn bytes_column_roundtrips() {
        let rows: [&[u8]; 4] = [b"", b"a", b"\xff\x00\x80\x7f", b"longer row payload"];
        let mut b = ColumnBuilder::new(ColumnKind::Bytes);
        for row in rows {
            b.push_bytes(row);
        }
        let bytes = b.into_bytes();
        let mut r = ColumnReader::new(ColumnKind::Bytes, &bytes);
        for row in rows {
            assert_eq!(r.next_bytes().unwrap(), row);
        }
        r.finish().unwrap();
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        // Byte string length pointing past the end.
        let mut r = ColumnReader::new(ColumnKind::Bytes, &[200, 1, 0]);
        assert!(r.next_bytes().is_err());
        // Truncated varint.
        let mut r = ColumnReader::new(ColumnKind::I64, &[0x80]);
        assert!(r.next_i64().is_err());
        // Trailing garbage.
        let r = ColumnReader::new(ColumnKind::I64, &[0x02]);
        assert!(r.finish().is_err());
        // Kind mismatch is a decode error, not a panic.
        let mut r = ColumnReader::new(ColumnKind::I64, &[0x02]);
        assert!(r.next_bytes().is_err());
    }
}
