//! Segment framing: one checksummed, self-describing run of rows.
//!
//! On the wire a segment is
//!
//! ```text
//! len(u32 LE) | body | crc32(body) (u32 LE)
//! body := table_id(u8) key_lo(varint) key_hi(varint)
//!         row_count(varint) col_count(varint)
//!         { col_len(varint) col_payload }*
//! ```
//!
//! The CRC covers the entire body, so a bit flip anywhere in the header
//! fields or any column payload is detected before decoding starts. The
//! length prefix is redundant with the footer entry (readers cross-check
//! the two), and lets a recover-mode scan re-frame the file when the
//! footer itself is lost.

use crate::column::{ColumnBuilder, ColumnReader, DecodeError};
use crate::crc32::crc32;
use crate::record::ColumnarRecord;
use crate::varint;

/// Parsed segment body header (everything before the column payloads).
pub(crate) struct SegmentHeader {
    pub table: u8,
    pub key_lo: u32,
    pub key_hi: u32,
    pub rows: u64,
    /// Byte position just after the header, where column payloads start.
    pub payload_at: usize,
    pub cols: u64,
}

/// Encodes one run of rows as a framed segment (`len | body | crc`),
/// returning the frame and the key range it covers. `rows` must be
/// non-empty — empty tables simply have no segments.
pub(crate) fn encode_segment<R: ColumnarRecord>(rows: &[R]) -> (Vec<u8>, u32, u32) {
    debug_assert!(!rows.is_empty(), "empty segments are never written");
    let mut cols: Vec<ColumnBuilder> =
        R::COLUMNS.iter().map(|&kind| ColumnBuilder::new(kind)).collect();
    R::encode(rows, &mut cols);

    let (mut key_lo, mut key_hi) = (u32::MAX, 0u32);
    for r in rows {
        key_lo = key_lo.min(r.key());
        key_hi = key_hi.max(r.key());
    }

    let mut body = Vec::new();
    body.push(R::TABLE_ID);
    varint::write_u64(&mut body, u64::from(key_lo));
    varint::write_u64(&mut body, u64::from(key_hi));
    varint::write_u64(&mut body, rows.len() as u64);
    varint::write_u64(&mut body, cols.len() as u64);
    for col in cols {
        let payload = col.into_bytes();
        varint::write_u64(&mut body, payload.len() as u64);
        body.extend_from_slice(&payload);
    }

    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    (frame, key_lo, key_hi)
}

/// Parses just the body header — enough for a recover-mode scan to rebuild
/// a footer entry without decoding the columns.
pub(crate) fn parse_header(body: &[u8]) -> Result<SegmentHeader, DecodeError> {
    let mut pos = 0usize;
    let table = *body.get(0).ok_or_else(|| DecodeError::new("empty segment body"))?;
    pos += 1;
    let key_lo = read_u32(body, &mut pos, "key_lo")?;
    let key_hi = read_u32(body, &mut pos, "key_hi")?;
    let rows = varint::read_u64(body, &mut pos)?;
    // Every row costs at least one byte per column, so a row count larger
    // than the body is unconditionally corrupt — reject it before it can
    // size an allocation.
    if rows > body.len() as u64 {
        return Err(DecodeError::new(format!("implausible row count {rows}")));
    }
    let cols = varint::read_u64(body, &mut pos)?;
    Ok(SegmentHeader { table, key_lo, key_hi, rows, payload_at: pos, cols })
}

fn read_u32(body: &[u8], pos: &mut usize, what: &str) -> Result<u32, DecodeError> {
    let v = varint::read_u64(body, pos)?;
    u32::try_from(v).map_err(|_| DecodeError::new(format!("{what} {v} exceeds u32")))
}

/// Decodes a segment body (CRC already verified by the caller) into typed
/// rows, checking the table id and column schema against `R`.
pub(crate) fn decode_segment<R: ColumnarRecord>(body: &[u8]) -> Result<Vec<R>, DecodeError> {
    let header = parse_header(body)?;
    if header.table != R::TABLE_ID {
        return Err(DecodeError::new(format!(
            "table id {} where {} ({}) was expected",
            header.table,
            R::TABLE_ID,
            R::TABLE_NAME
        )));
    }
    if header.cols != R::COLUMNS.len() as u64 {
        return Err(DecodeError::new(format!(
            "{} columns where the {} schema has {}",
            header.cols,
            R::TABLE_NAME,
            R::COLUMNS.len()
        )));
    }
    let mut pos = header.payload_at;
    let mut readers = Vec::with_capacity(R::COLUMNS.len());
    for &kind in R::COLUMNS {
        let len = varint::read_u64(body, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| DecodeError::new("column payload runs past segment end"))?;
        readers.push(ColumnReader::new(kind, &body[pos..end]));
        pos = end;
    }
    if pos != body.len() {
        return Err(DecodeError::new(format!(
            "segment has {} trailing bytes",
            body.len() - pos
        )));
    }
    let rows = R::decode(&mut readers, header.rows as usize)?;
    for r in &readers {
        r.finish()?;
    }
    Ok(rows)
}
