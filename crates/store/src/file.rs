//! Whole-file layout: magic, segments, footer index, trailer.
//!
//! ```text
//! file    := MAGIC(8) segment* footer trailer
//! footer  := entry_count(varint) entry* crc32(footer bytes) (u32 LE)
//! entry   := table_id(u8) key_lo key_hi rows offset len   (all varints)
//! trailer := footer_offset(u64 LE) MAGIC_END(8)
//! ```
//!
//! The footer is the random-access index: readers locate it through the
//! fixed-size trailer, verify its checksum, and then know every segment's
//! table, key range, offset, and length — so segments decode independently
//! (and in parallel on `dynaddr-exec`), and a single key's segments can be
//! read without touching the rest of the file. When the footer or trailer
//! is damaged, [`FileReader::open_recover`] falls back to scanning the
//! segment framing from the head of the file and rebuilds the index from
//! the per-segment headers.

use crate::column::DecodeError;
use crate::crc32::crc32;
use crate::record::ColumnarRecord;
use crate::segment::{decode_segment, encode_segment, parse_header};
use crate::varint;
use crate::{DroppedSegment, ReadMode, StoreError};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading magic bytes identifying a store file (version 1).
pub const MAGIC: [u8; 8] = *b"DYNSTOR1";
/// Trailing magic bytes closing a store file.
const MAGIC_END: [u8; 8] = *b"DYNSTEND";
/// Byte length of the fixed trailer: footer offset + end magic.
const TRAILER_LEN: usize = 8 + 8;

/// Default maximum rows per segment. Small enough that a year of logs
/// yields many segments for the parallel decoder, large enough that the
/// per-segment framing overhead is noise.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// One footer entry: where a segment lives and what it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Table the segment belongs to.
    pub table: u8,
    /// Smallest key in the segment.
    pub key_lo: u32,
    /// Largest key in the segment.
    pub key_hi: u32,
    /// Rows in the segment.
    pub rows: u64,
    /// Byte offset of the segment's length prefix in the file.
    pub offset: u64,
    /// Body length in bytes (length prefix and checksum excluded).
    pub len: u64,
}

/// Writes tables into an in-memory store file.
///
/// Tables are written whole, one after another; each is split into
/// segments of at most `segment_rows` rows, encoded in parallel on the
/// `dynaddr-exec` executor. The resulting bytes are identical at any
/// worker count.
pub struct FileWriter {
    buf: Vec<u8>,
    entries: Vec<SegmentInfo>,
    segment_rows: usize,
}

impl Default for FileWriter {
    fn default() -> FileWriter {
        FileWriter::new()
    }
}

impl FileWriter {
    /// A writer with the default segment size.
    pub fn new() -> FileWriter {
        FileWriter::with_segment_rows(DEFAULT_SEGMENT_ROWS)
    }

    /// A writer splitting tables into segments of at most `segment_rows`
    /// rows (test knob; clamped to at least 1).
    pub fn with_segment_rows(segment_rows: usize) -> FileWriter {
        FileWriter {
            buf: MAGIC.to_vec(),
            entries: Vec::new(),
            segment_rows: segment_rows.max(1),
        }
    }

    /// Appends one table. Rows should be sorted by key (see
    /// [`ColumnarRecord`]); an empty table writes no segments and decodes
    /// back as empty.
    pub fn write_table<R: ColumnarRecord>(&mut self, rows: &[R]) {
        let chunks: Vec<&[R]> = rows.chunks(self.segment_rows).collect();
        let encoded = dynaddr_exec::par_map(&chunks, |chunk| {
            let (frame, key_lo, key_hi) = encode_segment(chunk);
            (frame, key_lo, key_hi, chunk.len() as u64)
        });
        for (frame, key_lo, key_hi, rows) in encoded {
            self.entries.push(SegmentInfo {
                table: R::TABLE_ID,
                key_lo,
                key_hi,
                rows,
                offset: self.buf.len() as u64,
                // Frame = 4-byte length prefix + body + 4-byte CRC.
                len: (frame.len() - 8) as u64,
            });
            dynaddr_obs::counter_add("store.segments_written", 1);
            dynaddr_obs::counter_add("store.bytes_written", frame.len() as u64);
            dynaddr_obs::hist_record("store.segment_bytes", frame.len() as u64);
            self.buf.extend_from_slice(&frame);
        }
    }

    /// Appends the footer and trailer and returns the finished file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let footer_offset = self.buf.len() as u64;
        self.buf.extend_from_slice(&footer_and_trailer(&self.entries, footer_offset));
        self.buf
    }
}

/// Encodes the footer (entry index + CRC) and the fixed trailer for a file
/// whose segments end at `footer_offset`. Shared by [`FileWriter`] and
/// [`StreamWriter`] so both paths produce bit-identical file tails.
fn footer_and_trailer(entries: &[SegmentInfo], footer_offset: u64) -> Vec<u8> {
    let mut footer = Vec::new();
    varint::write_u64(&mut footer, entries.len() as u64);
    for e in entries {
        footer.push(e.table);
        varint::write_u64(&mut footer, u64::from(e.key_lo));
        varint::write_u64(&mut footer, u64::from(e.key_hi));
        varint::write_u64(&mut footer, e.rows);
        varint::write_u64(&mut footer, e.offset);
        varint::write_u64(&mut footer, e.len);
    }
    let crc = crc32(&footer);
    footer.extend_from_slice(&crc.to_le_bytes());
    footer.extend_from_slice(&footer_offset.to_le_bytes());
    footer.extend_from_slice(&MAGIC_END);
    footer
}

/// Writes a store file incrementally to any [`Write`] sink.
///
/// Where [`FileWriter`] buffers the whole file in memory, `StreamWriter`
/// emits each segment as it is handed over and keeps only the footer index
/// in memory — peak memory is one segment, not one dataset. The caller
/// drives the chunk discipline: within a table, every segment except the
/// last must hold exactly `segment_rows` rows and rows must arrive in
/// ascending key order, which is precisely what [`FileWriter::write_table`]
/// does — so a `StreamWriter` fed the same rows produces byte-identical
/// files ([`write_table_iter`](StreamWriter::write_table_iter) enforces the
/// discipline for you).
pub struct StreamWriter<W: Write> {
    out: W,
    offset: u64,
    entries: Vec<SegmentInfo>,
    segment_rows: usize,
}

impl<W: Write> StreamWriter<W> {
    /// A streamed writer with the default segment size. Writes the leading
    /// magic immediately.
    pub fn new(out: W) -> Result<StreamWriter<W>, StoreError> {
        StreamWriter::with_segment_rows(out, DEFAULT_SEGMENT_ROWS)
    }

    /// A streamed writer splitting tables into segments of at most
    /// `segment_rows` rows (clamped to at least 1).
    pub fn with_segment_rows(mut out: W, segment_rows: usize) -> Result<StreamWriter<W>, StoreError> {
        out.write_all(&MAGIC).map_err(|e| StoreError::io("write magic", e))?;
        Ok(StreamWriter {
            out,
            offset: MAGIC.len() as u64,
            entries: Vec::new(),
            segment_rows: segment_rows.max(1),
        })
    }

    /// The segment row budget this writer chunks tables into.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// Encodes and writes one segment of `rows` (non-empty, at most
    /// `segment_rows` — the caller owns the chunk discipline).
    pub fn write_segment<R: ColumnarRecord>(&mut self, rows: &[R]) -> Result<(), StoreError> {
        debug_assert!(!rows.is_empty() && rows.len() <= self.segment_rows);
        let (frame, key_lo, key_hi) = encode_segment(rows);
        self.entries.push(SegmentInfo {
            table: R::TABLE_ID,
            key_lo,
            key_hi,
            rows: rows.len() as u64,
            offset: self.offset,
            len: (frame.len() - 8) as u64,
        });
        self.out
            .write_all(&frame)
            .map_err(|e| StoreError::io(format!("write {} segment", R::TABLE_NAME), e))?;
        self.offset += frame.len() as u64;
        dynaddr_obs::counter_add("store.segments_written", 1);
        dynaddr_obs::counter_add("store.bytes_written", frame.len() as u64);
        dynaddr_obs::hist_record("store.segment_bytes", frame.len() as u64);
        Ok(())
    }

    /// Appends one whole table from an iterator of key-sorted rows,
    /// applying the same chunking as [`FileWriter::write_table`] (segments
    /// restart at row 0 for each table).
    pub fn write_table_iter<R: ColumnarRecord>(
        &mut self,
        rows: impl IntoIterator<Item = R>,
    ) -> Result<(), StoreError> {
        let mut buf: Vec<R> = Vec::with_capacity(self.segment_rows);
        for row in rows {
            buf.push(row);
            if buf.len() == self.segment_rows {
                self.write_segment(&buf)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.write_segment(&buf)?;
        }
        Ok(())
    }

    /// Writes the footer and trailer, flushes, and returns the index of
    /// everything written.
    pub fn finish(mut self) -> Result<Vec<SegmentInfo>, StoreError> {
        self.out
            .write_all(&footer_and_trailer(&self.entries, self.offset))
            .map_err(|e| StoreError::io("write footer", e))?;
        self.out.flush().map_err(|e| StoreError::io("flush", e))?;
        Ok(self.entries)
    }
}

/// Reads tables out of a store file's bytes.
pub struct FileReader<'a> {
    bytes: &'a [u8],
    entries: Vec<SegmentInfo>,
    /// Whether the index was rebuilt by scanning (recover mode only).
    pub footer_rebuilt: bool,
}

impl<'a> FileReader<'a> {
    /// Opens a file strictly: any damage to the magic, trailer, or footer
    /// is an error.
    pub fn open(bytes: &'a [u8]) -> Result<FileReader<'a>, StoreError> {
        check_magic(bytes)?;
        let entries = parse_footer(bytes)?;
        Ok(FileReader { bytes, entries, footer_rebuilt: false })
    }

    /// Opens a file for recovery. The leading magic must still match —
    /// without it the bytes cannot be trusted to be a store file at all —
    /// but a damaged footer or trailer is repaired by scanning the segment
    /// framing, with notes describing what happened.
    pub fn open_recover(bytes: &'a [u8]) -> Result<(FileReader<'a>, Vec<String>), StoreError> {
        check_magic(bytes)?;
        match parse_footer(bytes) {
            Ok(entries) => Ok((FileReader { bytes, entries, footer_rebuilt: false }, Vec::new())),
            Err(err) => {
                let (entries, mut notes) = scan_segments(bytes);
                notes.insert(
                    0,
                    format!(
                        "footer unreadable ({err}); index rebuilt by scanning: \
                         {} segments recovered",
                        entries.len()
                    ),
                );
                Ok((FileReader { bytes, entries, footer_rebuilt: true }, notes))
            }
        }
    }

    /// Every indexed segment, in file order.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.entries
    }

    /// Rows the index records for one table.
    pub fn table_rows(&self, table: u8) -> u64 {
        self.entries.iter().filter(|e| e.table == table).map(|e| e.rows).sum()
    }

    /// Decodes every segment of table `R`, in parallel, reassembling rows
    /// in file order. In [`ReadMode::Strict`] the first damaged segment is
    /// an error; in [`ReadMode::Recover`] damaged segments are skipped and
    /// returned as [`DroppedSegment`]s.
    pub fn decode_table<R: ColumnarRecord>(
        &self,
        mode: ReadMode,
    ) -> Result<(Vec<R>, Vec<DroppedSegment>), StoreError> {
        let segs: Vec<(usize, SegmentInfo)> = self
            .entries
            .iter()
            .filter(|e| e.table == R::TABLE_ID)
            .copied()
            .enumerate()
            .collect();
        let decoded: Vec<Result<Vec<R>, StoreError>> =
            dynaddr_exec::par_map(&segs, |&(index, info)| self.decode_one::<R>(index, info));
        dynaddr_obs::counter_add("store.segments_read", segs.len() as u64);
        dynaddr_obs::counter_add(
            "store.bytes_read",
            segs.iter().map(|&(_, info)| info.len + 8).sum(),
        );
        let mut rows = Vec::new();
        let mut dropped = Vec::new();
        for (result, &(index, info)) in decoded.into_iter().zip(&segs) {
            match result {
                Ok(mut seg_rows) => rows.append(&mut seg_rows),
                Err(err) => match mode {
                    ReadMode::Strict => return Err(err),
                    ReadMode::Recover => {
                        dynaddr_obs::counter_add("store.recover_dropped_segments", 1);
                        dropped.push(DroppedSegment {
                            table: R::TABLE_NAME.to_string(),
                            index,
                            offset: info.offset,
                            rows: info.rows,
                            reason: err.to_string(),
                        })
                    }
                },
            }
        }
        Ok((rows, dropped))
    }

    /// Random access: decodes only the segments whose key range covers
    /// `key` and returns that key's rows, in file order. Strict.
    pub fn decode_key<R: ColumnarRecord>(&self, key: u32) -> Result<Vec<R>, StoreError> {
        let mut rows = Vec::new();
        let mut index = 0usize;
        for e in &self.entries {
            if e.table != R::TABLE_ID {
                continue;
            }
            if (e.key_lo..=e.key_hi).contains(&key) {
                rows.extend(
                    self.decode_one::<R>(index, *e)?.into_iter().filter(|r| r.key() == key),
                );
            }
            index += 1;
        }
        Ok(rows)
    }

    /// Verifies and decodes one segment, wrapping any failure in an error
    /// naming the segment.
    fn decode_one<R: ColumnarRecord>(
        &self,
        index: usize,
        info: SegmentInfo,
    ) -> Result<Vec<R>, StoreError> {
        decode_segment_at(self.bytes, index, info)
    }
}

/// Verifies and decodes one indexed segment out of store-file bytes: the
/// inline length prefix, the CRC, and the decoded row count must all agree
/// with the footer entry, and any failure is a [`StoreError::SegmentCorrupt`]
/// naming the segment. This is the building block callers with their own
/// parsed footer (e.g. a segment cache that decodes on miss) use to read
/// segments without re-opening a [`FileReader`].
pub fn decode_segment_at<R: ColumnarRecord>(
    bytes: &[u8],
    index: usize,
    info: SegmentInfo,
) -> Result<Vec<R>, StoreError> {
    let corrupt = |reason: String| StoreError::SegmentCorrupt {
        table: R::TABLE_NAME.to_string(),
        index,
        offset: info.offset,
        reason,
    };
    let start = info.offset as usize;
    let body_start = start + 4;
    let body_end = body_start + info.len as usize;
    if body_end + 4 > bytes.len() {
        return Err(corrupt("segment extends past end of file".to_string()));
    }
    let inline_len = u32::from_le_bytes(bytes[start..body_start].try_into().expect("4 bytes"));
    if u64::from(inline_len) != info.len {
        return Err(corrupt(format!(
            "length prefix {inline_len} disagrees with index length {}",
            info.len
        )));
    }
    let body = &bytes[body_start..body_end];
    let stored_crc =
        u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    let rows = decode_segment::<R>(body).map_err(|e: DecodeError| corrupt(e.reason))?;
    if rows.len() as u64 != info.rows {
        return Err(corrupt(format!(
            "decoded {} rows where the index records {}",
            rows.len(),
            info.rows
        )));
    }
    Ok(rows)
}

/// Reads a store file directly from disk, one segment at a time.
///
/// Where [`FileReader`] needs the whole file in memory, this reader holds
/// only the footer index and seeks to each segment on demand — the
/// out-of-core side of [`StreamWriter`]. Every per-segment integrity check
/// of [`FileReader`] (inline length, CRC, row count) applies unchanged.
pub struct SegmentFileReader {
    file: std::fs::File,
    entries: Vec<SegmentInfo>,
}

impl SegmentFileReader {
    /// Opens a store file strictly, reading only the magic, trailer, and
    /// footer (the segments stay on disk).
    pub fn open(path: &Path) -> Result<SegmentFileReader, StoreError> {
        let mut file = std::fs::File::open(path)
            .map_err(|e| StoreError::io(format!("open {}", path.display()), e))?;
        let io = |context: &str| {
            let context = context.to_string();
            move |e: std::io::Error| StoreError::io(context, e)
        };
        let n = file.seek(SeekFrom::End(0)).map_err(io("seek to end"))? as usize;
        if n < MAGIC.len() + 5 + TRAILER_LEN {
            return Err(StoreError::TooShort { len: n });
        }
        let mut magic = [0u8; 8];
        file.seek(SeekFrom::Start(0)).map_err(io("seek to magic"))?;
        file.read_exact(&mut magic).map_err(io("read magic"))?;
        check_magic(&magic)?;
        let mut trailer = [0u8; TRAILER_LEN];
        file.seek(SeekFrom::Start((n - TRAILER_LEN) as u64)).map_err(io("seek to trailer"))?;
        file.read_exact(&mut trailer).map_err(io("read trailer"))?;
        let footer_offset = parse_trailer(&trailer, n)?;
        let mut region = vec![0u8; n - TRAILER_LEN - footer_offset];
        file.seek(SeekFrom::Start(footer_offset as u64)).map_err(io("seek to footer"))?;
        file.read_exact(&mut region).map_err(io("read footer"))?;
        let entries = parse_footer_region(&region, footer_offset as u64)?;
        Ok(SegmentFileReader { file, entries })
    }

    /// Every indexed segment, in file order.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.entries
    }

    /// Rows the index records for one table.
    pub fn table_rows(&self, table: u8) -> u64 {
        self.entries.iter().filter(|e| e.table == table).map(|e| e.rows).sum()
    }

    /// Reads and decodes one segment (identified by its index entry and
    /// its ordinal within table `R`, for error naming), verifying the
    /// inline length, checksum, and row count exactly like
    /// [`FileReader::decode_table`].
    pub fn read_segment<R: ColumnarRecord>(
        &mut self,
        index: usize,
        info: SegmentInfo,
    ) -> Result<Vec<R>, StoreError> {
        let corrupt = |reason: String| StoreError::SegmentCorrupt {
            table: R::TABLE_NAME.to_string(),
            index,
            offset: info.offset,
            reason,
        };
        let mut frame = vec![0u8; info.len as usize + 8];
        self.file
            .seek(SeekFrom::Start(info.offset))
            .and_then(|_| self.file.read_exact(&mut frame))
            .map_err(|_| corrupt("segment extends past end of file".to_string()))?;
        dynaddr_obs::counter_add("store.segments_read", 1);
        dynaddr_obs::counter_add("store.bytes_read", frame.len() as u64);
        let inline_len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
        if u64::from(inline_len) != info.len {
            return Err(corrupt(format!(
                "length prefix {inline_len} disagrees with index length {}",
                info.len
            )));
        }
        let body = &frame[4..frame.len() - 4];
        let stored_crc =
            u32::from_le_bytes(frame[frame.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return Err(corrupt("checksum mismatch".to_string()));
        }
        let rows = decode_segment::<R>(body).map_err(|e: DecodeError| corrupt(e.reason))?;
        if rows.len() as u64 != info.rows {
            return Err(corrupt(format!(
                "decoded {} rows where the index records {}",
                rows.len(),
                info.rows
            )));
        }
        Ok(rows)
    }
}

fn check_magic(bytes: &[u8]) -> Result<(), StoreError> {
    if bytes.len() < MAGIC.len() {
        return Err(StoreError::TooShort { len: bytes.len() });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic { found: bytes[..MAGIC.len()].to_vec() });
    }
    Ok(())
}

/// Locates and parses the footer through the trailer, verifying its
/// checksum and bounds-checking every entry.
fn parse_footer(bytes: &[u8]) -> Result<Vec<SegmentInfo>, StoreError> {
    let n = bytes.len();
    // Minimum: magic + empty footer (1-byte count + 4-byte CRC) + trailer.
    if n < MAGIC.len() + 5 + TRAILER_LEN {
        return Err(StoreError::TooShort { len: n });
    }
    if bytes[n - 8..] != MAGIC_END {
        return Err(StoreError::BadTrailer { reason: "end marker missing".to_string() });
    }
    let footer_offset = parse_trailer(&bytes[n - TRAILER_LEN..], n)?;
    let region = &bytes[footer_offset..n - TRAILER_LEN];
    parse_footer_region(region, footer_offset as u64)
}

/// Validates the 16-byte trailer against a file of `n` bytes and returns
/// the footer offset it points at.
fn parse_trailer(trailer: &[u8], n: usize) -> Result<usize, StoreError> {
    if trailer[8..] != MAGIC_END {
        return Err(StoreError::BadTrailer { reason: "end marker missing".to_string() });
    }
    let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes")) as usize;
    if footer_offset < MAGIC.len() || footer_offset + 5 > n - TRAILER_LEN {
        return Err(StoreError::BadTrailer {
            reason: format!("footer offset {footer_offset} out of bounds"),
        });
    }
    Ok(footer_offset)
}

/// Parses the footer region (entry index + CRC, trailer excluded) located
/// at `footer_offset`, verifying its checksum and bounds-checking every
/// entry against the segment area `[MAGIC.len(), footer_offset)`.
fn parse_footer_region(region: &[u8], footer_offset: u64) -> Result<Vec<SegmentInfo>, StoreError> {
    let (footer, crc_bytes) = region.split_at(region.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(footer) != stored_crc {
        return Err(StoreError::BadFooter { reason: "checksum mismatch".to_string() });
    }

    let bad = |reason: String| StoreError::BadFooter { reason };
    let mut pos = 0usize;
    let count = varint::read_u64(footer, &mut pos).map_err(|e| bad(e.reason))?;
    // Each entry is at least 6 bytes; reject counts the footer cannot hold.
    if count > (footer.len() as u64) {
        return Err(bad(format!("implausible segment count {count}")));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for i in 0..count {
        let entry = || -> Result<SegmentInfo, DecodeError> {
            let table = *footer
                .get(pos)
                .ok_or_else(|| DecodeError::new("footer truncated"))?;
            pos += 1;
            let key_lo = varint::read_u64(footer, &mut pos)?;
            let key_hi = varint::read_u64(footer, &mut pos)?;
            let rows = varint::read_u64(footer, &mut pos)?;
            let offset = varint::read_u64(footer, &mut pos)?;
            let len = varint::read_u64(footer, &mut pos)?;
            Ok(SegmentInfo {
                table,
                key_lo: u32::try_from(key_lo)
                    .map_err(|_| DecodeError::new("key_lo exceeds u32"))?,
                key_hi: u32::try_from(key_hi)
                    .map_err(|_| DecodeError::new("key_hi exceeds u32"))?,
                rows,
                offset,
                len,
            })
        }()
        .map_err(|e| bad(format!("entry {i}: {}", e.reason)))?;
        let seg_end = entry
            .offset
            .checked_add(entry.len)
            .and_then(|v| v.checked_add(8));
        match seg_end {
            Some(end) if entry.offset >= MAGIC.len() as u64 && end <= footer_offset => {}
            _ => {
                return Err(bad(format!(
                    "entry {i}: segment at offset {} (len {}) out of bounds",
                    entry.offset, entry.len
                )))
            }
        }
        entries.push(entry);
    }
    if pos != footer.len() {
        return Err(bad(format!("{} trailing bytes", footer.len() - pos)));
    }
    Ok(entries)
}

/// Rebuilds the segment index by walking the framing from the head of the
/// file: length prefix, checksummed body, repeat. Stops at the first
/// position that does not frame a valid segment (in an intact file that is
/// the footer itself). Returns the recovered entries plus notes about
/// where and why the scan stopped.
fn scan_segments(bytes: &[u8]) -> (Vec<SegmentInfo>, Vec<String>) {
    let mut entries = Vec::new();
    let mut notes = Vec::new();
    let mut pos = MAGIC.len();
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let body_start = pos + 4;
        let Some(body_end) = body_start.checked_add(len).filter(|&e| e + 4 <= bytes.len())
        else {
            notes.push(format!(
                "scan stopped at offset {pos}: frame length {len} runs past end of file"
            ));
            break;
        };
        let body = &bytes[body_start..body_end];
        let stored_crc =
            u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            // Either the footer region (expected end of the scan) or a
            // segment too damaged to re-frame; everything beyond it is
            // unreachable without the footer.
            notes.push(format!(
                "scan stopped at offset {pos}: bytes do not frame a valid segment \
                 (footer region or corruption); {} bytes not indexed",
                bytes.len() - pos
            ));
            break;
        }
        match parse_header(body) {
            Ok(h) => entries.push(SegmentInfo {
                table: h.table,
                key_lo: h.key_lo,
                key_hi: h.key_hi,
                rows: h.rows,
                offset: pos as u64,
                len: len as u64,
            }),
            Err(e) => {
                notes.push(format!(
                    "scan stopped at offset {pos}: checksummed region is not a segment \
                     ({})",
                    e.reason
                ));
                break;
            }
        }
        pos = body_end + 4;
    }
    (entries, notes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnBuilder, ColumnKind, ColumnReader};

    /// Minimal two-column row for exercising the file machinery.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Row {
        key: u32,
        value: i64,
    }

    impl ColumnarRecord for Row {
        const TABLE_ID: u8 = 7;
        const TABLE_NAME: &'static str = "rows";
        const COLUMNS: &'static [ColumnKind] = &[ColumnKind::I64, ColumnKind::I64];

        fn key(&self) -> u32 {
            self.key
        }

        fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
            for r in rows {
                cols[0].push_i64(i64::from(r.key));
                cols[1].push_i64(r.value);
            }
        }

        fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                let key = cols[0].next_i64()?;
                let key = u32::try_from(key)
                    .map_err(|_| DecodeError::new(format!("key {key} exceeds u32")))?;
                let value = cols[1].next_i64()?;
                out.push(Row { key, value });
            }
            Ok(out)
        }
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n).map(|i| Row { key: (i / 3) as u32, value: i as i64 * 17 - 40 }).collect()
    }

    fn sample_file(n: usize, segment_rows: usize) -> Vec<u8> {
        let mut w = FileWriter::with_segment_rows(segment_rows);
        w.write_table(&sample_rows(n));
        w.finish()
    }

    #[test]
    fn roundtrip_single_and_multi_segment() {
        for (n, seg) in [(0usize, 4), (1, 4), (10, 4), (100, 7), (100, 4096)] {
            let bytes = sample_file(n, seg);
            let reader = FileReader::open(&bytes).unwrap();
            let (rows, dropped) = reader.decode_table::<Row>(ReadMode::Strict).unwrap();
            assert!(dropped.is_empty());
            assert_eq!(rows, sample_rows(n), "n={n} seg={seg}");
            assert_eq!(reader.table_rows(Row::TABLE_ID), n as u64);
        }
    }

    #[test]
    fn encode_is_thread_count_invariant() {
        dynaddr_exec::set_threads(Some(1));
        let one = sample_file(1000, 64);
        for threads in [2, 8] {
            dynaddr_exec::set_threads(Some(threads));
            assert_eq!(one, sample_file(1000, 64), "threads={threads}");
        }
        dynaddr_exec::set_threads(None);
    }

    #[test]
    fn key_random_access_matches_filter() {
        let bytes = sample_file(100, 7);
        let reader = FileReader::open(&bytes).unwrap();
        let all = sample_rows(100);
        for key in [0u32, 5, 33, 999] {
            let got = reader.decode_key::<Row>(key).unwrap();
            let want: Vec<Row> = all.iter().filter(|r| r.key == key).cloned().collect();
            assert_eq!(got, want, "key={key}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected_strictly() {
        let clean = sample_file(40, 8);
        let mut bytes = clean.clone();
        for bit in 0..bytes.len() * 8 {
            bytes[bit / 8] ^= 1 << (bit % 8);
            let outcome = FileReader::open(&bytes)
                .and_then(|r| r.decode_table::<Row>(ReadMode::Strict).map(|_| ()));
            assert!(outcome.is_err(), "bit flip {bit} went undetected");
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(bytes, clean);
    }

    #[test]
    fn recover_skips_corrupt_segment_and_reports_it() {
        let mut bytes = sample_file(40, 8);
        let reader = FileReader::open(&bytes).unwrap();
        let victim = reader.segments()[2];
        drop(reader);
        // Flip a byte inside the victim's column payload.
        bytes[victim.offset as usize + 10] ^= 0x40;

        let err = FileReader::open(&bytes)
            .and_then(|r| r.decode_table::<Row>(ReadMode::Strict).map(|_| ()))
            .unwrap_err();
        match &err {
            StoreError::SegmentCorrupt { table, index, offset, .. } => {
                assert_eq!(table, "rows");
                assert_eq!(*index, 2);
                assert_eq!(*offset, victim.offset);
            }
            other => panic!("expected SegmentCorrupt, got {other:?}"),
        }

        let (reader, notes) = FileReader::open_recover(&bytes).unwrap();
        assert!(notes.is_empty(), "footer is intact");
        let (rows, dropped) = reader.decode_table::<Row>(ReadMode::Recover).unwrap();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].index, 2);
        assert_eq!(dropped[0].rows, victim.rows);
        let all = sample_rows(40);
        let want: Vec<Row> = all[..16].iter().chain(&all[24..]).cloned().collect();
        assert_eq!(rows, want, "all other segments survive");
    }

    #[test]
    fn recover_rebuilds_index_when_footer_is_damaged() {
        let mut bytes = sample_file(40, 8);
        // Smash the trailer's footer offset.
        let n = bytes.len();
        bytes[n - 12] ^= 0xff;
        assert!(matches!(FileReader::open(&bytes), Err(StoreError::BadTrailer { .. })));

        let (reader, notes) = FileReader::open_recover(&bytes).unwrap();
        assert!(reader.footer_rebuilt);
        assert!(!notes.is_empty());
        let (rows, dropped) = reader.decode_table::<Row>(ReadMode::Recover).unwrap();
        assert!(dropped.is_empty());
        assert_eq!(rows, sample_rows(40), "scan recovers every segment");
    }

    #[test]
    fn bad_magic_is_typed_in_both_modes() {
        let mut bytes = sample_file(4, 8);
        bytes[0] ^= 1;
        assert!(matches!(FileReader::open(&bytes), Err(StoreError::BadMagic { .. })));
        assert!(matches!(FileReader::open_recover(&bytes), Err(StoreError::BadMagic { .. })));
        assert!(matches!(FileReader::open(&[]), Err(StoreError::TooShort { .. })));
    }
}
