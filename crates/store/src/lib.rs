//! # dynaddr-store
//!
//! A binary, segmented, columnar on-disk format for the project's datasets,
//! replacing monolithic JSON-lines round-trips on the simulate-once /
//! analyze-many path (JSONL stays the interchange format; this is the fast
//! local store).
//!
//! A store file is a sequence of independent **segments**, each covering a
//! contiguous run of rows of one table. Within a segment every column is
//! encoded on its own — integers as delta + zigzag + LEB128 varints, byte
//! strings length-prefixed — and the whole segment body is covered by a
//! CRC32 checksum behind a length-prefixed header. A **footer** indexes
//! every segment (table, key range, row count, offset), so readers can
//! decode segments in parallel on the `dynaddr-exec` executor and can
//! random-access a single key (probe) without scanning the file.
//!
//! Robustness is part of the contract:
//!
//! * any flipped bit surfaces as a typed [`StoreError`] naming the segment
//!   it hit — never a panic, never silently wrong data;
//! * [`ReadMode::Recover`] skips corrupt segments (and rebuilds the index by
//!   scanning when the footer itself is damaged), reporting exactly what was
//!   dropped via [`DroppedSegment`]s and recovery notes.
//!
//! The crate is generic over row types: anything implementing
//! [`ColumnarRecord`] (see `dynaddr-atlas` for the Atlas log and
//! ground-truth tables) can be written with [`FileWriter`] and read back
//! with [`FileReader`]. Encode and decode are deterministic: the bytes and
//! the decoded rows are identical at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod crc32;
pub mod file;
pub mod record;
mod segment;
pub mod sink;
pub mod varint;

pub use column::{ColumnBuilder, ColumnKind, ColumnReader, DecodeError};
pub use file::{
    decode_segment_at, FileReader, FileWriter, SegmentFileReader, SegmentInfo, StreamWriter,
    DEFAULT_SEGMENT_ROWS, MAGIC,
};
pub use record::ColumnarRecord;
pub use sink::{RunMerger, SegmentSink};

use std::fmt;

/// How a reader treats damaged data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Any corruption is an error naming the damaged region.
    Strict,
    /// Corrupt segments are skipped and reported; a damaged footer is
    /// rebuilt by scanning the segment framing from the head of the file.
    Recover,
}

/// A segment skipped by a [`ReadMode::Recover`] read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedSegment {
    /// Table the segment belonged to.
    pub table: String,
    /// Segment ordinal within that table (0-based).
    pub index: usize,
    /// Byte offset of the segment's length prefix in the file.
    pub offset: u64,
    /// Rows lost with the segment (from the index entry).
    pub rows: u64,
    /// Why the segment was unreadable.
    pub reason: String,
}

impl fmt::Display for DroppedSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped {} segment {} at offset {} ({} rows): {}",
            self.table, self.index, self.offset, self.rows, self.reason
        )
    }
}

/// What a [`ReadMode::Recover`] read had to leave behind.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// File-level notes (e.g. "footer rebuilt by scanning").
    pub notes: Vec<String>,
    /// Segments skipped because their checksum or structure was damaged.
    pub dropped: Vec<DroppedSegment>,
}

impl RecoveryReport {
    /// Total rows lost across all dropped segments.
    pub fn rows_dropped(&self) -> u64 {
        self.dropped.iter().map(|d| d.rows).sum()
    }

    /// Whether the read recovered everything (nothing dropped, no notes).
    pub fn is_clean(&self) -> bool {
        self.notes.is_empty() && self.dropped.is_empty()
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "recovered cleanly");
        }
        for note in &self.notes {
            writeln!(f, "{note}")?;
        }
        for d in &self.dropped {
            writeln!(f, "{d}")?;
        }
        write!(f, "{} segments dropped, {} rows lost", self.dropped.len(), self.rows_dropped())
    }
}

/// Typed error for every way a store file can be unreadable.
#[derive(Debug)]
pub enum StoreError {
    /// The file is too short to be a store file at all.
    TooShort {
        /// Observed file length in bytes.
        len: usize,
    },
    /// The leading magic bytes are not a store header.
    BadMagic {
        /// The bytes found where the magic was expected.
        found: Vec<u8>,
    },
    /// The fixed-size trailer (footer offset + end marker) is damaged.
    BadTrailer {
        /// What was wrong with it.
        reason: String,
    },
    /// The footer index failed its checksum or does not parse.
    BadFooter {
        /// What was wrong with it.
        reason: String,
    },
    /// One segment is damaged: checksum mismatch, framing disagreement
    /// with the footer, or a column payload that does not decode.
    SegmentCorrupt {
        /// Table the segment belongs to.
        table: String,
        /// Segment ordinal within that table (0-based).
        index: usize,
        /// Byte offset of the segment's length prefix in the file.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// An underlying file operation failed (streamed writers and the
    /// file-backed reader only; in-memory paths never produce this).
    Io {
        /// What the store was doing when the operation failed.
        context: String,
        /// The failing operation's error.
        source: std::io::Error,
    },
}

impl StoreError {
    /// Wraps an I/O failure with what the store was doing at the time.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> StoreError {
        StoreError::Io { context: context.into(), source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TooShort { len } => {
                write!(f, "store file too short ({len} bytes)")
            }
            StoreError::BadMagic { found } => {
                write!(f, "not a store file: bad magic {found:?}")
            }
            StoreError::BadTrailer { reason } => write!(f, "bad store trailer: {reason}"),
            StoreError::BadFooter { reason } => write!(f, "bad store footer: {reason}"),
            StoreError::SegmentCorrupt { table, index, offset, reason } => write!(
                f,
                "corrupt {table} segment {index} at offset {offset}: {reason}"
            ),
            StoreError::Io { context, source } => write!(f, "store i/o: {context}: {source}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
