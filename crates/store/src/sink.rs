//! Append-capable segment sink: out-of-order producers, canonical files.
//!
//! The simulator finishes shards in whatever order the scheduler likes,
//! but a store file has exactly one canonical byte sequence: segments in
//! table order, rows in global key order, chunk boundaries restarting at
//! row 0 for each table. [`SegmentSink`] reconciles the two. Producers
//! append *runs* — independent, key-sorted row sequences (one per shard) —
//! as they complete; the sink encodes each batch into segments immediately
//! and spills the frames to a scratch file, so a finished shard's rows
//! never sit in memory. [`SegmentSink::finish`] hands the spill to a
//! [`RunMerger`], which streams a k-way merge of the runs into a
//! [`StreamWriter`], producing bytes identical to a [`crate::FileWriter`] fed the
//! globally sorted rows.
//!
//! Memory during the merge is bounded by one decoded segment per run, and
//! during appends by one batch — the full table never materializes.
//!
//! Ordering contract (debug-asserted): within one `(table, run)`, appended
//! batches arrive with non-decreasing keys, and runs with equal keys merge
//! in run-id order (with key-disjoint runs, as shard splitting guarantees,
//! the tie-break never fires).

use crate::crc32::crc32;
use crate::record::ColumnarRecord;
use crate::segment::{decode_segment, encode_segment};
use crate::{StoreError, StreamWriter, DEFAULT_SEGMENT_ROWS};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One encoded segment parked in the spill file.
#[derive(Debug, Clone, Copy)]
struct PendingSegment {
    /// Smallest key in the segment (exact: rows are sorted).
    key_lo: u32,
    /// Byte offset of the frame (length prefix included) in the spill.
    offset: u64,
    /// Whole frame length: 4-byte prefix + body + 4-byte CRC.
    frame_len: u64,
}

/// Collects key-sorted runs of rows from concurrent producers, encoding
/// them into spilled segments as they arrive. See the module docs for the
/// ordering contract.
pub struct SegmentSink {
    spill: BufWriter<std::fs::File>,
    path: PathBuf,
    offset: u64,
    /// Segments of each `(table, run)`, in append order (= key order).
    runs: BTreeMap<(u8, u64), Vec<PendingSegment>>,
    segment_rows: usize,
}

impl SegmentSink {
    /// A sink spilling to a fresh scratch file at `path` (truncated if it
    /// exists), chunking appended batches with the default segment size.
    pub fn create(path: &Path) -> Result<SegmentSink, StoreError> {
        SegmentSink::with_segment_rows(path, DEFAULT_SEGMENT_ROWS)
    }

    /// [`SegmentSink::create`] with an explicit segment row budget
    /// (clamped to at least 1).
    pub fn with_segment_rows(path: &Path, segment_rows: usize) -> Result<SegmentSink, StoreError> {
        let file = std::fs::File::create(path)
            .map_err(|e| StoreError::io(format!("create spill {}", path.display()), e))?;
        Ok(SegmentSink {
            spill: BufWriter::new(file),
            path: path.to_path_buf(),
            offset: 0,
            runs: BTreeMap::new(),
            segment_rows: segment_rows.max(1),
        })
    }

    /// The path of the scratch file (the caller removes it when done).
    pub fn spill_path(&self) -> &Path {
        &self.path
    }

    /// Appends one key-sorted batch of rows to run `run` of table `R`.
    /// Batches of the same run must arrive in ascending key order; an
    /// empty batch is a no-op.
    pub fn append<R: ColumnarRecord>(&mut self, run: u64, rows: &[R]) -> Result<(), StoreError> {
        if rows.is_empty() {
            return Ok(());
        }
        debug_assert!(rows.windows(2).all(|w| w[0].key() <= w[1].key()), "batch not key-sorted");
        let segs = self.runs.entry((R::TABLE_ID, run)).or_default();
        for chunk in rows.chunks(self.segment_rows) {
            let (frame, key_lo, _key_hi) = encode_segment(chunk);
            segs.push(PendingSegment {
                key_lo,
                offset: self.offset,
                frame_len: frame.len() as u64,
            });
            self.spill
                .write_all(&frame)
                .map_err(|e| StoreError::io(format!("spill {} segment", R::TABLE_NAME), e))?;
            self.offset += frame.len() as u64;
            dynaddr_obs::counter_add("sink.spill_segments", 1);
            dynaddr_obs::counter_add("sink.spill_bytes", frame.len() as u64);
        }
        Ok(())
    }

    /// Flushes the spill and reopens it for merging.
    pub fn finish(self) -> Result<RunMerger, StoreError> {
        let file = self
            .spill
            .into_inner()
            .map_err(|e| StoreError::io("flush spill", e.into_error()))?;
        file.sync_data().ok();
        drop(file);
        let file = std::fs::File::open(&self.path)
            .map_err(|e| StoreError::io(format!("reopen spill {}", self.path.display()), e))?;
        Ok(RunMerger { file, runs: self.runs, path: self.path })
    }
}

/// Streams the k-way merge of a finished [`SegmentSink`]'s runs into a
/// [`StreamWriter`], one table per call, in ascending key order.
pub struct RunMerger {
    file: std::fs::File,
    runs: BTreeMap<(u8, u64), Vec<PendingSegment>>,
    path: PathBuf,
}

/// Merge-side cursor over one spilled run: the next undecoded segment plus
/// the decoded head segment's remaining rows.
struct RunCursor<R> {
    segs: Vec<PendingSegment>,
    next_seg: usize,
    buf: Vec<R>,
    pos: usize,
}

impl<R: ColumnarRecord> RunCursor<R> {
    /// The smallest key this run can still produce: the buffered head
    /// row's key, else the next segment's `key_lo` (exact, rows sorted).
    fn peek(&self) -> Option<u32> {
        if self.pos < self.buf.len() {
            return Some(self.buf[self.pos].key());
        }
        self.segs.get(self.next_seg).map(|s| s.key_lo)
    }
}

impl RunMerger {
    /// The spill path, for removal once every table has been merged.
    pub fn spill_path(&self) -> &Path {
        &self.path
    }

    /// Merges every run of table `R` into `w` in global key order (ties
    /// across runs resolved by run id), chunked exactly like
    /// [`crate::FileWriter::write_table`]. Call once per table, in the file's
    /// table order.
    pub fn merge_table<R: ColumnarRecord + Clone, W: Write>(
        &mut self,
        w: &mut StreamWriter<W>,
    ) -> Result<(), StoreError> {
        let mut cursors: Vec<RunCursor<R>> = self
            .runs
            .range((R::TABLE_ID, 0)..=(R::TABLE_ID, u64::MAX))
            .map(|(_, segs)| RunCursor { segs: segs.clone(), next_seg: 0, buf: Vec::new(), pos: 0 })
            .collect();
        // Min-heap of (peek key, run ordinal): the run ordinal both breaks
        // key ties deterministically and finds the cursor to drain.
        let mut heap: BinaryHeap<Reverse<(u32, usize)>> = cursors
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.peek().map(|k| Reverse((k, i))))
            .collect();
        dynaddr_obs::gauge_max("sink.spill_runs", cursors.len() as u64);
        dynaddr_obs::gauge_max("sink.merge_heap_depth", heap.len() as u64);
        let mut out: Vec<R> = Vec::with_capacity(w.segment_rows());
        while let Some(Reverse((_, ri))) = heap.pop() {
            // Everything below the runner-up's peek belongs to this run.
            let limit = heap.peek().map(|Reverse((k, i))| (*k, *i));
            loop {
                let cur = &mut cursors[ri];
                if cur.pos == cur.buf.len() {
                    let Some(&seg) = cur.segs.get(cur.next_seg) else { break };
                    if !below_limit(seg.key_lo, ri, limit) {
                        break;
                    }
                    cur.buf = self.read_spilled::<R>(seg)?;
                    cur.pos = 0;
                    cur.next_seg += 1;
                }
                let cur = &mut cursors[ri];
                while cur.pos < cur.buf.len() {
                    if !below_limit(cur.buf[cur.pos].key(), ri, limit) {
                        break;
                    }
                    out.push(cur.buf[cur.pos].clone());
                    cur.pos += 1;
                    if out.len() == w.segment_rows() {
                        w.write_segment(&out)?;
                        out.clear();
                    }
                }
                if cur.pos < cur.buf.len() {
                    break;
                }
            }
            if let Some(k) = cursors[ri].peek() {
                heap.push(Reverse((k, ri)));
            }
        }
        if !out.is_empty() {
            w.write_segment(&out)?;
        }
        self.runs.retain(|(table, _), _| *table != R::TABLE_ID);
        Ok(())
    }

    /// Reads one spilled frame back, re-verifying its CRC (the spill is
    /// scratch, but a flipped bit must still surface typed, not silent).
    fn read_spilled<R: ColumnarRecord>(&mut self, seg: PendingSegment) -> Result<Vec<R>, StoreError> {
        let corrupt = |reason: String| StoreError::SegmentCorrupt {
            table: R::TABLE_NAME.to_string(),
            index: 0,
            offset: seg.offset,
            reason,
        };
        let mut frame = vec![0u8; seg.frame_len as usize];
        self.file
            .seek(SeekFrom::Start(seg.offset))
            .and_then(|_| self.file.read_exact(&mut frame))
            .map_err(|e| StoreError::io("read spill segment", e))?;
        let inline_len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
        if u64::from(inline_len) != seg.frame_len - 8 {
            return Err(corrupt(format!("spill length prefix {inline_len} disagrees")));
        }
        let body = &frame[4..frame.len() - 4];
        let stored_crc = u32::from_le_bytes(frame[frame.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return Err(corrupt("spill checksum mismatch".to_string()));
        }
        decode_segment::<R>(body).map_err(|e| corrupt(e.reason))
    }
}

/// Whether a row with `key` in run `ri` still sorts before the best other
/// run's `(key, run)` pair — the stable tie-break that makes equal keys
/// merge in run-id order.
fn below_limit(key: u32, ri: usize, limit: Option<(u32, usize)>) -> bool {
    match limit {
        None => true,
        Some((lk, li)) => key < lk || (key == lk && ri < li),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{ColumnBuilder, ColumnKind, ColumnReader, DecodeError};
    use crate::{FileReader, FileWriter, ReadMode};

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Row {
        key: u32,
        value: i64,
    }

    impl ColumnarRecord for Row {
        const TABLE_ID: u8 = 9;
        const TABLE_NAME: &'static str = "sink_rows";
        const COLUMNS: &'static [ColumnKind] = &[ColumnKind::I64, ColumnKind::I64];

        fn key(&self) -> u32 {
            self.key
        }

        fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
            for r in rows {
                cols[0].push_i64(i64::from(r.key));
                cols[1].push_i64(r.value);
            }
        }

        fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
            (0..rows)
                .map(|_| {
                    let key = cols[0].next_i64()?;
                    Ok(Row {
                        key: u32::try_from(key)
                            .map_err(|_| DecodeError::new(format!("key {key} exceeds u32")))?,
                        value: cols[1].next_i64()?,
                    })
                })
                .collect()
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dynaddr-sink-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Probes striped across three runs, appended out of order and in two
    /// batches per run, must merge to the same bytes as a FileWriter fed
    /// the globally sorted rows.
    #[test]
    fn interleaved_runs_merge_to_canonical_bytes() {
        let rows: Vec<Row> =
            (0..90).map(|i| Row { key: i / 3, value: i64::from(i) * 7 - 100 }).collect();
        let run_of = |r: &Row| u64::from(r.key % 3);

        let path = scratch("interleave.spill");
        let mut sink = SegmentSink::with_segment_rows(&path, 7).unwrap();
        for run in [2u64, 0, 1] {
            let mine: Vec<Row> = rows.iter().filter(|r| run_of(r) == run).cloned().collect();
            let (a, b) = mine.split_at(mine.len() / 2);
            sink.append(run, a).unwrap();
            sink.append(run, b).unwrap();
        }
        let mut merger = sink.finish().unwrap();
        let mut bytes = Vec::new();
        let mut w = StreamWriter::with_segment_rows(&mut bytes, 7).unwrap();
        merger.merge_table::<Row, _>(&mut w).unwrap();
        w.finish().unwrap();
        std::fs::remove_file(merger.spill_path()).unwrap();

        let mut sorted = rows.clone();
        sorted.sort_by_key(|r| r.key);
        let mut fw = FileWriter::with_segment_rows(7);
        fw.write_table(&sorted);
        assert_eq!(bytes, fw.finish(), "merged bytes differ from canonical FileWriter bytes");

        let reader = FileReader::open(&bytes).unwrap();
        let (decoded, dropped) = reader.decode_table::<Row>(ReadMode::Strict).unwrap();
        assert!(dropped.is_empty());
        assert_eq!(decoded, sorted);
    }

    /// Runs with overlapping equal keys merge stably in run-id order.
    #[test]
    fn equal_keys_across_runs_merge_in_run_order() {
        let path = scratch("ties.spill");
        let mut sink = SegmentSink::with_segment_rows(&path, 4).unwrap();
        sink.append(1, &[Row { key: 5, value: 10 }, Row { key: 5, value: 11 }]).unwrap();
        sink.append(0, &[Row { key: 5, value: 0 }, Row { key: 6, value: 1 }]).unwrap();
        let mut merger = sink.finish().unwrap();
        let mut bytes = Vec::new();
        let mut w = StreamWriter::with_segment_rows(&mut bytes, 4).unwrap();
        merger.merge_table::<Row, _>(&mut w).unwrap();
        w.finish().unwrap();
        std::fs::remove_file(merger.spill_path()).unwrap();

        let reader = FileReader::open(&bytes).unwrap();
        let (decoded, _) = reader.decode_table::<Row>(ReadMode::Strict).unwrap();
        let values: Vec<i64> = decoded.iter().map(|r| r.value).collect();
        assert_eq!(values, vec![0, 10, 11, 1], "run 0's key-5 rows come first");
    }
}
