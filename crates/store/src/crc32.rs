//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the checksum covering
//! every segment body and the footer index. Table-driven, table built at
//! compile time; std-only like the rest of the workspace.

const TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (IEEE, the zlib/PNG/Ethernet polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), clean, "flip of bit {i} undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
    }
}
