//! LEB128 varints and zigzag mapping — the integer wire format of every
//! store column and header field.
//!
//! Unsigned values are little-endian base-128 (7 value bits per byte, high
//! bit = continuation, at most 10 bytes for a `u64`). Signed values go
//! through the zigzag bijection first so that small-magnitude negatives
//! stay short — the common case for delta-coded timestamp columns.

use crate::column::DecodeError;

/// Appends `v` as an LEB128 varint.
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it. Fails (without
/// panicking) on truncation or a varint longer than a `u64`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| DecodeError::new("varint truncated"))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(DecodeError::new("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed value onto the unsigned line: 0, -1, 1, -2, 2, … so that
/// small magnitudes of either sign encode in few varint bytes.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` zigzag-mapped as a varint.
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, zigzag(v));
}

/// Reads a zigzag varint at `*pos`, advancing it.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64, DecodeError> {
    read_u64(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u64(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn u64_roundtrips_boundaries() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            roundtrip_u64(v);
        }
    }

    #[test]
    fn i64_roundtrips_boundaries() {
        for v in [0i64, 1, -1, 63, -64, i32::MAX as i64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_short() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in -3i64..=3 {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(buf.len(), 1, "small delta {v} must be one byte");
        }
    }

    #[test]
    fn truncated_and_overlong_varints_error() {
        assert!(read_u64(&[], &mut 0).is_err());
        assert!(read_u64(&[0x80, 0x80], &mut 0).is_err());
        // 11 continuation bytes can never be a valid u64.
        let overlong = [0xff; 11];
        assert!(read_u64(&overlong, &mut 0).is_err());
    }
}
