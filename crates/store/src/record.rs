//! The bridge between typed rows and the columnar wire format.

use crate::column::{ColumnBuilder, ColumnKind, ColumnReader, DecodeError};

/// A row type storable in a segmented columnar file.
///
/// Implementations fix the table's identity and column schema at compile
/// time; the encode/decode pair must be mutually inverse so that a
/// round-trip reproduces the rows exactly (the workspace pins this with
/// property tests). Rows should be sorted by [`ColumnarRecord::key`] before
/// writing — the footer indexes each segment's key range, and sorted input
/// makes those ranges disjoint, so single-key reads touch one segment.
pub trait ColumnarRecord: Sized + Send + Sync {
    /// Table identifier written into segment headers and the footer.
    const TABLE_ID: u8;
    /// Human-readable table name used in errors and reports.
    const TABLE_NAME: &'static str;
    /// The column schema: kind of every column, in order.
    const COLUMNS: &'static [ColumnKind];

    /// The partition key (probe id or equivalent) indexed by the footer.
    fn key(&self) -> u32;

    /// Appends every field of `rows` to the per-column builders.
    /// `cols.len() == Self::COLUMNS.len()`, one builder per column in
    /// schema order.
    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]);

    /// Rebuilds `rows` rows from the per-column readers (schema order).
    /// Must fail with a [`DecodeError`] — never panic — on any value a
    /// correct encoder could not have produced.
    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError>;
}
