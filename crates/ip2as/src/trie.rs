//! Binary longest-prefix-match trie over IPv4 prefixes.
//!
//! A straightforward unibit trie: nodes are stored in a flat `Vec`, children
//! addressed by index, payloads live on the node where a prefix ends. LPM
//! walks the address bits high-to-low remembering the deepest payload seen.
//! This is the structure the `repro ablation` bench compares against a naive
//! linear scan.

use dynaddr_types::ip::{ipv4_to_u32, Prefix};
use std::net::Ipv4Addr;

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    children: [u32; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Node<T> {
        Node { children: [NO_NODE, NO_NODE], value: None }
    }
}

/// A map from IPv4 prefixes to values with longest-prefix-match lookup.
///
/// ```
/// use dynaddr_ip2as::PrefixTrie;
///
/// let mut trie = PrefixTrie::new();
/// trie.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// trie.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let (prefix, value) = trie.lookup("10.1.2.3".parse().unwrap()).unwrap();
/// assert_eq!(*value, "fine");
/// assert_eq!(prefix, "10.1.0.0/16".parse().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> PrefixTrie<T> {
        PrefixTrie { nodes: vec![Node::new()], len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `depth` of the prefix base (0 = most significant).
    fn bit(base: u32, depth: u8) -> usize {
        ((base >> (31 - depth)) & 1) as usize
    }

    /// Inserts a prefix, returning the previous value if one existed.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let base = ipv4_to_u32(prefix.base());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(base, depth);
            let child = self.nodes[node].children[b];
            node = if child == NO_NODE {
                self.nodes.push(Node::new());
                let idx = (self.nodes.len() - 1) as u32;
                self.nodes[node].children[b] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let base = ipv4_to_u32(prefix.base());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let child = self.nodes[node].children[Self::bit(base, depth)];
            if child == NO_NODE {
                return None;
            }
            node = child as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Removes a prefix, returning its value. Nodes are not compacted; this
    /// structure is built once per snapshot and queried many times.
    pub fn remove(&mut self, prefix: Prefix) -> Option<T> {
        let base = ipv4_to_u32(prefix.base());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let child = self.nodes[node].children[Self::bit(base, depth)];
            if child == NO_NODE {
                return None;
            }
            node = child as usize;
        }
        let old = self.nodes[node].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, along with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &T)> {
        let key = ipv4_to_u32(addr);
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let child = self.nodes[node].children[((key >> (31 - depth)) & 1) as usize];
            if child == NO_NODE {
                break;
            }
            node = child as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| {
            let p = Prefix::new(addr, len).expect("len <= 32");
            (p, v)
        })
    }

    /// Iterates all stored `(prefix, value)` pairs in depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![(0u32, 0u32, 0u8)]; // (node, base, depth)
        while let Some((node, base, depth)) = stack.pop() {
            let n = &self.nodes[node as usize];
            if let Some(v) = n.value.as_ref() {
                let p = Prefix::new(Ipv4Addr::from(base), depth).expect("depth <= 32");
                out.push((p, v));
            }
            for b in 0..2u32 {
                let child = n.children[b as usize];
                if child != NO_NODE {
                    let child_base = base | (b << (31 - depth));
                    stack.push((child, child_base, depth + 1));
                }
            }
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_finds_nothing() {
        let t: PrefixTrie<u32> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(a("1.2.3.4")), None);
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_match_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("91.0.0.0/8"), "eight");
        t.insert(p("91.55.0.0/16"), "sixteen");
        t.insert(p("91.55.128.0/17"), "seventeen");
        let (pre, v) = t.lookup(a("91.55.174.103")).unwrap();
        assert_eq!(*v, "seventeen");
        assert_eq!(pre, p("91.55.128.0/17"));
        let (pre, v) = t.lookup(a("91.55.1.1")).unwrap();
        assert_eq!(*v, "sixteen");
        assert_eq!(pre, p("91.55.0.0/16"));
        let (pre, v) = t.lookup(a("91.200.0.1")).unwrap();
        assert_eq!(*v, "eight");
        assert_eq!(pre, p("91.0.0.0/8"));
        assert_eq!(t.lookup(a("92.0.0.1")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("203.0.113.0/24"), 1);
        assert_eq!(t.lookup(a("8.8.8.8")).unwrap().1, &0);
        assert_eq!(t.lookup(a("203.0.113.9")).unwrap().1, &1);
    }

    #[test]
    fn host_routes_work() {
        let mut t = PrefixTrie::new();
        t.insert(p("193.0.0.78/32"), "testing");
        assert_eq!(t.lookup(a("193.0.0.78")).unwrap().1, &"testing");
        assert_eq!(t.lookup(a("193.0.0.79")), None);
    }

    #[test]
    fn iter_returns_all() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "91.55.0.0/16", "203.0.113.0/24", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let mut got: Vec<String> = t.iter().map(|(pre, _)| pre.to_string()).collect();
        got.sort();
        let mut want: Vec<String> = prefixes.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        let mut t = PrefixTrie::new();
        t.insert(p("128.0.0.0/1"), "high");
        t.insert(p("0.0.0.0/1"), "low");
        assert_eq!(t.lookup(a("200.0.0.1")).unwrap().1, &"high");
        assert_eq!(t.lookup(a("100.0.0.1")).unwrap().1, &"low");
    }
}
