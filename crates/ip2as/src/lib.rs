//! # dynaddr-ip2as
//!
//! IP-to-AS mapping substrate, standing in for CAIDA's Routeviews
//! `pfx2as` dataset used by the paper (§3.3 and §6).
//!
//! The paper maps every observed IPv4 address to its origin AS and BGP
//! prefix, using the *monthly* snapshot matching the month in which the
//! address was observed. This crate provides:
//!
//! * [`trie::PrefixTrie`] — a binary (unibit) longest-prefix-match trie over
//!   IPv4 prefixes with generic payloads;
//! * [`table::RouteTable`] — a prefix → origin-ASN table with the `pfx2as`
//!   text serialization (`<base>\t<len>\t<asn>` per line);
//! * [`snapshots::MonthlySnapshots`] — twelve monthly tables queried by
//!   [`dynaddr_types::SimTime`], exactly as §3.3 prescribes ("we found the
//!   month in which a new IP address was assigned ... and used CAIDA's
//!   IP-to-AS dataset for that month").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod snapshots;
pub mod table;
pub mod trie;

pub use snapshots::MonthlySnapshots;
pub use table::{Origin, RouteTable};
pub use trie::PrefixTrie;
