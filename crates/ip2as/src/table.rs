//! Route table: prefix → origin ASN, with the pfx2as text format.
//!
//! CAIDA's `pfx2as` files are tab-separated lines of `base length asn`.
//! We reproduce that wire format so snapshots can be written to disk and
//! reloaded, and so the pipeline genuinely parses external data.

use crate::trie::PrefixTrie;
use dynaddr_types::{Asn, Prefix};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// The result of an origin lookup: the matched BGP prefix and its origin AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Origin {
    /// The most specific announced prefix covering the queried address.
    pub prefix: Prefix,
    /// The origin autonomous system of that prefix.
    pub asn: Asn,
}

/// Errors from parsing the pfx2as text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfx2as parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A snapshot of BGP-announced prefixes with their origin ASes.
///
/// ```
/// use dynaddr_ip2as::RouteTable;
/// use dynaddr_types::Asn;
///
/// let mut table = RouteTable::new();
/// table.announce("91.55.0.0/16".parse().unwrap(), Asn(3320));
/// table.announce("91.55.128.0/17".parse().unwrap(), Asn(3320));
///
/// // Longest-prefix match:
/// let origin = table.origin("91.55.174.103".parse().unwrap()).unwrap();
/// assert_eq!(origin.prefix, "91.55.128.0/17".parse().unwrap());
/// assert_eq!(origin.asn, Asn(3320));
///
/// // pfx2as text round-trip:
/// let text = table.to_pfx2as();
/// let back: RouteTable = text.parse().unwrap();
/// assert_eq!(back.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    trie: PrefixTrie<Asn>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> RouteTable {
        RouteTable { trie: PrefixTrie::new() }
    }

    /// Builds a table from `(prefix, asn)` pairs. Later duplicates win.
    pub fn from_entries(entries: impl IntoIterator<Item = (Prefix, Asn)>) -> RouteTable {
        let mut t = RouteTable::new();
        for (p, a) in entries {
            t.announce(p, a);
        }
        t
    }

    /// Announces (inserts) a prefix with its origin.
    pub fn announce(&mut self, prefix: Prefix, asn: Asn) -> Option<Asn> {
        self.trie.insert(prefix, asn)
    }

    /// Withdraws a prefix.
    pub fn withdraw(&mut self, prefix: Prefix) -> Option<Asn> {
        self.trie.remove(prefix)
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Longest-prefix-match origin lookup for an address.
    pub fn origin(&self, addr: Ipv4Addr) -> Option<Origin> {
        self.trie.lookup(addr).map(|(prefix, &asn)| Origin { prefix, asn })
    }

    /// Shorthand for the origin AS only; `Asn::UNKNOWN` when unannounced.
    pub fn asn_of(&self, addr: Ipv4Addr) -> Asn {
        self.origin(addr).map(|o| o.asn).unwrap_or(Asn::UNKNOWN)
    }

    /// Reference linear-scan lookup used by tests and the ablation bench to
    /// validate the trie: scans all entries keeping the most specific match.
    pub fn origin_linear(&self, addr: Ipv4Addr) -> Option<Origin> {
        self.trie
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(prefix, &asn)| Origin { prefix, asn })
    }

    /// Iterates all `(prefix, asn)` entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, Asn)> + '_ {
        self.trie.iter().map(|(p, &a)| (p, a))
    }

    /// Serializes in pfx2as text format, sorted for determinism.
    pub fn to_pfx2as(&self) -> String {
        let mut entries: Vec<(Prefix, Asn)> = self.iter().collect();
        entries.sort();
        let mut out = String::with_capacity(entries.len() * 24);
        for (p, a) in entries {
            out.push_str(&format!("{}\t{}\t{}\n", p.base(), p.len(), a.0));
        }
        out
    }
}

impl FromStr for RouteTable {
    type Err = ParseError;

    /// Parses the pfx2as text format: `base<TAB>len<TAB>asn` per line.
    /// Blank lines and `#` comments are skipped. CAIDA encodes multi-origin
    /// prefixes as `asn1_asn2` or `asn1,asn2`; like the paper's analysis we
    /// take the first listed origin.
    fn from_str(s: &str) -> Result<RouteTable, ParseError> {
        let mut table = RouteTable::new();
        for (idx, line) in s.lines().enumerate() {
            let line_no = idx + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (base, len, asn) = match (fields.next(), fields.next(), fields.next()) {
                (Some(b), Some(l), Some(a)) => (b, l, a),
                _ => {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("expected 3 fields, got {line:?}"),
                    })
                }
            };
            let base: Ipv4Addr = base.parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("bad address {base:?}"),
            })?;
            let len: u8 = len.parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("bad prefix length {len:?}"),
            })?;
            let prefix = Prefix::new(base, len).map_err(|e| ParseError {
                line: line_no,
                message: e.to_string(),
            })?;
            let first_asn = asn
                .split(['_', ','])
                .next()
                .unwrap_or(asn);
            let asn: u32 = first_asn.parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("bad ASN {asn:?}"),
            })?;
            table.announce(prefix, Asn(asn));
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn announce_and_lookup() {
        let mut t = RouteTable::new();
        t.announce(p("91.55.0.0/16"), Asn(3320));
        t.announce(p("91.55.128.0/17"), Asn(3320));
        let o = t.origin(a("91.55.174.103")).unwrap();
        assert_eq!(o.prefix, p("91.55.128.0/17"));
        assert_eq!(o.asn, Asn(3320));
        assert_eq!(t.asn_of(a("8.8.8.8")), Asn::UNKNOWN);
    }

    #[test]
    fn withdraw_falls_back_to_covering_prefix() {
        let mut t = RouteTable::new();
        t.announce(p("10.0.0.0/8"), Asn(1));
        t.announce(p("10.1.0.0/16"), Asn(2));
        assert_eq!(t.asn_of(a("10.1.2.3")), Asn(2));
        t.withdraw(p("10.1.0.0/16"));
        assert_eq!(t.asn_of(a("10.1.2.3")), Asn(1));
    }

    #[test]
    fn pfx2as_roundtrip() {
        let mut t = RouteTable::new();
        t.announce(p("91.55.0.0/16"), Asn(3320));
        t.announce(p("2.0.0.0/12"), Asn(3215));
        t.announce(p("193.0.0.0/21"), Asn(3333));
        let text = t.to_pfx2as();
        let t2: RouteTable = text.parse().unwrap();
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.asn_of(a("91.55.1.1")), Asn(3320));
        assert_eq!(t2.asn_of(a("2.5.0.1")), Asn(3215));
        assert_eq!(t2.to_pfx2as(), text, "serialization is canonical");
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# caida-style header\n\n10.0.0.0\t8\t701\n";
        let t: RouteTable = text.parse().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.asn_of(a("10.9.9.9")), Asn(701));
    }

    #[test]
    fn parse_multi_origin_takes_first() {
        let t: RouteTable = "10.0.0.0\t8\t701_702\n11.0.0.0\t8\t3320,3215\n".parse().unwrap();
        assert_eq!(t.asn_of(a("10.0.0.1")), Asn(701));
        assert_eq!(t.asn_of(a("11.0.0.1")), Asn(3320));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "10.0.0.0\t8\t701\nnot-an-ip\t8\t1\n".parse::<RouteTable>().unwrap_err();
        assert_eq!(err.line, 2);
        let err = "10.0.0.0\t99\t701\n".parse::<RouteTable>().unwrap_err();
        assert!(err.message.contains("99"), "{err}");
        let err = "10.0.0.0\t8\n".parse::<RouteTable>().unwrap_err();
        assert!(err.message.contains("3 fields"), "{err}");
    }

    #[test]
    fn linear_reference_agrees_on_examples() {
        let mut t = RouteTable::new();
        t.announce(p("91.0.0.0/8"), Asn(1));
        t.announce(p("91.55.0.0/16"), Asn(2));
        t.announce(p("91.55.174.0/24"), Asn(3));
        for addr in ["91.55.174.103", "91.55.1.1", "91.1.1.1", "8.8.8.8"] {
            assert_eq!(t.origin(a(addr)), t.origin_linear(a(addr)), "{addr}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(base, len)| {
            Prefix::new(Ipv4Addr::from(base), len).unwrap()
        })
    }

    proptest! {
        /// The trie LPM must agree with the brute-force linear scan for any
        /// set of prefixes and any query address.
        #[test]
        fn trie_matches_linear_scan(
            entries in proptest::collection::vec((arb_prefix(), 1u32..65536), 1..60),
            queries in proptest::collection::vec(any::<u32>(), 1..40),
        ) {
            let table = RouteTable::from_entries(
                entries.iter().map(|(p, a)| (*p, Asn(*a))),
            );
            for q in queries {
                let addr = Ipv4Addr::from(q);
                prop_assert_eq!(table.origin(addr), table.origin_linear(addr));
            }
        }

        /// Round-tripping through the text format preserves lookups.
        #[test]
        fn pfx2as_text_roundtrip(
            entries in proptest::collection::vec((arb_prefix(), 1u32..65536), 1..40),
            queries in proptest::collection::vec(any::<u32>(), 1..20),
        ) {
            let table = RouteTable::from_entries(
                entries.iter().map(|(p, a)| (*p, Asn(*a))),
            );
            let reparsed: RouteTable = table.to_pfx2as().parse().unwrap();
            prop_assert_eq!(table.len(), reparsed.len());
            for q in queries {
                let addr = Ipv4Addr::from(q);
                prop_assert_eq!(table.origin(addr), reparsed.origin(addr));
            }
        }
    }
}
