//! Monthly route-table snapshots, mirroring CAIDA's monthly pfx2as releases.
//!
//! §3.3 of the paper: *"CAIDA publishes the IP-to-AS dataset monthly; thus,
//! we found the month in which a new IP address was assigned to a probe and
//! used CAIDA's IP-to-AS dataset for that month to find the AS for that
//! address."* This module stores one [`RouteTable`] per month of 2015 and
//! routes queries by [`SimTime`].

use crate::table::{Origin, RouteTable};
use dynaddr_types::{Asn, Prefix, SimTime};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Twelve monthly route-table snapshots for the 2015 measurement year.
///
/// Months are shared via [`Arc`] so the common case — a table that never
/// changes during the year — costs one table, not twelve.
#[derive(Debug, Clone)]
pub struct MonthlySnapshots {
    months: [Arc<RouteTable>; 12],
}

impl MonthlySnapshots {
    /// Uses the same table for all twelve months.
    pub fn uniform(table: RouteTable) -> MonthlySnapshots {
        let shared = Arc::new(table);
        MonthlySnapshots { months: std::array::from_fn(|_| Arc::clone(&shared)) }
    }

    /// Builds from twelve per-month tables (January first).
    pub fn from_months(tables: [RouteTable; 12]) -> MonthlySnapshots {
        let mut iter = tables.into_iter().map(Arc::new);
        MonthlySnapshots { months: std::array::from_fn(|_| iter.next().expect("12 tables")) }
    }

    /// Replaces the snapshot for one month (1-based).
    pub fn set_month(&mut self, month: u32, table: RouteTable) {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        self.months[month as usize - 1] = Arc::new(table);
    }

    /// Replaces snapshots from `month` (1-based) through December — the
    /// shape of an administrative renumbering that persists.
    pub fn set_from_month(&mut self, month: u32, table: RouteTable) {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        let shared = Arc::new(table);
        for m in (month as usize - 1)..12 {
            self.months[m] = Arc::clone(&shared);
        }
    }

    /// The snapshot for a 1-based month number.
    pub fn month(&self, month: u32) -> &RouteTable {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        &self.months[month as usize - 1]
    }

    /// The snapshot covering an instant (clamped to the 2015 year ends).
    pub fn at(&self, time: SimTime) -> &RouteTable {
        self.month(time.month_of_2015())
    }

    /// Origin lookup using the snapshot for the instant's month.
    pub fn origin_at(&self, time: SimTime, addr: Ipv4Addr) -> Option<Origin> {
        self.at(time).origin(addr)
    }

    /// Origin AS at the instant; `Asn::UNKNOWN` when unannounced.
    pub fn asn_at(&self, time: SimTime, addr: Ipv4Addr) -> Asn {
        self.at(time).asn_of(addr)
    }

    /// BGP prefix at the instant, if announced.
    pub fn prefix_at(&self, time: SimTime, addr: Ipv4Addr) -> Option<Prefix> {
        self.origin_at(time, addr).map(|o| o.prefix)
    }

    /// Writes the twelve snapshots as `2015-01.pfx2as` … `2015-12.pfx2as`
    /// in CAIDA's text format. Identical consecutive months share content
    /// but are written separately (as CAIDA publishes them).
    pub fn save_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for month in 1..=12u32 {
            let path = dir.join(format!("2015-{month:02}.pfx2as"));
            std::fs::write(path, self.month(month).to_pfx2as())?;
        }
        Ok(())
    }

    /// Loads snapshots written by [`MonthlySnapshots::save_dir`].
    pub fn load_dir(dir: &std::path::Path) -> std::io::Result<MonthlySnapshots> {
        let mut months = Vec::with_capacity(12);
        for month in 1..=12u32 {
            let path = dir.join(format!("2015-{month:02}.pfx2as"));
            let text = std::fs::read_to_string(&path)?;
            let table: RouteTable = text.parse().map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            months.push(table);
        }
        Ok(MonthlySnapshots::from_months(
            months.try_into().expect("exactly 12 months"),
        ))
    }

    /// Prefixes that differ between two months: `(added, removed)` relative
    /// to the earlier month. Supports churn studies across snapshot
    /// boundaries.
    pub fn month_diff(&self, earlier: u32, later: u32) -> (Vec<Prefix>, Vec<Prefix>) {
        let a: std::collections::BTreeSet<Prefix> =
            self.month(earlier).iter().map(|(p, _)| p).collect();
        let b: std::collections::BTreeSet<Prefix> =
            self.month(later).iter().map(|(p, _)| p).collect();
        let added = b.difference(&a).copied().collect();
        let removed = a.difference(&b).copied().collect();
        (added, removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn jan(day: u32) -> SimTime {
        SimTime::from_date(1, day, 12, 0, 0)
    }

    #[test]
    fn uniform_answers_every_month() {
        let mut t = RouteTable::new();
        t.announce(p("91.55.0.0/16"), Asn(3320));
        let snaps = MonthlySnapshots::uniform(t);
        for month in 1..=12 {
            let time = SimTime::from_date(month, 15, 0, 0, 0);
            assert_eq!(snaps.asn_at(time, a("91.55.1.1")), Asn(3320));
        }
    }

    #[test]
    fn set_from_month_models_admin_renumbering() {
        let mut before = RouteTable::new();
        before.announce(p("10.0.0.0/16"), Asn(64500));
        let mut after = RouteTable::new();
        after.announce(p("172.16.0.0/16"), Asn(64500));

        let mut snaps = MonthlySnapshots::uniform(before);
        snaps.set_from_month(7, after);

        assert_eq!(snaps.asn_at(SimTime::from_date(6, 30, 23, 0, 0), a("10.0.1.1")), Asn(64500));
        assert_eq!(snaps.asn_at(SimTime::from_date(7, 1, 1, 0, 0), a("10.0.1.1")), Asn::UNKNOWN);
        assert_eq!(
            snaps.asn_at(SimTime::from_date(12, 31, 0, 0, 0), a("172.16.1.1")),
            Asn(64500)
        );
    }

    #[test]
    fn out_of_year_times_clamp() {
        let mut t = RouteTable::new();
        t.announce(p("91.55.0.0/16"), Asn(3320));
        let snaps = MonthlySnapshots::uniform(t);
        // Dec 31 2014 — clamps to January's snapshot.
        assert_eq!(snaps.asn_at(SimTime(-3600), a("91.55.2.2")), Asn(3320));
        // Jan 2016 — clamps to December's snapshot.
        assert_eq!(snaps.asn_at(SimTime(SimTime::YEAR_END.0 + 5), a("91.55.2.2")), Asn(3320));
    }

    #[test]
    fn prefix_at_returns_matched_bgp_prefix() {
        let mut t = RouteTable::new();
        t.announce(p("91.55.0.0/16"), Asn(3320));
        t.announce(p("91.55.128.0/17"), Asn(3320));
        let snaps = MonthlySnapshots::uniform(t);
        assert_eq!(snaps.prefix_at(jan(1), a("91.55.200.1")), Some(p("91.55.128.0/17")));
        assert_eq!(snaps.prefix_at(jan(1), a("91.55.1.1")), Some(p("91.55.0.0/16")));
        assert_eq!(snaps.prefix_at(jan(1), a("8.8.8.8")), None);
    }

    #[test]
    fn save_load_dir_roundtrip() {
        let mut before = RouteTable::new();
        before.announce(p("10.0.0.0/16"), Asn(64500));
        let mut after = before.clone();
        after.announce(p("172.16.0.0/16"), Asn(64500));
        let mut snaps = MonthlySnapshots::uniform(before);
        snaps.set_from_month(7, after);

        let dir = std::env::temp_dir().join(format!("dynaddr-snaps-{}", std::process::id()));
        snaps.save_dir(&dir).unwrap();
        let back = MonthlySnapshots::load_dir(&dir).unwrap();
        for month in 1..=12 {
            assert_eq!(
                snaps.month(month).to_pfx2as(),
                back.month(month).to_pfx2as(),
                "month {month}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn month_diff_reports_migration() {
        let mut before = RouteTable::new();
        before.announce(p("10.0.0.0/16"), Asn(64500));
        let mut after = RouteTable::new();
        after.announce(p("172.16.0.0/16"), Asn(64500));
        let mut snaps = MonthlySnapshots::uniform(before);
        snaps.set_from_month(9, after);
        let (added, removed) = snaps.month_diff(8, 9);
        assert_eq!(added, vec![p("172.16.0.0/16")]);
        assert_eq!(removed, vec![p("10.0.0.0/16")]);
        let (added, removed) = snaps.month_diff(1, 2);
        assert!(added.is_empty() && removed.is_empty());
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn month_zero_panics() {
        let snaps = MonthlySnapshots::uniform(RouteTable::new());
        snaps.month(0);
    }
}
