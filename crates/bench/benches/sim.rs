//! Simulation throughput: how fast a measurement year runs at different
//! world scales, and how the pieces (event loop vs filler generation)
//! contribute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynaddr_atlas::world::paper_world;
use dynaddr_atlas::{simulate, FillerSpec};

fn bench_scales(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_year");
    group.sample_size(10);
    for &scale in &[0.02f64, 0.05, 0.1] {
        let world = paper_world(scale, 5);
        group.bench_with_input(
            BenchmarkId::new("paper_world", format!("{scale}")),
            &world,
            |b, w| b.iter(|| simulate(w)),
        );
    }
    group.finish();
}

fn bench_analyzable_only(c: &mut Criterion) {
    // Event-driven probes without filler: the event loop in isolation.
    let mut world = paper_world(0.05, 5);
    world.filler = FillerSpec::none();
    world.movers = 0;
    let mut group = c.benchmark_group("simulate_year");
    group.sample_size(10);
    group.bench_function("event_loop_only_0.05", |b| b.iter(|| simulate(&world)));
    group.finish();
}

criterion_group!(benches, bench_scales, bench_analyzable_only);
criterion_main!(benches);
