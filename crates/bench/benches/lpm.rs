//! Ablation bench: longest-prefix-match trie vs naive linear scan.
//!
//! The IP-to-AS substrate answers one lookup per connection-log entry and
//! two per address change; DESIGN.md calls out the trie as a design choice
//! worth quantifying.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynaddr_ip2as::RouteTable;
use dynaddr_types::{Asn, Prefix};
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

fn synthetic_table(prefixes: usize, seed: u64) -> RouteTable {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    let mut table = RouteTable::new();
    let mut n = 0;
    while n < prefixes {
        let base = Ipv4Addr::new(
            rng.gen_range(1..224),
            rng.gen_range(0..=255),
            rng.gen_range(0..=255),
            0,
        );
        let len = rng.gen_range(8..=24);
        let p = Prefix::new(base, len).expect("len in range");
        if table.announce(p, Asn(rng.gen_range(1..65_000))).is_none() {
            n += 1;
        }
    }
    table
}

fn bench_lookup(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
    let queries: Vec<Ipv4Addr> = (0..200).map(|_| Ipv4Addr::from(rng.gen::<u32>())).collect();
    let mut group = c.benchmark_group("lpm_200_lookups");
    group.sample_size(20);
    for &size in &[100usize, 1_000, 10_000] {
        let table = synthetic_table(size, 42);
        group.bench_with_input(BenchmarkId::new("trie", size), &table, |b, t| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    if t.origin(*q).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", size), &table, |b, t| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    if t.origin_linear(*q).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    c.bench_function("trie_build_10k_prefixes", |b| {
        b.iter(|| synthetic_table(10_000, 42))
    });
}

criterion_group!(benches, bench_lookup, bench_build);
criterion_main!(benches);
