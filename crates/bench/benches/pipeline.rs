//! Criterion benches for the analysis pipeline — one measurement per paper
//! experiment, so regressions in any stage are visible individually.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_atlas::{simulate, SimOutput};
use dynaddr_core::filtering::{filter_probes, FilterReport};
use dynaddr_core::geo::continent_distributions;
use dynaddr_core::periodic::{table5, PeriodicConfig};
use dynaddr_core::pipeline::{analyze, outage_analysis, AnalysisConfig};
use dynaddr_core::prefixes::prefix_changes;
use dynaddr_ip2as::MonthlySnapshots;
use std::sync::OnceLock;

fn world() -> &'static (SimOutput, MonthlySnapshots, FilterReport) {
    static W: OnceLock<(SimOutput, MonthlySnapshots, FilterReport)> = OnceLock::new();
    W.get_or_init(|| {
        let config = paper_world(0.05, 11);
        let out = simulate(&config);
        let snaps = paper_route_tables(&config);
        let filtered = filter_probes(&out.dataset, &snaps);
        (out, snaps, filtered)
    })
}

fn bench_filtering(c: &mut Criterion) {
    let (out, snaps, _) = world();
    c.bench_function("table2_filtering", |b| {
        b.iter(|| filter_probes(&out.dataset, snaps))
    });
}

fn bench_table5(c: &mut Criterion) {
    let (_, _, filtered) = world();
    let names = Default::default();
    let cfg = PeriodicConfig::default();
    c.bench_function("table5_periodic_classification", |b| {
        b.iter(|| table5(&filtered.probes, &names, &cfg))
    });
}

fn bench_geo(c: &mut Criterion) {
    let (_, _, filtered) = world();
    c.bench_function("fig1_continent_rollup", |b| {
        b.iter(|| continent_distributions(&filtered.probes))
    });
}

fn bench_outages(c: &mut Criterion) {
    let (out, _, filtered) = world();
    c.bench_function("outage_detection_and_association", |b| {
        b.iter(|| outage_analysis(&out.dataset, &filtered.probes))
    });
}

fn bench_prefixes(c: &mut Criterion) {
    let (_, snaps, filtered) = world();
    c.bench_function("table7_prefix_changes", |b| {
        b.iter(|| prefix_changes(&filtered.probes, snaps))
    });
}

fn bench_full(c: &mut Criterion) {
    let (out, snaps, _) = world();
    let cfg = AnalysisConfig::default();
    let mut group = c.benchmark_group("full");
    group.sample_size(10);
    group.bench_function("analyze_everything", |b| {
        b.iter(|| analyze(&out.dataset, snaps, &cfg))
    });
    group.finish();
}

fn bench_jsonl(c: &mut Criterion) {
    let (out, _, _) = world();
    let docs = out.dataset.to_jsonl();
    let mut group = c.benchmark_group("jsonl");
    group.sample_size(10);
    group.bench_function("serialize", |b| b.iter(|| out.dataset.to_jsonl()));
    group.bench_function("parse", |b| {
        b.iter_batched(
            || docs.clone(),
            |d| dynaddr_atlas::AtlasDataset::from_jsonl(&d).expect("valid"),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filtering,
    bench_table5,
    bench_geo,
    bench_outages,
    bench_prefixes,
    bench_full,
    bench_jsonl
);
criterion_main!(benches);
