//! Micro-benches for the ISP substrate: pool allocation under load, DHCP
//! lease churn, and PPP session turnover.

use criterion::{criterion_group, criterion_main, Criterion};
use dynaddr_ispnet::pool::{AddressPool, AllocationPolicy, ClientId, PoolConfig};
use dynaddr_ispnet::{DhcpConfig, DhcpServer, PppConfig, PppServer};
use dynaddr_types::{SimDuration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn pool_config(policy: AllocationPolicy) -> PoolConfig {
    PoolConfig {
        prefixes: vec![
            "10.0.0.0/16".parse().unwrap(),
            "11.0.0.0/16".parse().unwrap(),
            "12.0.0.0/16".parse().unwrap(),
        ],
        policy,
        background_occupancy: 0.7,
    }
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_allocate_release_cycle");
    for (label, policy) in [
        ("prefer_previous", AllocationPolicy::PreferPrevious),
        ("random_any", AllocationPolicy::RandomAny),
        ("same_prefix_bias", AllocationPolicy::SamePrefixBias(0.7)),
    ] {
        group.bench_function(label, |b| {
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            let mut pool = AddressPool::new(&pool_config(policy), 1);
            let mut prev = None;
            b.iter(|| {
                let a = pool.allocate(&mut rng, ClientId(1), prev).expect("space");
                pool.release(ClientId(1));
                prev = Some(a);
                a
            })
        });
    }
    group.finish();
}

fn bench_dhcp_outage_recovery(c: &mut Criterion) {
    // Expired re-acquires consume pool capacity when background churn claims
    // the old address (exactly as in a real year), so the bench runs batches
    // of 1,000 re-acquires against fresh server+pool state.
    c.bench_function("dhcp_expired_reacquire_x1000", |b| {
        b.iter_batched(
            || {
                let mut rng = ChaCha12Rng::seed_from_u64(2);
                let mut pool =
                    AddressPool::new(&pool_config(AllocationPolicy::PreferPrevious), 2);
                let mut server = DhcpServer::new(DhcpConfig::default());
                server.acquire(&mut pool, &mut rng, ClientId(1), SimTime(0));
                (rng, pool, server)
            },
            |(mut rng, mut pool, mut server)| {
                let mut now = SimTime(0);
                for _ in 0..1_000 {
                    now += SimDuration::from_hours(30); // always past expiry
                    server.acquire(&mut pool, &mut rng, ClientId(1), now);
                }
                (pool, server)
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_ppp_session_turnover(c: &mut Criterion) {
    c.bench_function("ppp_cap_expiry_renumber", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut pool = AddressPool::new(&pool_config(AllocationPolicy::RandomAny), 3);
        let mut server = PppServer::new(PppConfig {
            session_cap: Some(SimDuration::from_hours(24)),
            ..PppConfig::default()
        });
        let mut now = SimTime(0);
        server.connect(&mut pool, &mut rng, ClientId(1), now, None);
        b.iter(|| {
            now += SimDuration::from_hours(24);
            server.on_cap_expiry(&mut pool, &mut rng, ClientId(1), now)
        })
    });
}

criterion_group!(benches, bench_pool, bench_dhcp_outage_recovery, bench_ppp_session_turnover);
criterion_main!(benches);
