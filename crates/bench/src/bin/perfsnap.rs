//! `perfsnap` — committed performance snapshot for the parallel pipeline.
//!
//! Usage:
//!   perfsnap [--scale S] [--seed N] [--iters K] [--out FILE]
//!
//! Times the simulator and each pipeline stage at the default
//! `paper_world(0.05, 11)` twice — once pinned to one thread, once at the
//! machine's full parallelism — and writes the comparison to
//! `BENCH_pipeline.json` at the repository root (best of K iterations per
//! cell). The snapshot records whatever the build machine offers; speedups
//! are only meaningful when `max_threads > 1`.

use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_atlas::{simulate, simulate_instrumented, SimOutput};
use dynaddr_core::filtering::filter_probes;
use dynaddr_core::geo::continent_distributions;
use dynaddr_core::periodic::{table5, PeriodicConfig};
use dynaddr_core::pipeline::{analyze, outage_analysis};
use dynaddr_core::prefixes::prefix_changes;
use dynaddr_ip2as::MonthlySnapshots;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct StageTiming {
    stage: &'static str,
    ms_threads_1: f64,
    ms_threads_max: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct QueueSnapshot {
    /// Events pushed across all shard queues.
    pushes: u64,
    /// Events popped across all shard queues.
    pops: u64,
    /// Largest pending-event count of any single shard queue.
    max_queue_len: usize,
    /// Pushes that landed in the overflow (past-the-span) region.
    overflow_hits: u64,
    /// Calendar bucket-width halvings triggered by occupancy skew.
    resizes: u64,
    /// Events in the busiest shard over the per-shard mean (1.0 = perfect).
    shard_balance: f64,
}

#[derive(Serialize)]
struct DiskSizes {
    /// Dataset serialized as the four legacy JSONL documents.
    jsonl_bytes: usize,
    /// The same dataset as one columnar `dataset.store` file.
    store_bytes: usize,
    /// store_bytes / jsonl_bytes (lower is better).
    store_over_jsonl: f64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    seed: u64,
    iters: usize,
    /// Cores the build host offered — the snapshot's thread-max runs used
    /// all of them, and speedups are only meaningful when this exceeds 1.
    max_threads: usize,
    /// Shards the simulator partitioned the world into (thread-independent).
    sim_shards: usize,
    /// Event-queue telemetry of one simulation (thread-independent).
    sim_queue: QueueSnapshot,
    /// On-disk size of the dataset in each format (thread-independent).
    dataset_bytes: DiskSizes,
    stages: Vec<StageTiming>,
}

fn main() {
    let mut scale = 0.05f64;
    let mut seed = 11u64;
    let mut iters = 3usize;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale value").parse().expect("numeric"),
            "--seed" => seed = args.next().expect("--seed value").parse().expect("numeric"),
            "--iters" => iters = args.next().expect("--iters value").parse().expect("numeric"),
            "--out" => out = Some(PathBuf::from(args.next().expect("--out file"))),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: perfsnap [--scale S] [--seed N] [--iters K] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json")
    });

    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("perfsnap: paper_world({scale}, {seed}), 1 vs {max_threads} threads, best of {iters}");

    let world = paper_world(scale, seed);
    let sim_out = simulate(&world);
    let snaps = paper_route_tables(&world);

    let (one, sim_shards, sim_queue) = run_all(&world, &sim_out, &snaps, 1, iters);
    let (many, _, _) = run_all(&world, &sim_out, &snaps, max_threads, iters);
    dynaddr_exec::set_threads(None);

    let jsonl = sim_out.dataset.to_jsonl();
    let jsonl_bytes = jsonl.meta.len()
        + jsonl.connections.len()
        + jsonl.kroot.len()
        + jsonl.uptime.len();
    let store_bytes = sim_out.dataset.to_store_bytes().len();
    let dataset_bytes = DiskSizes {
        jsonl_bytes,
        store_bytes,
        store_over_jsonl: if jsonl_bytes > 0 {
            store_bytes as f64 / jsonl_bytes as f64
        } else {
            0.0
        },
    };

    let stages = one
        .into_iter()
        .zip(many)
        .map(|((stage, ms1), (_, msn))| StageTiming {
            stage,
            ms_threads_1: ms1,
            ms_threads_max: msn,
            speedup: if msn > 0.0 { ms1 / msn } else { 0.0 },
        })
        .collect();
    let snap =
        Snapshot { scale, seed, iters, max_threads, sim_shards, sim_queue, dataset_bytes, stages };
    let json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write snapshot");
    println!("{json}");
    eprintln!("wrote {}", out.display());
}

/// Best-of-`iters` wall time in milliseconds for every stage at `threads`,
/// plus the simulator's shard count and queue telemetry.
fn run_all(
    world: &dynaddr_atlas::config::WorldConfig,
    sim_out: &SimOutput,
    snaps: &MonthlySnapshots,
    threads: usize,
    iters: usize,
) -> (Vec<(&'static str, f64)>, usize, QueueSnapshot) {
    dynaddr_exec::set_threads(Some(threads));
    let dataset = &sim_out.dataset;
    let probes = filter_probes(dataset, snaps).probes;
    let cfg = dynaddr_core::pipeline::AnalysisConfig::default();
    let mut results = Vec::new();

    // The simulate stage reports its total plus the instrumented sub-stage
    // breakdown (world build vs event loop vs filler vs normalize), each
    // best-of-iters.
    let mut sim_shards = 0usize;
    let mut sim_queue = QueueSnapshot {
        pushes: 0,
        pops: 0,
        max_queue_len: 0,
        overflow_hits: 0,
        resizes: 0,
        shard_balance: 1.0,
    };
    {
        let mut best_total = f64::INFINITY;
        let (mut best_build, mut best_ev, mut best_fill, mut best_norm) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..iters {
            let t0 = Instant::now();
            let (out, stats) = simulate_instrumented(world, None);
            let total = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(out);
            best_total = best_total.min(total);
            best_build = best_build.min(stats.world_build_s * 1e3);
            best_ev = best_ev.min(stats.event_loop_s * 1e3);
            best_fill = best_fill.min(stats.filler_s * 1e3);
            best_norm = best_norm.min(stats.normalize_s * 1e3);
            sim_shards = stats.shards;
            sim_queue = QueueSnapshot {
                pushes: stats.queue.pushes,
                pops: stats.queue.pops,
                max_queue_len: stats.queue.max_queue_len,
                overflow_hits: stats.queue.overflow_hits,
                resizes: stats.queue.resizes,
                shard_balance: stats.shard_balance(),
            };
        }
        results.push(("simulate", best_total));
        results.push(("world_build", best_build));
        results.push(("sim_event_loop", best_ev));
        results.push(("sim_filler", best_fill));
        results.push(("sim_normalize", best_norm));
    }

    let mut time = |stage: &'static str, f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        results.push((stage, best));
    };

    time("filter_probes", &mut || {
        std::hint::black_box(filter_probes(dataset, snaps));
    });
    time("table5", &mut || {
        std::hint::black_box(table5(&probes, &BTreeMap::new(), &PeriodicConfig::default()));
    });
    time("continent_distributions", &mut || {
        std::hint::black_box(continent_distributions(&probes));
    });
    time("outage_analysis", &mut || {
        std::hint::black_box(outage_analysis(dataset, &probes));
    });
    time("prefix_changes", &mut || {
        std::hint::black_box(prefix_changes(&probes, snaps));
    });
    time("analyze", &mut || {
        std::hint::black_box(analyze(dataset, snaps, &cfg));
    });

    // Serialization stages: the legacy JSONL path against the columnar
    // store. Both decode stages include normalize() — each is the full
    // bytes-to-usable-dataset cost.
    let jsonl = dataset.to_jsonl();
    let store = dataset.to_store_bytes();
    time("jsonl_encode", &mut || {
        std::hint::black_box(dataset.to_jsonl());
    });
    time("jsonl_parse", &mut || {
        std::hint::black_box(
            dynaddr_atlas::AtlasDataset::from_jsonl(&jsonl).expect("jsonl round-trips"),
        );
    });
    time("store_encode", &mut || {
        std::hint::black_box(dataset.to_store_bytes());
    });
    time("store_decode", &mut || {
        std::hint::black_box(
            dynaddr_atlas::AtlasDataset::from_store_bytes(&store).expect("store round-trips"),
        );
    });
    (results, sim_shards, sim_queue)
}
