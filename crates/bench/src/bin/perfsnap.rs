//! `perfsnap` — committed performance snapshot for the parallel pipeline.
//!
//! Usage:
//!   perfsnap [--scale S | --tier NAME] [--seed N] [--iters K] [--out FILE]
//!            [--tiers LIST] [--lookups N] [--trace FILE]
//!
//! Times the simulator and each pipeline stage at the default
//! `paper_world(0.05, 11)` twice — once pinned to one thread, once at the
//! machine's full parallelism — and writes the comparison to
//! `BENCH_pipeline.json` at the repository root (best of K iterations per
//! cell). The snapshot records whatever the build machine offers; speedups
//! are only meaningful when `max_threads > 1`.
//!
//! It then climbs the streamed scale ladder: for each named tier in
//! `--tiers` (comma-separated, default `s005,s02,paper`, `none` to skip)
//! it re-executes itself in a child process that runs the out-of-core
//! pipeline end-to-end (`simulate_to_store` → `analyze_streamed`) and
//! reports throughput and peak RSS. One process per tier because the RSS
//! high-water mark is process-wide and monotone — in-process tiers would
//! inherit their predecessors' peaks.
//!
//! The snapshot also records the executor's per-worker task counts for the
//! max-thread run (`exec_stats`) and the measured cost of tracing
//! (`trace_overhead_pct`): traced and untraced `analyze` runs at the s005
//! scale, interleaved best-of-K. Tracing is budgeted at 2% wall-clock —
//! perfsnap exits nonzero (after writing the snapshot) if the overhead is
//! above budget and the absolute delta exceeds 10 ms, so sub-millisecond
//! jitter on fast machines cannot flake the check. `--trace FILE` writes
//! the usual JSONL sidecar for the snapshot run itself; the warm-up pass
//! appears there as an explicit `warmup: true` span, and the ladder's tier
//! children always run untraced.
//!
//! The `query` section benchmarks the serving layer (`dynaddr-query`): a
//! fresh cache-cold `QueryEngine` over the snapshot's own dataset answers
//! `--lookups` seeded zipf-skewed requests at 1, 2, and ambient thread
//! counts, recording throughput, cache hit rate, and latency quantiles.
//! Each run folds its responses into an order-independent digest; perfsnap
//! exits nonzero (after writing the snapshot) if the digests differ across
//! thread counts — the cheap, always-on form of the crate's determinism
//! tests — or if the ambient run's cache hit rate falls below 80%.
//!
//! The `ingest` section benchmarks the live path (`dynaddr-daemon`): an
//! in-process daemon replays the snapshot's own dataset at max rate while
//! a concurrent client hammers rolling `DaemonSnapshot` point queries,
//! recording replay throughput (rows/sec) and point-query latency
//! quantiles under ingest. The sealed report is compared against the
//! batch analyzer's; perfsnap exits nonzero (after writing the snapshot)
//! if they differ by even one byte.

use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_atlas::{simulate, simulate_instrumented, simulate_to_store, SimOptions, SimOutput};
use dynaddr_bench::{peak_rss_bytes, tier_scale, TIER_NAMES};
use dynaddr_obs::{error, info, span};
use dynaddr_core::filtering::filter_probes;
use dynaddr_core::geo::continent_distributions;
use dynaddr_core::periodic::{table5, PeriodicConfig};
use dynaddr_core::pipeline::{analyze, analyze_streamed, outage_analysis, AnalysisConfig};
use dynaddr_core::prefixes::prefix_changes;
use dynaddr_ip2as::MonthlySnapshots;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct StageTiming {
    stage: &'static str,
    /// Worker threads of the first column (always 1).
    threads_1: usize,
    /// Worker threads of the second column (the host's parallelism).
    threads_max: usize,
    ms_threads_1: f64,
    ms_threads_max: f64,
    speedup: f64,
}

/// One thread-count run of the query-serving benchmark.
#[derive(Serialize)]
struct QueryStage {
    /// Worker threads driving the engine.
    threads: usize,
    /// Requests answered.
    lookups: u64,
    /// Requests answered per wall-clock second.
    lookups_per_sec: f64,
    /// Segment-cache hit rate over the run (cold start).
    cache_hit_rate: f64,
    /// Median per-request latency, microseconds (log2-bucket upper bound).
    latency_p50_us: u64,
    /// 99th-percentile per-request latency, microseconds.
    latency_p99_us: u64,
    /// Order-independent digest of all response bytes; must match across
    /// thread counts.
    digest: String,
}

/// The live-ingestion benchmark: an in-process daemon replays the
/// snapshot's own dataset at max rate under concurrent point queries.
#[derive(Serialize)]
struct IngestStage {
    /// Rows replayed (probe metadata plus every stream row).
    rows: u64,
    /// Wall seconds for the full replay at max rate.
    replay_s: f64,
    /// rows / replay_s: live-ingestion throughput.
    replay_rows_per_sec: f64,
    /// Rolling `DaemonSnapshot` queries answered while the replay ran.
    point_queries: u64,
    /// Median point-query latency under ingest, nanoseconds — the call is
    /// in-process, so sub-microsecond (log2-bucket upper bound).
    point_p50_ns: u64,
    /// 99th-percentile point-query latency under ingest, nanoseconds.
    point_p99_ns: u64,
    /// The daemon's sealed report is byte-identical to the batch
    /// analyzer's — the snapshot's always-on replay-equivalence check.
    sealed_matches_batch: bool,
}

#[derive(Serialize)]
struct QueueSnapshot {
    /// Events pushed across all shard queues.
    pushes: u64,
    /// Events popped across all shard queues.
    pops: u64,
    /// Largest pending-event count of any single shard queue.
    max_queue_len: usize,
    /// Pushes that landed in the overflow (past-the-span) region.
    overflow_hits: u64,
    /// Calendar bucket-width halvings triggered by occupancy skew.
    resizes: u64,
    /// Events in the busiest shard over the per-shard mean (1.0 = perfect).
    shard_balance: f64,
    /// Median pending-event count at push time (log2-bucket upper bound).
    occupancy_p50: u64,
    /// 99th-percentile pending-event count at push time.
    occupancy_p99: u64,
}

/// The executor's cumulative stats over the max-thread timing run.
#[derive(Serialize)]
struct ExecSnapshot {
    /// Worker threads the run was pinned to.
    workers: usize,
    /// Parallel regions entered (par_map/par_fold/par_run calls).
    regions: u64,
    /// Regions that took the sequential fast path.
    sequential_regions: u64,
    /// Items processed across all regions.
    tasks: u64,
    /// Items processed per worker slot (slot = chunk index).
    tasks_per_worker: Vec<u64>,
    /// Mean spawn-to-start latency per spawned worker, milliseconds.
    queue_wait_ms: f64,
    /// Σ busy time / (Σ region wall × slots): 1.0 = perfectly balanced.
    utilization: f64,
}

#[derive(Serialize)]
struct DiskSizes {
    /// Dataset serialized as the four legacy JSONL documents.
    jsonl_bytes: usize,
    /// The same dataset as one columnar `dataset.store` file.
    store_bytes: usize,
    /// store_bytes / jsonl_bytes (lower is better).
    store_over_jsonl: f64,
}

/// End-to-end streamed run of one named tier, measured in its own process.
#[derive(Serialize, Deserialize)]
struct TierResult {
    tier: String,
    scale: f64,
    /// Worker threads the tier child ran with (its ambient parallelism).
    threads: usize,
    /// Probes the tier's world produced.
    probes: u64,
    /// Wall seconds for `simulate_to_store` (shards stream to disk).
    simulate_s: f64,
    /// Wall seconds for `analyze_streamed` off the store file.
    analyze_s: f64,
    /// probes / (simulate_s + analyze_s): end-to-end pipeline throughput.
    probes_per_sec: f64,
    /// The tier process's peak RSS in bytes (VmHWM; 0 off-Linux).
    peak_rss_bytes: u64,
}

#[derive(Serialize)]
struct Snapshot {
    scale: f64,
    /// Named tier `--tier` selected ("" when `--scale` was given).
    tier: String,
    seed: u64,
    iters: usize,
    /// Cores the build host offered — the snapshot's thread-max runs used
    /// all of them, and speedups are only meaningful when this exceeds 1.
    max_threads: usize,
    /// Shards the simulator partitioned the world into (thread-independent).
    sim_shards: usize,
    /// Event-queue telemetry of one simulation (thread-independent).
    sim_queue: QueueSnapshot,
    /// On-disk size of the dataset in each format (thread-independent).
    dataset_bytes: DiskSizes,
    /// Peak RSS of the snapshot process itself (all materialized stage
    /// timings included; bytes, 0 off-Linux).
    peak_rss_bytes: u64,
    /// Executor telemetry from the max-thread timing run.
    exec_stats: ExecSnapshot,
    /// Traced-vs-untraced `analyze` at s005 scale, percent of wall-clock
    /// (interleaved best-of; budget is 2%).
    trace_overhead_pct: f64,
    stages: Vec<StageTiming>,
    /// The query-serving benchmark, one cache-cold run per thread count.
    query: Vec<QueryStage>,
    /// The live-ingestion benchmark: daemon replay under point queries.
    ingest: IngestStage,
    /// The streamed scale ladder, one isolated process per tier.
    tiers: Vec<TierResult>,
}

/// `--tier-child NAME SEED` mode: run one tier's streamed pipeline
/// end-to-end and print its `TierResult` as JSON on stdout. Runs in a
/// fresh process so `peak_rss_bytes` reflects this tier alone.
fn run_tier_child(name: &str, seed: u64) -> ! {
    let scale = tier_scale(name).unwrap_or_else(|| {
        error!("unknown tier {name:?} (want one of {})", TIER_NAMES.join(", "));
        std::process::exit(2);
    });
    let world = paper_world(scale, seed);
    let snaps = paper_route_tables(&world);
    let dir = std::env::temp_dir().join(format!("dynaddr-perfsnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("dataset.store");

    let t0 = Instant::now();
    simulate_to_store(&world, &SimOptions::default(), &path).expect("streamed simulate");
    let simulate_s = t0.elapsed().as_secs_f64();

    let probes = dynaddr_atlas::DatasetStream::open(&path)
        .expect("reopen store")
        .total_probes();
    let t1 = Instant::now();
    let report =
        analyze_streamed(&path, &snaps, &AnalysisConfig::default()).expect("streamed analyze");
    let analyze_s = t1.elapsed().as_secs_f64();
    std::hint::black_box(&report);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    let total = simulate_s + analyze_s;
    let result = TierResult {
        tier: name.to_string(),
        scale,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        probes,
        simulate_s,
        analyze_s,
        probes_per_sec: if total > 0.0 { probes as f64 / total } else { 0.0 },
        peak_rss_bytes: peak_rss_bytes(),
    };
    println!("{}", serde_json::to_string(&result).expect("tier result serializes"));
    std::process::exit(0);
}

fn main() {
    let mut scale = 0.05f64;
    let mut tier = String::new();
    let mut seed = 11u64;
    let mut iters = 3usize;
    let mut lookups = 1_000_000u64;
    let mut out: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut ladder: Vec<String> = vec!["s005".into(), "s02".into(), "paper".into()];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args.next().expect("--scale value").parse().expect("numeric");
                tier.clear();
            }
            "--tier" => {
                tier = args.next().expect("--tier name");
                scale = tier_scale(&tier).unwrap_or_else(|| {
                    error!("unknown tier {tier:?} (want one of {})", TIER_NAMES.join(", "));
                    std::process::exit(2);
                });
            }
            "--tiers" => {
                let list = args.next().expect("--tiers list");
                ladder = if list == "none" {
                    Vec::new()
                } else {
                    list.split(',').map(str::to_string).collect()
                };
                for name in &ladder {
                    if tier_scale(name).is_none() {
                        error!(
                            "unknown tier {name:?} (want one of {})",
                            TIER_NAMES.join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => seed = args.next().expect("--seed value").parse().expect("numeric"),
            "--iters" => iters = args.next().expect("--iters value").parse().expect("numeric"),
            "--lookups" => {
                lookups = args.next().expect("--lookups value").parse().expect("numeric")
            }
            "--out" => out = Some(PathBuf::from(args.next().expect("--out file"))),
            // Deferred: the trace-overhead measurement must run with its own
            // scratch sink first, so the user's sidecar opens after it.
            "--trace" => trace = Some(PathBuf::from(args.next().expect("--trace file"))),
            // Internal: one ladder rung, isolated for clean RSS numbers.
            "--tier-child" => {
                let name = args.next().expect("--tier-child name");
                let seed = args
                    .next()
                    .expect("--tier-child seed")
                    .parse()
                    .expect("numeric tier seed");
                run_tier_child(&name, seed);
            }
            other => {
                error!("unknown argument {other}");
                eprintln!(
                    "usage: perfsnap [--scale S | --tier NAME] [--seed N] [--iters K] \
                     [--out FILE] [--tiers LIST] [--lookups N] [--trace FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json")
    });

    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    info!("perfsnap: paper_world({scale}, {seed}), 1 vs {max_threads} threads, best of {iters}");

    // Trace overhead first, against a scratch sink — the user's sidecar (if
    // any) must not open until this sink has been torn down.
    let trace_overhead = measure_trace_overhead(seed, iters);
    info!(
        "trace overhead: {:+.2}% ({:+.3} ms) of untraced analyze at s005",
        trace_overhead.pct, trace_overhead.delta_ms
    );
    if let Some(path) = &trace {
        dynaddr_bench::init_trace_or_exit(path);
    }

    let world = paper_world(scale, seed);
    let sim_out = simulate(&world);
    let snaps = paper_route_tables(&world);

    // Warm-up: one untimed full pass so both thread columns measure
    // against the same steady-state allocator. Without it the second
    // column inherits a heap the first column grew, which skews every
    // millisecond-scale stage toward "regression". The span marks it (and
    // everything inside) `warmup: true` in the trace sidecar so readers
    // never mistake it for a measured iteration.
    {
        let _warm = span("warmup").warmup();
        std::hint::black_box(simulate_instrumented(&world, None));
        std::hint::black_box(analyze(
            &sim_out.dataset,
            &snaps,
            &dynaddr_core::pipeline::AnalysisConfig::default(),
        ));
        std::hint::black_box(sim_out.dataset.to_jsonl());
        std::hint::black_box(sim_out.dataset.to_store_bytes());
    }

    let (one, sim_shards, sim_queue) = run_all(&world, &sim_out, &snaps, 1, iters);
    // Executor telemetry is scoped to the max-thread column alone.
    dynaddr_exec::reset_exec_stats();
    let (many, _, _) = run_all(&world, &sim_out, &snaps, max_threads, iters);
    let es = dynaddr_exec::exec_stats();
    let exec_stats = ExecSnapshot {
        workers: max_threads,
        regions: es.regions,
        sequential_regions: es.sequential_regions,
        tasks: es.tasks,
        tasks_per_worker: es.tasks_per_worker.clone(),
        queue_wait_ms: es.queue_wait_ms(),
        utilization: es.utilization(),
    };
    dynaddr_exec::set_threads(None);

    let jsonl = sim_out.dataset.to_jsonl();
    let jsonl_bytes = jsonl.meta.len()
        + jsonl.connections.len()
        + jsonl.kroot.len()
        + jsonl.uptime.len();
    let store_bytes = sim_out.dataset.to_store_bytes().len();
    let dataset_bytes = DiskSizes {
        jsonl_bytes,
        store_bytes,
        store_over_jsonl: if jsonl_bytes > 0 {
            store_bytes as f64 / jsonl_bytes as f64
        } else {
            0.0
        },
    };

    let stages = one
        .into_iter()
        .zip(many)
        .map(|((stage, ms1), (_, msn))| StageTiming {
            stage,
            threads_1: 1,
            threads_max: max_threads,
            ms_threads_1: ms1,
            ms_threads_max: msn,
            speedup: if msn > 0.0 { ms1 / msn } else { 0.0 },
        })
        .collect();

    // The query-serving benchmark: cache-cold engine per thread count over
    // this snapshot's own dataset and truth.
    let query = run_query_bench(&sim_out, &snaps, seed, lookups, max_threads);

    // The live-ingestion benchmark: replay this snapshot's dataset through
    // the daemon's incremental machines under concurrent point queries.
    let ingest = run_ingest_bench(&sim_out, &snaps);

    // The streamed scale ladder: one child process per tier so each
    // peak-RSS number is that tier's alone.
    let exe = std::env::current_exe().expect("current exe");
    let mut tiers = Vec::new();
    for name in &ladder {
        info!("tier {name} (streamed, isolated process)...");
        let child = std::process::Command::new(&exe)
            .args(["--tier-child", name, &seed.to_string()])
            .output()
            .expect("spawn tier child");
        if !child.status.success() {
            error!("tier {name} failed:\n{}", String::from_utf8_lossy(&child.stderr));
            continue;
        }
        let stdout = String::from_utf8_lossy(&child.stdout);
        let res: TierResult =
            serde_json::from_str(stdout.trim()).expect("tier child prints a TierResult");
        info!(
            "tier {name}: {} probes, {:.0} probes/s, peak rss {:.1} MiB",
            res.probes,
            res.probes_per_sec,
            res.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
        tiers.push(res);
    }

    let snap = Snapshot {
        scale,
        tier,
        seed,
        iters,
        max_threads,
        sim_shards,
        sim_queue,
        dataset_bytes,
        peak_rss_bytes: peak_rss_bytes(),
        exec_stats,
        trace_overhead_pct: trace_overhead.pct,
        stages,
        query,
        ingest,
        tiers,
    };
    let json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write snapshot");
    println!("{json}");
    info!("wrote {}", out.display());
    dynaddr_bench::emit_exec_stats_event();
    dynaddr_obs::flush_trace();
    dynaddr_obs::disable_trace();

    // Budget and correctness gates run after the snapshot is on disk, so a
    // failed gate still leaves the measurement recorded. The 10 ms floor
    // keeps scheduler jitter on sub-millisecond stages from flaking CI.
    if trace_overhead.pct > 2.0 && trace_overhead.delta_ms > 10.0 {
        error!(
            "tracing overhead {:.2}% ({:.1} ms) exceeds the 2% budget",
            trace_overhead.pct, trace_overhead.delta_ms
        );
        std::process::exit(1);
    }
    if let Some(first) = snap.query.first() {
        if let Some(bad) = snap.query.iter().find(|q| q.digest != first.digest) {
            error!(
                "query responses diverged: digest {} at {} threads vs {} at {} threads",
                bad.digest, bad.threads, first.digest, first.threads
            );
            std::process::exit(1);
        }
        let ambient = snap.query.last().expect("non-empty");
        if ambient.cache_hit_rate < 0.80 {
            error!(
                "query cache hit rate {:.1}% at {} threads is below the 80% budget",
                ambient.cache_hit_rate * 100.0,
                ambient.threads
            );
            std::process::exit(1);
        }
    }
    if !snap.ingest.sealed_matches_batch {
        error!("daemon replay sealed report diverges from the batch analyzer's");
        std::process::exit(1);
    }
}

/// Replays the snapshot's dataset through an in-process
/// [`dynaddr_daemon::Daemon`] at max rate while one client thread hammers
/// rolling `DaemonSnapshot` point queries, then seals and diffs the
/// report against the batch analyzer's. The query loop shares the
/// daemon's state lock with the ingest path, so the latency quantiles
/// measure exactly what a socket client would see mid-replay (minus wire
/// framing).
fn run_ingest_bench(sim_out: &SimOutput, snaps: &MonthlySnapshots) -> IngestStage {
    use dynaddr_daemon::{Daemon, Rate};
    use std::sync::atomic::{AtomicBool, Ordering};

    let cfg = AnalysisConfig::default();
    let batch = dynaddr_core::report::render_full(
        &analyze(&sim_out.dataset, snaps, &cfg),
        &cfg.as_names,
    );
    let daemon = Daemon::new(snaps.clone(), cfg);
    let done = AtomicBool::new(false);

    let mut latency = dynaddr_obs::Histogram::default();
    let mut point_queries = 0u64;
    let mut replay_s = 0.0f64;
    std::thread::scope(|scope| {
        let client = scope.spawn(|| {
            let mut hist = dynaddr_obs::Histogram::default();
            let mut n = 0u64;
            while !done.load(Ordering::Acquire) {
                let q0 = Instant::now();
                std::hint::black_box(daemon.snapshot_reply());
                hist.record(q0.elapsed().as_nanos() as u64);
                n += 1;
            }
            (hist, n)
        });
        let t0 = Instant::now();
        daemon.replay(&sim_out.dataset, Rate::Max);
        replay_s = t0.elapsed().as_secs_f64();
        done.store(true, Ordering::Release);
        let (hist, n) = client.join().expect("point-query thread panicked");
        latency = hist;
        point_queries = n;
    });

    let sealed = daemon.seal_text();
    let counts = daemon.ingest_reply();
    let rows = counts.meta_rows + counts.rows_ingested;
    let stage = IngestStage {
        rows,
        replay_s,
        replay_rows_per_sec: if replay_s > 0.0 { rows as f64 / replay_s } else { 0.0 },
        point_queries,
        point_p50_ns: latency.quantile(0.5),
        point_p99_ns: latency.quantile(0.99),
        sealed_matches_batch: sealed == batch,
    };
    info!(
        "ingest: {} rows in {:.3} s ({:.0} rows/s), {} point queries, \
         p50 {} ns, p99 {} ns, sealed matches batch: {}",
        stage.rows,
        stage.replay_s,
        stage.replay_rows_per_sec,
        stage.point_queries,
        stage.point_p50_ns,
        stage.point_p99_ns,
        stage.sealed_matches_batch
    );
    stage
}

/// Drives `lookups` seeded workload requests through a cache-cold
/// [`dynaddr_query::QueryEngine`] at each thread count (1, 2, ambient —
/// deduplicated). Worker `k` of `t` answers indices `i % t == k`, so
/// every run replays the identical request sequence; responses fold into
/// an order-independent digest for the cross-thread-count identity gate.
fn run_query_bench(
    sim_out: &SimOutput,
    snaps: &MonthlySnapshots,
    seed: u64,
    lookups: u64,
    max_threads: usize,
) -> Vec<QueryStage> {
    use dynaddr_query::workload::splitmix64;
    use dynaddr_query::{proto, EngineOptions, QueryEngine, Workload};

    fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    let store_bytes = sim_out.dataset.to_store_bytes();
    let mut counts = vec![1usize, 2, max_threads];
    counts.sort_unstable();
    counts.dedup();

    let mut out = Vec::new();
    for threads in counts {
        // Fresh engine per run: the cache starts cold and the hit rate
        // measures this run's warming alone.
        let engine = QueryEngine::from_parts(
            store_bytes.clone(),
            snaps,
            Some(&sim_out.truth),
            &EngineOptions::default(),
        )
        .expect("engine opens over the snapshot dataset");
        let stats = engine.stats();
        let workload = Workload::new(
            seed,
            stats.probes(),
            stats.asns(),
            stats.countries(),
            engine.truth_available(),
        );

        let t0 = Instant::now();
        let mut digest = 0u64;
        let mut latency = dynaddr_obs::Histogram::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let engine = &engine;
                    let workload = &workload;
                    scope.spawn(move || {
                        let mut digest = 0u64;
                        let mut hist = dynaddr_obs::Histogram::default();
                        for i in (worker as u64..lookups).step_by(threads) {
                            let req = workload.request(i);
                            let q0 = Instant::now();
                            let resp = engine.query(&req);
                            hist.record(q0.elapsed().as_micros() as u64);
                            let bytes = proto::to_bytes(&resp);
                            digest ^= splitmix64(fnv1a64(&bytes) ^ i);
                        }
                        (digest, hist)
                    })
                })
                .collect();
            for h in handles {
                let (d, hist) = h.join().expect("query worker panicked");
                digest ^= d;
                latency.merge(&hist);
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let cache = engine.cache_stats();
        engine.publish_metrics();
        dynaddr_obs::hist_merge("query.latency_us", &latency);
        let stage = QueryStage {
            threads,
            lookups,
            lookups_per_sec: if wall_s > 0.0 { lookups as f64 / wall_s } else { 0.0 },
            cache_hit_rate: cache.hit_rate(),
            latency_p50_us: latency.quantile(0.5),
            latency_p99_us: latency.quantile(0.99),
            digest: format!("{digest:016x}"),
        };
        info!(
            "query @{} threads: {:.0} lookups/s, hit rate {:.1}%, p50 {} µs, p99 {} µs",
            stage.threads,
            stage.lookups_per_sec,
            stage.cache_hit_rate * 100.0,
            stage.latency_p50_us,
            stage.latency_p99_us
        );
        out.push(stage);
    }
    out
}

/// Result of the traced-vs-untraced comparison.
struct TraceOverhead {
    /// (traced − untraced) / untraced, percent. Negative means noise.
    pct: f64,
    /// Traced − untraced best wall time, milliseconds.
    delta_ms: f64,
}

/// Measure what tracing costs: best-of-K `analyze` runs at the s005 scale,
/// traced and untraced iterations interleaved so allocator growth and
/// frequency drift hit both columns alike. The traced column streams to a
/// scratch sidecar that is deleted afterwards; spans buffered during the
/// measurement are marked warm-up so a later `--trace` flush labels them.
fn measure_trace_overhead(seed: u64, iters: usize) -> TraceOverhead {
    let world = paper_world(0.05, seed);
    let sim_out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let cfg = AnalysisConfig::default();
    let scratch = std::env::temp_dir()
        .join(format!("dynaddr-perfsnap-overhead-{}.jsonl", std::process::id()));
    let _warm = span("trace_overhead").warmup();
    // Untimed first pass: both columns start from the same warm heap.
    std::hint::black_box(analyze(&sim_out.dataset, &snaps, &cfg));
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters.max(3) {
        let t0 = Instant::now();
        std::hint::black_box(analyze(&sim_out.dataset, &snaps, &cfg));
        best_off = best_off.min(t0.elapsed().as_secs_f64() * 1e3);

        dynaddr_bench::init_trace_or_exit(&scratch);
        let t1 = Instant::now();
        std::hint::black_box(analyze(&sim_out.dataset, &snaps, &cfg));
        let on = t1.elapsed().as_secs_f64() * 1e3;
        // Close without flushing: buffered spans stay for the real run's
        // sidecar; the scratch file only sees streamed events.
        dynaddr_obs::disable_trace();
        best_on = best_on.min(on);
    }
    let _ = std::fs::remove_file(&scratch);
    let delta_ms = best_on - best_off;
    TraceOverhead {
        pct: if best_off > 0.0 { delta_ms / best_off * 100.0 } else { 0.0 },
        delta_ms,
    }
}

/// Best-of-`iters` wall time in milliseconds for every stage at `threads`,
/// plus the simulator's shard count and queue telemetry.
fn run_all(
    world: &dynaddr_atlas::config::WorldConfig,
    sim_out: &SimOutput,
    snaps: &MonthlySnapshots,
    threads: usize,
    iters: usize,
) -> (Vec<(&'static str, f64)>, usize, QueueSnapshot) {
    dynaddr_exec::set_threads(Some(threads));
    let dataset = &sim_out.dataset;
    let probes = filter_probes(dataset, snaps).probes;
    let cfg = dynaddr_core::pipeline::AnalysisConfig::default();
    let mut results = Vec::new();

    // The simulate stage reports its total plus the instrumented sub-stage
    // breakdown (world build vs event loop vs filler vs normalize), each
    // best-of-iters.
    let mut sim_shards = 0usize;
    let mut sim_queue = QueueSnapshot {
        pushes: 0,
        pops: 0,
        max_queue_len: 0,
        overflow_hits: 0,
        resizes: 0,
        shard_balance: 1.0,
        occupancy_p50: 0,
        occupancy_p99: 0,
    };
    {
        let mut best_total = f64::INFINITY;
        let (mut best_build, mut best_ev, mut best_fill, mut best_norm) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..iters {
            let t0 = Instant::now();
            let (out, stats) = simulate_instrumented(world, None);
            let total = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(out);
            best_total = best_total.min(total);
            best_build = best_build.min(stats.world_build_s * 1e3);
            best_ev = best_ev.min(stats.event_loop_s * 1e3);
            best_fill = best_fill.min(stats.filler_s * 1e3);
            best_norm = best_norm.min(stats.normalize_s * 1e3);
            sim_shards = stats.shards;
            sim_queue = QueueSnapshot {
                pushes: stats.queue.pushes,
                pops: stats.queue.pops,
                max_queue_len: stats.queue.max_queue_len,
                overflow_hits: stats.queue.overflow_hits,
                resizes: stats.queue.resizes,
                shard_balance: stats.shard_balance(),
                occupancy_p50: stats.queue.occupancy.quantile(0.5),
                occupancy_p99: stats.queue.occupancy.quantile(0.99),
            };
        }
        results.push(("simulate", best_total));
        results.push(("world_build", best_build));
        results.push(("sim_event_loop", best_ev));
        results.push(("sim_filler", best_fill));
        results.push(("sim_normalize", best_norm));
    }

    // Each iteration is a span: the best-of wall time feeds the snapshot,
    // and every iteration lands in the trace sidecar individually.
    let mut time = |stage: &'static str, f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let sp = span(stage);
            f();
            best = best.min(sp.finish_secs() * 1e3);
        }
        results.push((stage, best));
    };

    time("filter_probes", &mut || {
        std::hint::black_box(filter_probes(dataset, snaps));
    });
    time("table5", &mut || {
        std::hint::black_box(table5(&probes, &BTreeMap::new(), &PeriodicConfig::default()));
    });
    time("continent_distributions", &mut || {
        std::hint::black_box(continent_distributions(&probes));
    });
    time("outage_analysis", &mut || {
        std::hint::black_box(outage_analysis(dataset, &probes));
    });
    time("prefix_changes", &mut || {
        std::hint::black_box(prefix_changes(&probes, snaps));
    });
    time("analyze", &mut || {
        std::hint::black_box(analyze(dataset, snaps, &cfg));
    });

    // Serialization stages: the legacy JSONL path against the columnar
    // store. Both decode stages include normalize() — each is the full
    // bytes-to-usable-dataset cost.
    let jsonl = dataset.to_jsonl();
    let store = dataset.to_store_bytes();
    time("jsonl_encode", &mut || {
        std::hint::black_box(dataset.to_jsonl());
    });
    time("jsonl_parse", &mut || {
        std::hint::black_box(
            dynaddr_atlas::AtlasDataset::from_jsonl(&jsonl).expect("jsonl round-trips"),
        );
    });
    time("store_encode", &mut || {
        std::hint::black_box(dataset.to_store_bytes());
    });
    time("store_decode", &mut || {
        std::hint::black_box(
            dynaddr_atlas::AtlasDataset::from_store_bytes(&store).expect("store round-trips"),
        );
    });
    (results, sim_shards, sim_queue)
}
