//! `analyze` — run the paper's full pipeline over a dataset directory.
//!
//! Usage:
//!   analyze --data DIR [--report FILE] [--json FILE] [--threads N]
//!
//! DIR must contain the four `.jsonl` log files and an `ip2as/` snapshot
//! directory (the layout the `simulate` binary writes; real scraped data in
//! the same schemas works identically). Prints the full text report to
//! stdout; `--report` also writes it to a file, `--json` dumps the
//! structured `AnalysisReport`.

use dynaddr_atlas::logs::AtlasDataset;
use dynaddr_core::pipeline::{analyze, AnalysisConfig};
use dynaddr_core::report::render_full;
use dynaddr_ip2as::MonthlySnapshots;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let mut data: Option<PathBuf> = None;
    let mut report_file: Option<PathBuf> = None;
    let mut json_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--data" => data = Some(PathBuf::from(args.next().expect("--data dir"))),
            "--report" => report_file = Some(PathBuf::from(args.next().expect("--report file"))),
            "--json" => json_file = Some(PathBuf::from(args.next().expect("--json file"))),
            // Overrides the DYNADDR_THREADS environment variable.
            "--threads" => dynaddr_exec::set_threads(Some(
                args.next().expect("--threads value").parse().expect("numeric"),
            )),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: analyze --data DIR [--report FILE] [--json FILE] [--threads N]");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = data else {
        eprintln!("usage: analyze --data DIR [--report FILE] [--json FILE] [--threads N]");
        std::process::exit(2);
    };

    eprintln!("loading dataset from {}...", dir.display());
    let dataset = AtlasDataset::load_dir(&dir).unwrap_or_else(|e| {
        eprintln!("failed to load dataset: {e}");
        std::process::exit(1);
    });
    let snaps = MonthlySnapshots::load_dir(&dir.join("ip2as")).unwrap_or_else(|e| {
        eprintln!("failed to load ip2as snapshots: {e}");
        std::process::exit(1);
    });
    let mut cfg = AnalysisConfig::default();
    if let Ok(names) = std::fs::read_to_string(dir.join("names.json")) {
        if let Ok(parsed) = serde_json::from_str::<BTreeMap<u32, String>>(&names) {
            cfg.as_names = parsed;
        }
    }

    eprintln!(
        "analyzing {} probes / {} connection entries...",
        dataset.meta.len(),
        dataset.connections.len()
    );
    let report = analyze(&dataset, &snaps, &cfg);
    let text = render_full(&report, &cfg.as_names);
    println!("{text}");
    if let Some(path) = report_file {
        std::fs::write(&path, &text).expect("write report");
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = json_file {
        std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializes"))
            .expect("write json");
        eprintln!("wrote {}", path.display());
    }
}
