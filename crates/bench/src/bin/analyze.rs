//! `analyze` — run the paper's full pipeline over a dataset directory.
//!
//! Usage:
//!   analyze --data DIR [--report FILE] [--json FILE] [--threads N]
//!           [--format store|jsonl] [--recover] [--streamed]
//!           [--trace FILE]
//!   analyze --tier NAME [--seed N] [--streamed] [--trace FILE] [...]
//!
//! DIR must contain the dataset (a `dataset.store` file or the legacy four
//! `.jsonl` log files — auto-detected by magic bytes, or forced with
//! `--format`) and an `ip2as/` snapshot directory (the layout the
//! `simulate` binary writes; real scraped data in the same schemas works
//! identically). `--recover` loads a damaged store file by skipping corrupt
//! segments instead of aborting, reporting what was dropped on stderr.
//! Prints the full text report to stdout; `--report` also writes it to a
//! file, `--json` dumps the structured `AnalysisReport`.
//!
//! `--streamed` runs the out-of-core pipeline straight off the
//! `dataset.store` file (store format only): batches of whole probes are
//! decoded, classified, and dropped, so peak memory stays near the
//! retained analyzable probes instead of the dataset. The report is
//! byte-identical to the materialized path's. Either way the process's
//! peak RSS is printed to stderr on exit (`peak_rss_bytes: N`) so CI can
//! assert a memory ceiling.
//!
//! `--tier NAME` (s005|s02|paper|10x|100x) is self-contained: instead of
//! reading `--data`, it simulates the named tier in-process (seeded by
//! `--seed`, default 11) into a scratch store file and analyzes that —
//! the one-command way to drive the full pipeline at any rung.
//!
//! `--trace FILE` writes a JSONL observability sidecar (spans, metrics,
//! heartbeats, executor stats). Tracing is strictly off the output path:
//! the report bytes are identical with and without it. `DYNADDR_LOG`
//! (error|warn|info|debug) sets the stderr log level.

use dynaddr_atlas::logs::{AtlasDataset, StoreFormat};
use dynaddr_atlas::sim::{simulate_to_store, SimOptions};
use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_core::pipeline::{analyze, analyze_streamed, AnalysisConfig, AnalysisReport};
use dynaddr_core::report::render_full;
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_obs::{error, info, warn};
use std::collections::BTreeMap;
use std::path::PathBuf;

const USAGE: &str = "usage: analyze --data DIR [--report FILE] [--json FILE] [--threads N] \
                     [--format store|jsonl] [--recover] [--streamed] [--trace FILE]\n\
       analyze --tier NAME [--seed N] [--streamed] [--trace FILE] [...]";

fn main() {
    let mut data: Option<PathBuf> = None;
    let mut tier: Option<String> = None;
    let mut seed: u64 = 11;
    let mut report_file: Option<PathBuf> = None;
    let mut json_file: Option<PathBuf> = None;
    let mut format: Option<StoreFormat> = None;
    let mut recover = false;
    let mut streamed = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--data" => data = Some(PathBuf::from(args.next().expect("--data dir"))),
            "--tier" => tier = Some(args.next().expect("--tier name")),
            "--seed" => seed = args.next().expect("--seed value").parse().expect("numeric"),
            "--streamed" => streamed = true,
            "--report" => report_file = Some(PathBuf::from(args.next().expect("--report file"))),
            "--json" => json_file = Some(PathBuf::from(args.next().expect("--json file"))),
            "--trace" => {
                dynaddr_bench::init_trace_or_exit(&PathBuf::from(args.next().expect("--trace file")));
            }
            "--format" => {
                let v = args.next().expect("--format value");
                format = Some(StoreFormat::parse(&v).unwrap_or_else(|| {
                    error!("unknown format {v:?} (want store or jsonl)");
                    std::process::exit(2);
                }));
            }
            "--recover" => recover = true,
            // Overrides the DYNADDR_THREADS environment variable.
            "--threads" => dynaddr_exec::set_threads(Some(
                args.next().expect("--threads value").parse().expect("numeric"),
            )),
            other => {
                error!("unknown argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    // --tier simulates its own dataset; --data reads one. Exactly one.
    let (report, as_names): (AnalysisReport, BTreeMap<u32, String>) = match (tier, data) {
        (Some(_), Some(_)) => {
            error!("--tier and --data are mutually exclusive");
            std::process::exit(2);
        }
        (None, None) => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        (Some(name), None) => run_tier(&name, seed, streamed, recover, format),
        (None, Some(dir)) => run_data_dir(&dir, streamed, recover, format),
    };

    let text = render_full(&report, &as_names);
    println!("{text}");
    if let Some(path) = report_file {
        std::fs::write(&path, &text).expect("write report");
        info!("wrote {}", path.display());
    }
    if let Some(path) = json_file {
        std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializes"))
            .expect("write json");
        info!("wrote {}", path.display());
    }
    dynaddr_bench::emit_exec_stats_event();
    dynaddr_obs::flush_trace();
    dynaddr_obs::disable_trace();
    // Machine-readable memory footprint (CI asserts a ceiling on it).
    // Raw eprintln on purpose: ci.sh greps this exact line.
    eprintln!("peak_rss_bytes: {}", dynaddr_bench::peak_rss_bytes());
}

/// Self-contained tier mode: simulate the named tier to a scratch store
/// file, then analyze it (streamed or materialized).
fn run_tier(
    name: &str,
    seed: u64,
    streamed: bool,
    recover: bool,
    format: Option<StoreFormat>,
) -> (AnalysisReport, BTreeMap<u32, String>) {
    if recover || format.is_some() {
        error!("--tier simulates a fresh store file (no --recover/--format)");
        std::process::exit(2);
    }
    let Some(scale) = dynaddr_bench::tier_scale(name) else {
        error!(
            "unknown tier {name:?} (want {})",
            dynaddr_bench::TIER_NAMES.join("|")
        );
        std::process::exit(2);
    };
    let world = paper_world(scale, seed);
    let snaps = paper_route_tables(&world);
    let dir = std::env::temp_dir().join(format!(
        "dynaddr-analyze-tier-{}-{}",
        name,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let store_path = dir.join("dataset.store");
    info!("simulating tier {name} (scale {scale}, seed {seed}) to {}...", store_path.display());
    let (truth, _stats) =
        simulate_to_store(&world, &SimOptions::default(), &store_path).unwrap_or_else(|e| {
            error!("tier simulation failed: {e}");
            std::process::exit(1);
        });
    let mut cfg =
        AnalysisConfig { fig3_min_years: 3.0 * scale.min(1.0), ..AnalysisConfig::default() };
    cfg.as_names =
        truth.isp_policies.iter().map(|(asn, p)| (*asn, p.name.clone())).collect();
    let report = if streamed {
        info!("streaming {}...", store_path.display());
        analyze_streamed(&store_path, &snaps, &cfg).unwrap_or_else(|e| {
            error!("streamed analyze failed: {e}");
            std::process::exit(1);
        })
    } else {
        let dataset = AtlasDataset::load_dir(&dir).unwrap_or_else(|e| {
            error!("failed to load tier dataset: {e}");
            std::process::exit(1);
        });
        info!(
            "analyzing {} probes / {} connection entries...",
            dataset.meta.len(),
            dataset.connections.len()
        );
        analyze(&dataset, &snaps, &cfg)
    };
    let _ = std::fs::remove_dir_all(&dir);
    (report, cfg.as_names)
}

/// Classic mode: load the dataset and snapshots from a directory.
fn run_data_dir(
    dir: &PathBuf,
    streamed: bool,
    recover: bool,
    format: Option<StoreFormat>,
) -> (AnalysisReport, BTreeMap<u32, String>) {
    let snaps = MonthlySnapshots::load_dir(&dir.join("ip2as")).unwrap_or_else(|e| {
        error!("failed to load ip2as snapshots: {e}");
        std::process::exit(1);
    });
    let mut cfg = AnalysisConfig::default();
    if let Ok(names) = std::fs::read_to_string(dir.join("names.json")) {
        match serde_json::from_str::<BTreeMap<u32, String>>(&names) {
            Ok(parsed) => cfg.as_names = parsed,
            // A missing names file is normal; a present-but-broken one
            // deserves a warning instead of silently unnamed ASNs.
            Err(e) => warn!(
                "ignoring unparseable {}: {e}",
                dir.join("names.json").display()
            ),
        }
    }

    if streamed {
        // Out-of-core: batches stream off dataset.store, the dataset is
        // never materialized. Recovery and jsonl loading need the batch
        // loader — reject the combination instead of quietly ignoring it.
        if recover || matches!(format, Some(StoreFormat::Jsonl)) {
            error!("--streamed reads a dataset.store file only (no --recover/--format jsonl)");
            std::process::exit(2);
        }
        let store_path = dir.join("dataset.store");
        info!("streaming {}...", store_path.display());
        let report = analyze_streamed(&store_path, &snaps, &cfg).unwrap_or_else(|e| {
            error!("streamed analyze failed: {e}");
            std::process::exit(1);
        });
        (report, cfg.as_names)
    } else {
        info!("loading dataset from {}...", dir.display());
        let load_result = match (format, recover) {
            (Some(f), false) => AtlasDataset::load_dir_as(dir, f),
            (None, false) => AtlasDataset::load_dir(dir),
            (_, true) => AtlasDataset::load_dir_recover(dir).map(|(ds, report)| {
                if !report.is_clean() {
                    warn!("recover: {report}");
                }
                ds
            }),
        };
        let dataset = load_result.unwrap_or_else(|e| {
            error!("failed to load dataset: {e}");
            std::process::exit(1);
        });
        info!(
            "analyzing {} probes / {} connection entries...",
            dataset.meta.len(),
            dataset.connections.len()
        );
        let report = analyze(&dataset, &snaps, &cfg);
        (report, cfg.as_names)
    }
}
