//! `analyze` — run the paper's full pipeline over a dataset directory.
//!
//! Usage:
//!   analyze --data DIR [--report FILE] [--json FILE] [--threads N]
//!           [--format store|jsonl] [--recover] [--streamed]
//!
//! DIR must contain the dataset (a `dataset.store` file or the legacy four
//! `.jsonl` log files — auto-detected by magic bytes, or forced with
//! `--format`) and an `ip2as/` snapshot directory (the layout the
//! `simulate` binary writes; real scraped data in the same schemas works
//! identically). `--recover` loads a damaged store file by skipping corrupt
//! segments instead of aborting, reporting what was dropped on stderr.
//! Prints the full text report to stdout; `--report` also writes it to a
//! file, `--json` dumps the structured `AnalysisReport`.
//!
//! `--streamed` runs the out-of-core pipeline straight off the
//! `dataset.store` file (store format only): batches of whole probes are
//! decoded, classified, and dropped, so peak memory stays near the
//! retained analyzable probes instead of the dataset. The report is
//! byte-identical to the materialized path's. Either way the process's
//! peak RSS is printed to stderr on exit (`peak_rss_bytes: N`) so CI can
//! assert a memory ceiling.

use dynaddr_atlas::logs::{AtlasDataset, StoreFormat};
use dynaddr_core::pipeline::{analyze, analyze_streamed, AnalysisConfig, AnalysisReport};
use dynaddr_core::report::render_full;
use dynaddr_ip2as::MonthlySnapshots;
use std::collections::BTreeMap;
use std::path::PathBuf;

const USAGE: &str = "usage: analyze --data DIR [--report FILE] [--json FILE] [--threads N] \
                     [--format store|jsonl] [--recover] [--streamed]";

fn main() {
    let mut data: Option<PathBuf> = None;
    let mut report_file: Option<PathBuf> = None;
    let mut json_file: Option<PathBuf> = None;
    let mut format: Option<StoreFormat> = None;
    let mut recover = false;
    let mut streamed = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--data" => data = Some(PathBuf::from(args.next().expect("--data dir"))),
            "--streamed" => streamed = true,
            "--report" => report_file = Some(PathBuf::from(args.next().expect("--report file"))),
            "--json" => json_file = Some(PathBuf::from(args.next().expect("--json file"))),
            "--format" => {
                let v = args.next().expect("--format value");
                format = Some(StoreFormat::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown format {v:?} (want store or jsonl)");
                    std::process::exit(2);
                }));
            }
            "--recover" => recover = true,
            // Overrides the DYNADDR_THREADS environment variable.
            "--threads" => dynaddr_exec::set_threads(Some(
                args.next().expect("--threads value").parse().expect("numeric"),
            )),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = data else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let snaps = MonthlySnapshots::load_dir(&dir.join("ip2as")).unwrap_or_else(|e| {
        eprintln!("failed to load ip2as snapshots: {e}");
        std::process::exit(1);
    });
    let mut cfg = AnalysisConfig::default();
    if let Ok(names) = std::fs::read_to_string(dir.join("names.json")) {
        match serde_json::from_str::<BTreeMap<u32, String>>(&names) {
            Ok(parsed) => cfg.as_names = parsed,
            // A missing names file is normal; a present-but-broken one
            // deserves a warning instead of silently unnamed ASNs.
            Err(e) => eprintln!(
                "warning: ignoring unparseable {}: {e}",
                dir.join("names.json").display()
            ),
        }
    }

    let report: AnalysisReport = if streamed {
        // Out-of-core: batches stream off dataset.store, the dataset is
        // never materialized. Recovery and jsonl loading need the batch
        // loader — reject the combination instead of quietly ignoring it.
        if recover || matches!(format, Some(StoreFormat::Jsonl)) {
            eprintln!("--streamed reads a dataset.store file only (no --recover/--format jsonl)");
            std::process::exit(2);
        }
        let store_path = dir.join("dataset.store");
        eprintln!("streaming {}...", store_path.display());
        analyze_streamed(&store_path, &snaps, &cfg).unwrap_or_else(|e| {
            eprintln!("streamed analyze failed: {e}");
            std::process::exit(1);
        })
    } else {
        eprintln!("loading dataset from {}...", dir.display());
        let load_result = match (format, recover) {
            (Some(f), false) => AtlasDataset::load_dir_as(&dir, f),
            (None, false) => AtlasDataset::load_dir(&dir),
            (_, true) => AtlasDataset::load_dir_recover(&dir).map(|(ds, report)| {
                if !report.is_clean() {
                    eprintln!("recover: {report}");
                }
                ds
            }),
        };
        let dataset = load_result.unwrap_or_else(|e| {
            eprintln!("failed to load dataset: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "analyzing {} probes / {} connection entries...",
            dataset.meta.len(),
            dataset.connections.len()
        );
        analyze(&dataset, &snaps, &cfg)
    };
    let text = render_full(&report, &cfg.as_names);
    println!("{text}");
    if let Some(path) = report_file {
        std::fs::write(&path, &text).expect("write report");
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = json_file {
        std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializes"))
            .expect("write json");
        eprintln!("wrote {}", path.display());
    }
    // Machine-readable memory footprint (CI asserts a ceiling on it).
    eprintln!("peak_rss_bytes: {}", dynaddr_bench::peak_rss_bytes());
}
