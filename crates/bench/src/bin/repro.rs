//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!   repro [--scale S] [--seed N] [--out DIR] [--threads N]
//!         [all|table2|fig1|fig2|fig3|table5|fig4|fig5|fig6|fig7|fig8|
//!          table6|fig9|table7|table1|truth]
//!
//! Prints the selected experiment (default: all) to stdout; with `--out`,
//! also writes one text file per experiment into DIR.

use dynaddr_bench::{run_repro, Repro};
use dynaddr_core::report;
use dynaddr_obs::info;
use std::collections::BTreeMap;

fn main() {
    let mut scale = 0.25f64;
    let mut seed = 2015u64;
    let mut out_dir: Option<String> = None;
    let mut which: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale value").parse().expect("numeric scale"),
            "--seed" => seed = args.next().expect("--seed value").parse().expect("numeric seed"),
            "--out" => out_dir = Some(args.next().expect("--out dir")),
            // Overrides the DYNADDR_THREADS environment variable.
            "--threads" => dynaddr_exec::set_threads(Some(
                args.next().expect("--threads value").parse().expect("numeric"),
            )),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale S] [--seed N] [--out DIR] [--threads N] [experiments...]"
                );
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "table1", "table2", "fig1", "fig2", "fig3", "table5", "fig4", "fig5", "fig6",
            "fig7", "fig8", "table6", "fig9", "table7", "admin", "churn", "truth", "ablation-ttf",
            "ablation-firmware", "ablation-assoc",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    info!("simulating paper world at scale {scale} (seed {seed})...");
    let t0 = std::time::Instant::now();
    let repro = run_repro(scale, seed);
    info!(
        "simulated {} probes, {} connection entries, {} kroot records in {:.1?}; analyzing...",
        repro.out.dataset.meta.len(),
        repro.out.dataset.connections.len(),
        repro.out.dataset.kroot.len(),
        t0.elapsed()
    );

    let mut sections: Vec<(String, String)> = Vec::new();
    for w in &which {
        let text = render(w, &repro);
        println!("{text}");
        sections.push((w.clone(), text));
    }
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).expect("create output dir");
        for (name, text) in sections {
            std::fs::write(format!("{dir}/{name}.txt"), text).expect("write section");
        }
        info!("wrote results to {dir}/");
    }
}

fn render(which: &str, repro: &Repro) -> String {
    let r = &repro.report;
    let names = &repro.cfg.as_names;
    match which {
        "table1" => render_table1(repro),
        "table2" => report::render_table2(r),
        "fig1" => report::render_ttf_panel("Fig 1: total time fraction by continent", &r.fig1_continents),
        "fig2" => report::render_ttf_panel("Fig 2: top ASes by probes with durations", &r.fig2_top_ases),
        "fig3" => report::render_ttf_panel("Fig 3: German ASes", &r.fig3_country),
        "table5" => report::render_table5(r),
        "fig4" => r.hourly.first().map(report::render_hourly).unwrap_or_default(),
        "fig5" => r.hourly.get(1).map(report::render_hourly).unwrap_or_default(),
        "fig6" => report::render_firmware(&r.firmware),
        "fig7" => report::render_condprob("Fig 7: P(ac|network outage) per probe", &r.fig7_network),
        "fig8" => report::render_condprob("Fig 8: P(ac|power outage) per probe (v3)", &r.fig8_power),
        "table6" => report::render_table6(r),
        "fig9" => r.fig9.iter().map(report::render_fig9).collect::<Vec<_>>().join("\n"),
        "table7" => report::render_table7(r, names),
        "truth" => render_truth(repro),
        "admin" => render_admin(repro),
        "churn" => render_churn(repro),
        "ablation-ttf" => render_ablation_ttf(repro),
        "ablation-firmware" => render_ablation_firmware(repro),
        "ablation-assoc" => render_ablation_assoc(repro),
        other => format!("unknown experiment: {other}\n"),
    }
}

/// Table 1: a sample connection log — the first periodic probe's first days.
fn render_table1(repro: &Repro) -> String {
    use dynaddr_types::SimTime;
    // Pick a probe from a daily-periodic ISP (DTAG, AS 3320).
    let probe = repro
        .out
        .truth
        .changes
        .iter()
        .find(|c| matches!(c.cause, dynaddr_atlas::ChangeCause::PeriodicCap | dynaddr_atlas::ChangeCause::ScheduledReconnect))
        .map(|c| c.probe);
    let Some(probe) = probe else {
        return "Table 1: no periodic probe found".to_string();
    };
    let entries = repro.out.dataset.connections_of(probe);
    let mut rows = Vec::new();
    let mut prev_start: Option<(SimTime, String)> = None;
    for e in entries.iter().filter(|e| e.end.0 > 0).take(8) {
        let dur = match &prev_start {
            Some((start, addr)) if *addr == e.peer.to_string() => {
                format!("{:.1}", (e.end - *start).as_hours())
            }
            _ => "NA".to_string(),
        };
        let _ = dur;
        rows.push(vec![
            format!("{}", probe.0),
            format!("{}", e.start),
            format!("{}", e.end),
            e.peer.to_string(),
            format!("{:.1}", (e.end - e.start).as_hours()),
        ]);
        prev_start = Some((e.start, e.peer.to_string()));
    }
    format!(
        "Table 1: connection-log sample ({probe:?}, first 8 in-year entries; last column is connection hours)\n{}",
        dynaddr_core::report::render_table(&["ID", "Start", "End", "IP Address", "Hours"], &rows)
    )
}

/// Ground-truth validation: configured vs inferred periodic ISPs.
fn render_truth(repro: &Repro) -> String {
    let mut rows = Vec::new();
    let detected: BTreeMap<u32, i64> = repro
        .report
        .table5
        .iter()
        .filter(|row| row.asn != 0)
        .map(|row| (row.asn, row.d_hours))
        .collect();
    for (asn, policy) in &repro.out.truth.isp_policies {
        if policy.periodic_hours.is_empty() {
            continue;
        }
        let inferred = detected
            .get(asn)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            policy.name.clone(),
            asn.to_string(),
            policy
                .periodic_hours
                .iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join(","),
            inferred,
        ]);
    }
    format!(
        "Ground truth vs inference: configured periodic ISPs and the Table 5 period detected for them\n{}",
        dynaddr_core::report::render_table(&["ISP", "ASN", "configured d", "inferred d"], &rows)
    )
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------------

/// §4.1's argument: a raw CDF of durations over-represents short durations;
/// the total-time-fraction metric exposes the periodic mode.
fn render_ablation_ttf(repro: &Repro) -> String {
    use dynaddr_core::filtering::filter_probes;
    let filtered = filter_probes(&repro.out.dataset, &repro.snaps);
    let mut rows = Vec::new();
    for asn in [3320u32, 3215, 6830] {
        let mut durations = Vec::new();
        for p in filtered.probes.iter().filter(|p| !p.multi_as && p.primary_asn.0 == asn) {
            durations.extend(p.same_as_durations());
        }
        if durations.is_empty() {
            continue;
        }
        let mode = if asn == 3215 { 168.0 } else { 24.0 };
        let total_secs: i64 = durations.iter().map(|d| d.secs()).sum();
        let near: Vec<_> = durations
            .iter()
            .filter(|d| (d.as_hours() - mode).abs() <= 0.05 * mode)
            .collect();
        let raw_frac = near.len() as f64 / durations.len() as f64;
        let time_frac =
            near.iter().map(|d| d.secs()).sum::<i64>() as f64 / total_secs as f64;
        rows.push(vec![
            repro.cfg.as_names.get(&asn).cloned().unwrap_or_else(|| format!("AS{asn}")),
            format!("{mode:.0}h"),
            durations.len().to_string(),
            format!("{:.2}", raw_frac),
            format!("{:.2}", time_frac),
        ]);
    }
    format!(
        "Ablation (§4.1): raw duration-count fraction vs total-time fraction at the mode\n\
         (short outage-truncated durations inflate the raw count's denominator)\n{}",
        dynaddr_core::report::render_table(
            &["AS", "mode", "durations", "count frac", "time frac"],
            &rows
        )
    )
}

/// What the firmware spike filter buys: spurious power outages removed.
fn render_ablation_firmware(repro: &Repro) -> String {
    use dynaddr_core::assoc::OutageKind;
    use dynaddr_core::filtering::filter_probes;
    use dynaddr_core::pipeline::outage_analysis_opts;
    let filtered = filter_probes(&repro.out.dataset, &repro.snaps);
    let with = outage_analysis_opts(&repro.out.dataset, &filtered.probes, true);
    let without = outage_analysis_opts(&repro.out.dataset, &filtered.probes, false);
    let count = |oa: &dynaddr_core::pipeline::OutageAnalysis, changed: Option<bool>| {
        oa.outages
            .iter()
            .filter(|o| o.kind == OutageKind::Power)
            .filter(|o| changed.map(|c| o.address_changed == c).unwrap_or(true))
            .count()
    };
    let rows = vec![
        vec![
            "with filter".to_string(),
            with.reboots.len().to_string(),
            count(&with, None).to_string(),
            count(&with, Some(true)).to_string(),
        ],
        vec![
            "without filter".to_string(),
            without.reboots.len().to_string(),
            count(&without, None).to_string(),
            count(&without, Some(true)).to_string(),
        ],
    ];
    format!(
        "Ablation (§5.2): firmware spike filter on/off. Without it, firmware-induced\n\
         probe reboots masquerade as power outages that never change the address,\n\
         biasing P(ac|pw) downward.\n{}",
        dynaddr_core::report::render_table(
            &["variant", "reboots", "power outages", "with change"],
            &rows
        )
    )
}

/// Gap-overlap association vs a naive fixed time window around each outage.
fn render_ablation_assoc(repro: &Repro) -> String {
    use dynaddr_core::assoc::OutageKind;
    use dynaddr_core::filtering::filter_probes;
    use dynaddr_core::pipeline::outage_analysis;
    let filtered = filter_probes(&repro.out.dataset, &repro.snaps);
    let oa = outage_analysis(&repro.out.dataset, &filtered.probes);

    // Naive: an outage "caused" a change if any change of that probe falls
    // within ±2 hours of the outage start — no gap semantics.
    let mut change_times: std::collections::BTreeMap<u32, Vec<i64>> = Default::default();
    for p in &filtered.probes {
        let v = change_times.entry(p.probe().0).or_default();
        for c in &p.events.changes {
            v.push(c.gap_end.0);
        }
    }
    let window = 2 * 3600;
    let naive_changed = |probe: u32, at: i64| {
        change_times
            .get(&probe)
            .map(|v| {
                let lo = v.partition_point(|t| *t < at - window);
                v.get(lo).map(|t| *t <= at + window).unwrap_or(false)
            })
            .unwrap_or(false)
    };
    let mut rows = Vec::new();
    for kind in [OutageKind::Network, OutageKind::Power] {
        let of_kind: Vec<_> = oa.outages.iter().filter(|o| o.kind == kind).collect();
        let gap_based = of_kind.iter().filter(|o| o.address_changed).count();
        let naive = of_kind
            .iter()
            .filter(|o| naive_changed(o.probe.0, o.start.0))
            .count();
        let disagree = of_kind
            .iter()
            .filter(|o| o.address_changed != naive_changed(o.probe.0, o.start.0))
            .count();
        rows.push(vec![
            format!("{kind:?}"),
            of_kind.len().to_string(),
            gap_based.to_string(),
            naive.to_string(),
            disagree.to_string(),
        ]);
    }
    format!(
        "Ablation (§3.6): gap-overlap association vs naive ±2h window.\n\
         The naive window miscounts when periodic renumbering happens to land\n\
         near (but not in) an outage, or when reconnection delays push the\n\
         change outside the window.\n{}",
        dynaddr_core::report::render_table(
            &["kind", "outages", "gap-based changes", "naive changes", "disagree"],
            &rows
        )
    )
}

/// §8 future work: detect administrative renumbering events and attribute
/// churn; cross-check against the world's configured admin event.
fn render_admin(repro: &Repro) -> String {
    use dynaddr_core::admin::{attribute_churn, detect_admin_renumbering, AdminConfig};
    use dynaddr_core::filtering::filter_probes;
    let filtered = filter_probes(&repro.out.dataset, &repro.snaps);
    let events = detect_admin_renumbering(&filtered.probes, &repro.snaps, &AdminConfig::default());
    let att = attribute_churn(&filtered.probes, &events);
    let mut rows = Vec::new();
    for e in &events {
        rows.push(vec![
            repro
                .cfg
                .as_names
                .get(&e.asn)
                .cloned()
                .unwrap_or_else(|| format!("AS{}", e.asn)),
            format!("{}", e.start),
            e.probes.len().to_string(),
            e.new_prefixes
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    let configured = repro
        .out
        .truth
        .admin_renumbering
        .map(|(asn, when)| format!("{asn} at {when}"))
        .unwrap_or_else(|| "none".to_string());
    format!(
        "Administrative renumbering (§8 future work): detected events\n{}\n\
         configured ground truth: {configured}\n\
         churn attribution: {} of {} changes ({:.2}%) administrative\n",
        dynaddr_core::report::render_table(&["AS", "start", "probes moved", "new prefixes"], &rows),
        att.administrative,
        att.total_changes,
        100.0 * att.admin_fraction()
    )
}

/// Daily address-set churn (§8's Richter-et-al. comparison), overall and
/// decomposed by AS regime.
fn render_churn(repro: &Repro) -> String {
    use dynaddr_core::churn::{churn_by_as, churn_series};
    use dynaddr_core::filtering::filter_probes;
    let filtered = filter_probes(&repro.out.dataset, &repro.snaps);
    let overall = churn_series(&filtered.probes, None);
    let by_as = churn_by_as(&filtered.probes, 5);
    let mut rows: Vec<(f64, Vec<String>)> = by_as
        .iter()
        .map(|(asn, c)| {
            (
                *c,
                vec![
                    repro
                        .cfg
                        .as_names
                        .get(asn)
                        .cloned()
                        .unwrap_or_else(|| format!("AS{asn}")),
                    format!("{:.1}%", 100.0 * c),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let table_rows: Vec<Vec<String>> = rows.into_iter().map(|(_, r)| r).take(14).collect();
    format!(
        "Daily address-set churn (§8): mean {:.1}% of one day's active addresses are\n\
         gone the next day (Richter et al. saw ~8% at a CDN; our probe population\n\
         over-represents periodic European ISPs). Most-churning ASes:\n{}",
        100.0 * overall.mean_churn().unwrap_or(0.0),
        dynaddr_core::report::render_table(&["AS", "mean daily churn"], &table_rows)
    )
}
