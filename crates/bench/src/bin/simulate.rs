//! `simulate` — generate a RIPE-Atlas-style dataset on disk.
//!
//! Usage:
//!   simulate --out DIR [--scale S] [--seed N] [--threads N]
//!            [--format store|jsonl] [--serial-build]
//!
//! Writes into DIR:
//!   dataset.store                                             (the dataset)
//!   truth.store                                               (ground truth)
//!   ip2as/2015-MM.pfx2as                                      (12 snapshots)
//!   names.json                                                (ASN → name)
//!
//! With `--format jsonl` the dataset is written as the legacy four `.jsonl`
//! files and the truth as `truth.json` instead. The dataset directory is
//! exactly what the `analyze` binary consumes in either format — the
//! pipeline runs from the files alone, as it would on real scraped logs.

use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_atlas::{simulate_with_options, SimOptions, StoreFormat};
use std::collections::BTreeMap;
use std::path::PathBuf;

const USAGE: &str = "usage: simulate --out DIR [--scale S] [--seed N] [--threads N] \
                     [--format store|jsonl] [--serial-build]";

fn main() {
    let mut scale = 0.1f64;
    let mut seed = 2015u64;
    let mut out: Option<PathBuf> = None;
    let mut format = StoreFormat::default();
    let mut opts = SimOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale value").parse().expect("numeric"),
            "--seed" => seed = args.next().expect("--seed value").parse().expect("numeric"),
            "--out" => out = Some(PathBuf::from(args.next().expect("--out dir"))),
            "--format" => {
                let v = args.next().expect("--format value");
                format = StoreFormat::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown format {v:?} (want store or jsonl)");
                    std::process::exit(2);
                });
            }
            // Overrides the DYNADDR_THREADS environment variable.
            "--threads" => dynaddr_exec::set_threads(Some(
                args.next().expect("--threads value").parse().expect("numeric"),
            )),
            // Reference mode: materialize all shards serially before the
            // parallel map. Output must be byte-identical (CI diffs it).
            "--serial-build" => opts.serial_build = true,
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(out_dir) = out else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    eprintln!("simulating paper world at scale {scale} (seed {seed})...");
    let world = paper_world(scale, seed);
    let output = simulate_with_options(&world, &opts);
    let snaps = paper_route_tables(&world);

    output.dataset.save_dir_format(&out_dir, format).expect("write dataset");
    snaps.save_dir(&out_dir.join("ip2as")).expect("write snapshots");
    // Like save_dir_format, drop the other format's truth file so the
    // directory never holds two diverging copies.
    match format {
        StoreFormat::Store => {
            std::fs::write(out_dir.join("truth.store"), output.truth.to_store_bytes())
                .expect("write truth");
            let _ = std::fs::remove_file(out_dir.join("truth.json"));
        }
        StoreFormat::Jsonl => {
            std::fs::write(
                out_dir.join("truth.json"),
                serde_json::to_string_pretty(&output.truth).expect("truth serializes"),
            )
            .expect("write truth");
            let _ = std::fs::remove_file(out_dir.join("truth.store"));
        }
    }
    let names: BTreeMap<u32, String> = output
        .truth
        .isp_policies
        .iter()
        .map(|(asn, p)| (*asn, p.name.clone()))
        .collect();
    std::fs::write(
        out_dir.join("names.json"),
        serde_json::to_string_pretty(&names).expect("names serialize"),
    )
    .expect("write names");

    eprintln!(
        "wrote {} ({format} format): {} probes, {} connection entries, {} kroot records, {} uptime records",
        out_dir.display(),
        output.dataset.meta.len(),
        output.dataset.connections.len(),
        output.dataset.kroot.len(),
        output.dataset.uptime.len()
    );
}
