//! `simulate` — generate a RIPE-Atlas-style dataset on disk.
//!
//! Usage:
//!   simulate --out DIR [--scale S | --tier NAME] [--seed N] [--threads N]
//!            [--format store|jsonl] [--serial-build] [--streamed]
//!            [--trace FILE]
//!
//! Writes into DIR:
//!   dataset.store                                             (the dataset)
//!   truth.store                                               (ground truth)
//!   ip2as/2015-MM.pfx2as                                      (12 snapshots)
//!   names.json                                                (ASN → name)
//!
//! With `--format jsonl` the dataset is written as the legacy four `.jsonl`
//! files and the truth as `truth.json` instead. The dataset directory is
//! exactly what the `analyze` binary consumes in either format — the
//! pipeline runs from the files alone, as it would on real scraped logs.
//!
//! `--tier NAME` is sugar for the named scale (s005, s02, paper, 10x,
//! 100x). `--streamed` encodes each simulator shard's output into
//! `dataset.store` as it completes instead of materializing the dataset —
//! required above `paper` scale, byte-identical below it (CI diffs it).
//! Streamed output is store-format only.
//!
//! `--trace FILE` writes a JSONL observability sidecar (spans, metrics,
//! heartbeats, executor stats); the dataset bytes are identical with and
//! without it. `DYNADDR_LOG` (error|warn|info|debug) sets the stderr
//! log level.

use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_atlas::{simulate_to_store, simulate_with_options, SimOptions, StoreFormat};
use dynaddr_bench::tier_scale;
use dynaddr_obs::{error, info};
use dynaddr_store::{ColumnarRecord, SegmentFileReader};
use std::collections::BTreeMap;
use std::path::PathBuf;

const USAGE: &str = "usage: simulate --out DIR [--scale S | --tier NAME] [--seed N] \
                     [--threads N] [--format store|jsonl] [--serial-build] [--streamed] \
                     [--trace FILE]";

fn main() {
    let mut scale = 0.1f64;
    let mut seed = 2015u64;
    let mut out: Option<PathBuf> = None;
    let mut format = StoreFormat::default();
    let mut opts = SimOptions::default();
    let mut streamed = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().expect("--scale value").parse().expect("numeric"),
            "--tier" => {
                let name = args.next().expect("--tier name");
                scale = tier_scale(&name).unwrap_or_else(|| {
                    error!(
                        "unknown tier {name:?} (want one of {})",
                        dynaddr_bench::TIER_NAMES.join(", ")
                    );
                    std::process::exit(2);
                });
            }
            "--streamed" => streamed = true,
            "--seed" => seed = args.next().expect("--seed value").parse().expect("numeric"),
            "--out" => out = Some(PathBuf::from(args.next().expect("--out dir"))),
            "--trace" => {
                dynaddr_bench::init_trace_or_exit(&PathBuf::from(args.next().expect("--trace file")));
            }
            "--format" => {
                let v = args.next().expect("--format value");
                format = StoreFormat::parse(&v).unwrap_or_else(|| {
                    error!("unknown format {v:?} (want store or jsonl)");
                    std::process::exit(2);
                });
            }
            // Overrides the DYNADDR_THREADS environment variable.
            "--threads" => dynaddr_exec::set_threads(Some(
                args.next().expect("--threads value").parse().expect("numeric"),
            )),
            // Reference mode: materialize all shards serially before the
            // parallel map. Output must be byte-identical (CI diffs it).
            "--serial-build" => opts.serial_build = true,
            other => {
                error!("unknown argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(out_dir) = out else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    info!("simulating paper world at scale {scale} (seed {seed})...");
    let world = paper_world(scale, seed);
    let snaps = paper_route_tables(&world);

    // counts: probes, connection entries, kroot records, uptime records.
    let (truth, counts) = if streamed {
        if matches!(format, StoreFormat::Jsonl) {
            error!("--streamed writes the store format only");
            std::process::exit(2);
        }
        std::fs::create_dir_all(&out_dir).expect("create out dir");
        let store_path = out_dir.join("dataset.store");
        let (truth, _stats) =
            simulate_to_store(&world, &opts, &store_path).unwrap_or_else(|e| {
                error!("streamed simulate failed: {e}");
                std::process::exit(1);
            });
        // Match save_dir_format: never leave the other format's files
        // shadowing the one just written.
        for name in ["meta.jsonl", "connections.jsonl", "kroot.jsonl", "uptime.jsonl"] {
            let _ = std::fs::remove_file(out_dir.join(name));
        }
        // Row counts come from the footer index — the dataset itself is
        // never in memory on this path.
        let reader = SegmentFileReader::open(&store_path).expect("reopen dataset.store");
        let counts = [
            reader.table_rows(dynaddr_atlas::ProbeMeta::TABLE_ID),
            reader.table_rows(dynaddr_atlas::ConnectionLogEntry::TABLE_ID),
            reader.table_rows(dynaddr_atlas::KrootPingRecord::TABLE_ID),
            reader.table_rows(dynaddr_atlas::SosUptimeRecord::TABLE_ID),
        ];
        (truth, counts)
    } else {
        let output = simulate_with_options(&world, &opts);
        output.dataset.save_dir_format(&out_dir, format).expect("write dataset");
        let counts = [
            output.dataset.meta.len() as u64,
            output.dataset.connections.len() as u64,
            output.dataset.kroot.len() as u64,
            output.dataset.uptime.len() as u64,
        ];
        (output.truth, counts)
    };

    snaps.save_dir(&out_dir.join("ip2as")).expect("write snapshots");
    // Like save_dir_format, drop the other format's truth file so the
    // directory never holds two diverging copies.
    match format {
        StoreFormat::Store => {
            std::fs::write(out_dir.join("truth.store"), truth.to_store_bytes())
                .expect("write truth");
            let _ = std::fs::remove_file(out_dir.join("truth.json"));
        }
        StoreFormat::Jsonl => {
            std::fs::write(
                out_dir.join("truth.json"),
                serde_json::to_string_pretty(&truth).expect("truth serializes"),
            )
            .expect("write truth");
            let _ = std::fs::remove_file(out_dir.join("truth.store"));
        }
    }
    let names: BTreeMap<u32, String> = truth
        .isp_policies
        .iter()
        .map(|(asn, p)| (*asn, p.name.clone()))
        .collect();
    std::fs::write(
        out_dir.join("names.json"),
        serde_json::to_string_pretty(&names).expect("names serialize"),
    )
    .expect("write names");

    info!(
        "wrote {} ({format} format): {} probes, {} connection entries, {} kroot records, {} uptime records",
        out_dir.display(),
        counts[0],
        counts[1],
        counts[2],
        counts[3],
    );
    dynaddr_bench::emit_exec_stats_event();
    dynaddr_obs::flush_trace();
    dynaddr_obs::disable_trace();
}
