//! # dynaddr-bench
//!
//! Benchmark harness and the `repro` binary that regenerates every table
//! and figure of the paper. See `src/bin/repro.rs` and `benches/`.

#![forbid(unsafe_code)]

use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_atlas::{simulate, SimOutput};
use dynaddr_core::pipeline::{analyze, AnalysisConfig, AnalysisReport};
use dynaddr_ip2as::MonthlySnapshots;
use std::collections::BTreeMap;

/// Everything needed to reproduce the paper at one scale.
pub struct Repro {
    /// Simulator output (datasets + ground truth).
    pub out: SimOutput,
    /// Monthly IP-to-AS snapshots.
    pub snaps: MonthlySnapshots,
    /// Analysis configuration with ISP names filled in.
    pub cfg: AnalysisConfig,
    /// The analysis report.
    pub report: AnalysisReport,
}

/// Simulates the paper world at `scale` and runs the full pipeline.
pub fn run_repro(scale: f64, seed: u64) -> Repro {
    let world = paper_world(scale, seed);
    let out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let cfg = analysis_config_for(scale, &out);
    let report = analyze(&out.dataset, &snaps, &cfg);
    Repro { out, snaps, cfg, report }
}

/// The analysis configuration matched to a world scale: ISP display names
/// from ground truth, Fig. 3 time threshold scaled from the paper's 3 years.
pub fn analysis_config_for(scale: f64, out: &SimOutput) -> AnalysisConfig {
    AnalysisConfig {
        fig3_min_years: 3.0 * scale.min(1.0),
        as_names: isp_names(out),
        ..AnalysisConfig::default()
    }
}

/// ISP display names from ground truth (cosmetic only — the pipeline itself
/// never reads ground truth).
pub fn isp_names(out: &SimOutput) -> BTreeMap<u32, String> {
    out.truth
        .isp_policies
        .iter()
        .map(|(asn, p)| (*asn, p.name.clone()))
        .collect()
}
