//! # dynaddr-bench
//!
//! Benchmark harness and the `repro` binary that regenerates every table
//! and figure of the paper. See `src/bin/repro.rs` and `benches/`.

#![forbid(unsafe_code)]

use dynaddr_atlas::world::{paper_route_tables, paper_world};
use dynaddr_atlas::{simulate, SimOutput};
use dynaddr_core::pipeline::{analyze, AnalysisConfig, AnalysisReport};
use dynaddr_ip2as::MonthlySnapshots;
use std::collections::BTreeMap;

/// Everything needed to reproduce the paper at one scale.
pub struct Repro {
    /// Simulator output (datasets + ground truth).
    pub out: SimOutput,
    /// Monthly IP-to-AS snapshots.
    pub snaps: MonthlySnapshots,
    /// Analysis configuration with ISP names filled in.
    pub cfg: AnalysisConfig,
    /// The analysis report.
    pub report: AnalysisReport,
}

/// Simulates the paper world at `scale` and runs the full pipeline.
pub fn run_repro(scale: f64, seed: u64) -> Repro {
    let world = paper_world(scale, seed);
    let out = simulate(&world);
    let snaps = paper_route_tables(&world);
    let cfg = analysis_config_for(scale, &out);
    let report = analyze(&out.dataset, &snaps, &cfg);
    Repro { out, snaps, cfg, report }
}

/// The analysis configuration matched to a world scale: ISP display names
/// from ground truth, Fig. 3 time threshold scaled from the paper's 3 years.
pub fn analysis_config_for(scale: f64, out: &SimOutput) -> AnalysisConfig {
    AnalysisConfig {
        fig3_min_years: 3.0 * scale.min(1.0),
        as_names: isp_names(out),
        ..AnalysisConfig::default()
    }
}

/// ISP display names from ground truth (cosmetic only — the pipeline itself
/// never reads ground truth).
pub fn isp_names(out: &SimOutput) -> BTreeMap<u32, String> {
    out.truth
        .isp_policies
        .iter()
        .map(|(asn, p)| (*asn, p.name.clone()))
        .collect()
}

/// Every tier name, in ascending scale order. Peak-RSS measurements are
/// process-wide and monotone, so ladders either run ascending or isolate
/// each tier in its own process (perfsnap does the latter).
pub const TIER_NAMES: [&str; 5] = ["s005", "s02", "paper", "10x", "100x"];

/// World scale for a named tier (`None` for unknown names).
///
/// A *tier* is a named multiple of the paper's deployment (10,977 probes
/// at `paper`): `s005`/`s02` match the perfsnap and CI smoke scales
/// already in use, `10x`/`100x` stress the streaming pipeline up to
/// ~1.1 M probes. Binaries accept `--tier NAME` as sugar for the
/// corresponding `--scale`.
pub fn tier_scale(name: &str) -> Option<f64> {
    Some(match name {
        "s005" => 0.05,
        "s02" => 0.2,
        "paper" => 1.0,
        "10x" => 10.0,
        "100x" => 100.0,
        _ => return None,
    })
}

/// Peak resident set size of this process in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, 0 on platforms without it. The high-water
/// mark never decreases, so measure the phase of interest in a process
/// that does nothing bigger first. Delegates to `dynaddr-obs`, which also
/// samples live `VmRSS` for heartbeats.
pub fn peak_rss_bytes() -> u64 {
    dynaddr_obs::peak_rss_bytes()
}

/// Shared `--trace FILE` handling for the bench bins: installs the JSONL
/// sidecar sink, exiting with a message if the file cannot be created.
pub fn init_trace_or_exit(path: &std::path::Path) {
    if let Err(e) = dynaddr_obs::init_trace(path) {
        eprintln!("error: cannot create trace file {}: {e}", path.display());
        std::process::exit(2);
    }
}

/// Emit the executor's cumulative stats as one `exec_stats` trace event
/// (no-op when tracing is off) and log a one-line summary at debug level.
pub fn emit_exec_stats_event() {
    let s = dynaddr_exec::exec_stats();
    dynaddr_obs::debug!(
        "exec: {} regions ({} sequential), {} tasks, utilization {:.2}, queue-wait {:.3} ms",
        s.regions,
        s.sequential_regions,
        s.tasks,
        s.utilization(),
        s.queue_wait_ms()
    );
    if !dynaddr_obs::trace_enabled() {
        return;
    }
    dynaddr_obs::emit_event(
        "exec_stats",
        &[
            ("workers", dynaddr_obs::Value::U64(dynaddr_exec::current_threads() as u64)),
            ("regions", dynaddr_obs::Value::U64(s.regions)),
            ("sequential_regions", dynaddr_obs::Value::U64(s.sequential_regions)),
            ("tasks", dynaddr_obs::Value::U64(s.tasks)),
            ("tasks_per_worker", dynaddr_obs::Value::U64s(&s.tasks_per_worker)),
            ("queue_wait_ms", dynaddr_obs::Value::F64(s.queue_wait_ms())),
            ("utilization", dynaddr_obs::Value::F64(s.utilization())),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_known_and_ascending() {
        let scales: Vec<f64> = TIER_NAMES
            .iter()
            .map(|n| tier_scale(n).expect("every listed tier resolves"))
            .collect();
        assert!(scales.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(tier_scale("paper"), Some(1.0));
        assert_eq!(tier_scale("nope"), None);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // A running test binary has touched at least a page.
            assert!(rss > 0, "VmHWM should parse on Linux, got {rss}");
        }
    }
}
