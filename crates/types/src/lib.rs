//! # dynaddr-types
//!
//! Shared vocabulary for the `dynaddr` workspace, the reproduction of
//! *"Reasons Dynamic Addresses Change"* (Padmanabhan et al., IMC 2016).
//!
//! Everything in this crate is deliberately small and dependency-light so it
//! can be used by the simulator (`dynaddr-atlas`), the substrates
//! (`dynaddr-ispnet`, `dynaddr-ip2as`) and the analysis pipeline
//! (`dynaddr-core`) without coupling them to each other:
//!
//! * [`time`] — simulated wall-clock time anchored at 2015-01-01T00:00:00Z,
//!   with the calendar arithmetic the paper relies on (GMT hour-of-day,
//!   day-of-year, month boundaries for the monthly IP-to-AS snapshots).
//! * [`ip`] — IPv4 helpers and CIDR [`ip::Prefix`] with the /8 and /16
//!   extraction used by Table 7.
//! * [`asn`] — autonomous system numbers.
//! * [`probe`] — RIPE-Atlas-style probe identity: ids, hardware versions,
//!   user-provided tags.
//! * [`geo`] — countries and continents for the geographic rollups (Fig. 1).
//! * [`rng`] — label-derived deterministic RNG streams so that simulations
//!   are reproducible and insensitive to iteration-order changes.
//! * [`dist`] — sampling distributions (exponential, log-normal, Pareto,
//!   mixtures) used to model outage arrivals and durations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod dist;
pub mod geo;
pub mod ip;
pub mod probe;
pub mod rng;
pub mod time;

pub use asn::Asn;
pub use geo::{Continent, Country};
pub use ip::{Prefix, PrefixParseError};
pub use probe::{ProbeId, ProbeTag, ProbeVersion};
pub use time::{SimDuration, SimTime};
