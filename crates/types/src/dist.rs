//! Sampling distributions for the simulator.
//!
//! Outage processes in the world model need: exponential inter-arrival times
//! (Poisson arrivals), log-normal and Pareto durations (short reboots plus a
//! heavy tail of long outages), and finite mixtures of those. We implement
//! the samplers directly from `rand`'s uniform source rather than pulling in
//! `rand_distr`, keeping the dependency set to the approved list; each
//! sampler is a few lines of inverse-CDF or Box–Muller math and is unit- and
//! property-tested below.

use crate::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A continuous distribution over non-negative durations (seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DurationDist {
    /// Every sample equals the given number of seconds.
    Constant(f64),
    /// Uniform over `[lo, hi]` seconds.
    Uniform {
        /// Lower bound, seconds.
        lo: f64,
        /// Upper bound, seconds.
        hi: f64,
    },
    /// Exponential with the given mean (seconds).
    Exponential {
        /// Mean of the distribution, seconds.
        mean: f64,
    },
    /// Log-normal with location `mu` and scale `sigma` of the underlying
    /// normal (natural-log parameterization; the median is `exp(mu)`).
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Pareto with scale `xm` (minimum value, seconds) and shape `alpha`.
    Pareto {
        /// Minimum value (scale), seconds.
        xm: f64,
        /// Tail index; smaller is heavier.
        alpha: f64,
    },
    /// Finite mixture: each component is picked with the paired weight.
    Mixture(Vec<(f64, DurationDist)>),
}

impl DurationDist {
    /// Draws one sample, clamped to be non-negative.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match self {
            DurationDist::Constant(c) => *c,
            DurationDist::Uniform { lo, hi } => {
                if hi > lo {
                    rng.gen_range(*lo..*hi)
                } else {
                    *lo
                }
            }
            DurationDist::Exponential { mean } => {
                // Inverse CDF: -mean * ln(1-U); 1-U avoids ln(0).
                let u: f64 = rng.gen::<f64>();
                -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
            }
            DurationDist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            DurationDist::Pareto { xm, alpha } => {
                let u: f64 = rng.gen::<f64>();
                xm / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / alpha)
            }
            DurationDist::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                let mut pick = rng.gen::<f64>() * total;
                for (w, d) in parts {
                    if pick < *w {
                        return d.sample(rng).max(0.0);
                    }
                    pick -= w;
                }
                // Floating-point slack: fall through to the last component.
                parts.last().map(|(_, d)| d.sample(rng)).unwrap_or(0.0)
            }
        };
        v.max(0.0)
    }

    /// Draws one sample as a [`SimDuration`] (whole seconds, rounded).
    pub fn sample_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        SimDuration::from_secs(self.sample(rng).round() as i64)
    }

    /// Analytic mean where tractable; `None` for heavy tails with α ≤ 1.
    pub fn mean(&self) -> Option<f64> {
        match self {
            DurationDist::Constant(c) => Some(*c),
            DurationDist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            DurationDist::Exponential { mean } => Some(*mean),
            DurationDist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            DurationDist::Pareto { xm, alpha } => {
                (*alpha > 1.0).then(|| alpha * xm / (alpha - 1.0))
            }
            DurationDist::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                let mut acc = 0.0;
                for (w, d) in parts {
                    acc += w / total * d.mean()?;
                }
                Some(acc)
            }
        }
    }
}

/// One draw from N(0,1) via Box–Muller (the cos branch).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples an exponential inter-arrival gap for a Poisson process with the
/// given mean rate (events per second). Returns `None` when the rate is
/// non-positive, i.e. the process never fires.
pub fn poisson_gap<R: Rng + ?Sized>(rng: &mut R, rate_per_sec: f64) -> Option<SimDuration> {
    if rate_per_sec <= 0.0 {
        return None;
    }
    let d = DurationDist::Exponential { mean: 1.0 / rate_per_sec };
    Some(d.sample_duration(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(0xD15)
    }

    fn sample_mean(d: &DurationDist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = DurationDist::Constant(300.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 300.0);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = DurationDist::Uniform { lo: 10.0, hi: 20.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((10.0..20.0).contains(&v));
        }
    }

    #[test]
    fn degenerate_uniform() {
        let d = DurationDist::Uniform { lo: 5.0, hi: 5.0 };
        assert_eq!(d.sample(&mut rng()), 5.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = DurationDist::Exponential { mean: 120.0 };
        let m = sample_mean(&d, 50_000);
        assert!((m - 120.0).abs() < 5.0, "mean {m}");
    }

    #[test]
    fn lognormal_mean_converges() {
        let d = DurationDist::LogNormal { mu: 4.0, sigma: 0.5 };
        let expected = d.mean().unwrap();
        let m = sample_mean(&d, 100_000);
        assert!((m - expected).abs() / expected < 0.05, "mean {m} vs {expected}");
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let d = DurationDist::Pareto { xm: 60.0, alpha: 1.5 };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 60.0);
        }
    }

    #[test]
    fn pareto_mean_none_for_heavy_tail() {
        assert!(DurationDist::Pareto { xm: 1.0, alpha: 0.9 }.mean().is_none());
        assert!(DurationDist::Pareto { xm: 1.0, alpha: 2.0 }.mean().is_some());
    }

    #[test]
    fn mixture_weights_respected() {
        let d = DurationDist::Mixture(vec![
            (0.75, DurationDist::Constant(1.0)),
            (0.25, DurationDist::Constant(100.0)),
        ]);
        let mut r = rng();
        let n = 40_000;
        let hits = (0..n).filter(|_| d.sample(&mut r) > 50.0).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "mixture fraction {frac}");
        let mean = d.mean().unwrap();
        assert!((mean - (0.75 + 25.0)).abs() < 1e-9);
    }

    #[test]
    fn samples_never_negative() {
        let dists = [
            DurationDist::Constant(-5.0),
            DurationDist::LogNormal { mu: -3.0, sigma: 2.0 },
            DurationDist::Exponential { mean: 1.0 },
        ];
        let mut r = rng();
        for d in &dists {
            for _ in 0..200 {
                assert!(d.sample(&mut r) >= 0.0);
            }
        }
    }

    #[test]
    fn poisson_gap_mean() {
        let mut r = rng();
        let rate = 1.0 / 3600.0; // one per hour
        let n = 20_000;
        let total: i64 = (0..n)
            .map(|_| poisson_gap(&mut r, rate).unwrap().secs())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3600.0).abs() < 100.0, "mean gap {mean}");
        assert!(poisson_gap(&mut r, 0.0).is_none());
        assert!(poisson_gap(&mut r, -1.0).is_none());
    }
}
