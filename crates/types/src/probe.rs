//! Probe identity: ids, hardware versions, and user-provided tags.
//!
//! RIPE Atlas hardware versions matter to the analysis: v1/v2 probes are
//! vulnerable to memory fragmentation and may spontaneously reboot when they
//! create new TCP connections (§5.1), so the paper excludes them from the
//! power-outage analysis. Tags are voluntary labels used by the Table 2
//! filtering step ("multihomed", "datacentre", "core").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a RIPE-Atlas-style probe.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ProbeId(pub u32);

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probe#{}", self.0)
    }
}

/// Probe hardware generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeVersion {
    /// First generation (Lantronix XPort Pro): fragile under memory
    /// fragmentation; may reboot on new TCP connections.
    V1,
    /// Second generation: same fragility caveat as v1.
    V2,
    /// Third generation (TP-Link powered over USB): the majority of the
    /// deployment (>75% in 2015), reliable uptime counters.
    V3,
}

impl ProbeVersion {
    /// Whether power-outage inference is trustworthy on this hardware
    /// (the paper discards v1/v2 for that analysis, §5.1).
    pub fn reliable_uptime(self) -> bool {
        matches!(self, ProbeVersion::V3)
    }
}

impl fmt::Display for ProbeVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeVersion::V1 => write!(f, "v1"),
            ProbeVersion::V2 => write!(f, "v2"),
            ProbeVersion::V3 => write!(f, "v3"),
        }
    }
}

/// Voluntary, user-provided probe tags relevant to filtering (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ProbeTag {
    /// Host declared the probe multihomed.
    Multihomed,
    /// Probe hosted in a datacenter.
    Datacentre,
    /// Probe in a network core / exchange point.
    Core,
    /// Host declared a DSL access line.
    Dsl,
    /// Host declared a cable access line.
    Cable,
    /// Host declared a fibre access line.
    Fibre,
    /// Host declared NAT in front of the probe.
    Nat,
    /// Home connection.
    Home,
}

impl ProbeTag {
    /// Tags that cause a probe to be dropped from the analysis outright
    /// (Table 2 row "Multihomed / Core / Datacenter (tags)").
    pub fn disqualifies(self) -> bool {
        matches!(self, ProbeTag::Multihomed | ProbeTag::Datacentre | ProbeTag::Core)
    }
}

impl fmt::Display for ProbeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProbeTag::Multihomed => "multihomed",
            ProbeTag::Datacentre => "datacentre",
            ProbeTag::Core => "core",
            ProbeTag::Dsl => "dsl",
            ProbeTag::Cable => "cable",
            ProbeTag::Fibre => "fibre",
            ProbeTag::Nat => "nat",
            ProbeTag::Home => "home",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_v3_has_reliable_uptime() {
        assert!(!ProbeVersion::V1.reliable_uptime());
        assert!(!ProbeVersion::V2.reliable_uptime());
        assert!(ProbeVersion::V3.reliable_uptime());
    }

    #[test]
    fn disqualifying_tags() {
        assert!(ProbeTag::Multihomed.disqualifies());
        assert!(ProbeTag::Datacentre.disqualifies());
        assert!(ProbeTag::Core.disqualifies());
        assert!(!ProbeTag::Dsl.disqualifies());
        assert!(!ProbeTag::Home.disqualifies());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProbeId(206).to_string(), "probe#206");
        assert_eq!(ProbeVersion::V3.to_string(), "v3");
        assert_eq!(ProbeTag::Datacentre.to_string(), "datacentre");
    }
}
