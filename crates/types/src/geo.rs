//! Countries and continents for the geographic rollups (§4.2, Fig. 1).
//!
//! The paper aggregates probes by country (from the RIPE Atlas probe
//! database) and then by continent. We carry ISO-3166-style two-letter codes
//! and a static country→continent mapping covering every country used by the
//! scripted world plus the regions the paper mentions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A continent, using the paper's legend abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    /// Europe.
    EU,
    /// North America.
    NA,
    /// Asia.
    AS,
    /// Africa.
    AF,
    /// South America.
    SA,
    /// Oceania.
    OC,
}

impl Continent {
    /// All continents in the paper's Fig. 1 legend order.
    pub const ALL: [Continent; 6] = [
        Continent::EU,
        Continent::NA,
        Continent::AS,
        Continent::AF,
        Continent::SA,
        Continent::OC,
    ];
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Continent::EU => "EU",
            Continent::NA => "NA",
            Continent::AS => "AS",
            Continent::AF => "AF",
            Continent::SA => "SA",
            Continent::OC => "OC",
        };
        f.write_str(s)
    }
}

/// A country as a two-letter uppercase code (ISO-3166 alpha-2 style).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Country([u8; 2]);

/// Error for invalid country codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountryParseError(pub String);

impl fmt::Display for CountryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid country code: {:?}", self.0)
    }
}

impl std::error::Error for CountryParseError {}

/// Static country→continent table. Covers the countries named in the paper's
/// tables plus enough of each region to build diverse worlds.
const COUNTRY_CONTINENTS: &[(&str, Continent)] = &[
    // Europe
    ("DE", Continent::EU), ("FR", Continent::EU), ("GB", Continent::EU),
    ("NL", Continent::EU), ("BE", Continent::EU), ("AT", Continent::EU),
    ("HR", Continent::EU), ("PL", Continent::EU), ("HU", Continent::EU),
    ("IT", Continent::EU), ("ES", Continent::EU), ("SE", Continent::EU),
    ("NO", Continent::EU), ("FI", Continent::EU), ("DK", Continent::EU),
    ("CH", Continent::EU), ("CZ", Continent::EU), ("SK", Continent::EU),
    ("RO", Continent::EU), ("BG", Continent::EU), ("GR", Continent::EU),
    ("PT", Continent::EU), ("IE", Continent::EU), ("RU", Continent::EU),
    ("UA", Continent::EU), ("RS", Continent::EU), ("SI", Continent::EU),
    ("LU", Continent::EU), ("EE", Continent::EU), ("LV", Continent::EU),
    ("LT", Continent::EU),
    // North America
    ("US", Continent::NA), ("CA", Continent::NA), ("MX", Continent::NA),
    // Asia
    ("JP", Continent::AS), ("CN", Continent::AS), ("IN", Continent::AS),
    ("KR", Continent::AS), ("SG", Continent::AS), ("HK", Continent::AS),
    ("ID", Continent::AS), ("TH", Continent::AS), ("MY", Continent::AS),
    ("KZ", Continent::AS), ("TR", Continent::AS), ("IL", Continent::AS),
    ("AE", Continent::AS), ("IR", Continent::AS), ("PK", Continent::AS),
    ("VN", Continent::AS), ("PH", Continent::AS), ("TW", Continent::AS),
    // Africa
    ("ZA", Continent::AF), ("MU", Continent::AF), ("EG", Continent::AF),
    ("NG", Continent::AF), ("KE", Continent::AF), ("SN", Continent::AF),
    ("MA", Continent::AF), ("TN", Continent::AF), ("GH", Continent::AF),
    // South America
    ("BR", Continent::SA), ("UY", Continent::SA), ("AR", Continent::SA),
    ("CL", Continent::SA), ("CO", Continent::SA), ("PE", Continent::SA),
    ("EC", Continent::SA), ("VE", Continent::SA),
    // Oceania
    ("AU", Continent::OC), ("NZ", Continent::OC), ("FJ", Continent::OC),
];

impl Country {
    /// Creates a country from a two-letter code; normalizes to uppercase.
    pub fn new(code: &str) -> Result<Country, CountryParseError> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return Err(CountryParseError(code.to_string()));
        }
        Ok(Country([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()]))
    }

    /// The two-letter code.
    pub fn code(self) -> &'static str {
        // Look the canonical &'static str back up; fall back to a leaked-free
        // representation via the table. Unknown codes format through Display.
        for (code, _) in COUNTRY_CONTINENTS {
            if code.as_bytes() == self.0 {
                return code;
            }
        }
        "??"
    }

    /// The continent this country belongs to, if known to the static table.
    pub fn continent(self) -> Option<Continent> {
        COUNTRY_CONTINENTS
            .iter()
            .find(|(code, _)| code.as_bytes() == self.0)
            .map(|(_, cont)| *cont)
    }

    /// All countries of a given continent in the static table.
    pub fn in_continent(continent: Continent) -> Vec<Country> {
        COUNTRY_CONTINENTS
            .iter()
            .filter(|(_, c)| *c == continent)
            .map(|(code, _)| Country::new(code).expect("table codes are valid"))
            .collect()
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.0[0] as char, self.0[1] as char)
    }
}

impl fmt::Debug for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Country({self})")
    }
}

impl FromStr for Country {
    type Err = CountryParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Country::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_countries_map_to_paper_continents() {
        for (code, cont) in [
            ("DE", Continent::EU),
            ("US", Continent::NA),
            ("KZ", Continent::AS),
            ("MU", Continent::AF),
            ("UY", Continent::SA),
            ("AU", Continent::OC),
        ] {
            assert_eq!(Country::new(code).unwrap().continent(), Some(cont));
        }
    }

    #[test]
    fn normalizes_case() {
        assert_eq!(Country::new("de").unwrap(), Country::new("DE").unwrap());
        assert_eq!(Country::new("de").unwrap().to_string(), "DE");
    }

    #[test]
    fn rejects_bad_codes() {
        assert!(Country::new("DEU").is_err());
        assert!(Country::new("D").is_err());
        assert!(Country::new("1A").is_err());
        assert!(Country::new("").is_err());
    }

    #[test]
    fn unknown_country_has_no_continent() {
        // Valid shape but absent from the table.
        assert_eq!(Country::new("ZZ").unwrap().continent(), None);
    }

    #[test]
    fn continent_listing_nonempty_everywhere() {
        for cont in Continent::ALL {
            assert!(!Country::in_continent(cont).is_empty(), "{cont} has no countries");
        }
    }

    #[test]
    fn parse_via_fromstr() {
        let c: Country = "fr".parse().unwrap();
        assert_eq!(c.code(), "FR");
    }
}
