//! Deterministic, label-derived random number streams.
//!
//! The simulator must be exactly reproducible from a single `u64` seed, and —
//! just as important — *stable under refactoring*: adding a probe or
//! reordering ISP construction must not shift the random draws of unrelated
//! components. We achieve this by deriving an independent ChaCha stream for
//! every component from `(root_seed, label)` with a small keyed hash, rather
//! than sharing one global RNG.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A factory for independent, reproducible RNG streams.
#[derive(Debug, Clone, Copy)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a seed tree from a root seed.
    pub fn new(root: u64) -> SeedTree {
        SeedTree { root }
    }

    /// The root seed.
    pub fn root(self) -> u64 {
        self.root
    }

    /// Derives a child seed tree, e.g. one per ISP, labelled by a string.
    pub fn child(self, label: &str) -> SeedTree {
        SeedTree { root: mix(self.root, label.as_bytes()) }
    }

    /// Derives a child seed tree from a numeric id (e.g. probe id).
    pub fn child_id(self, label: &str, id: u64) -> SeedTree {
        let mut bytes = Vec::with_capacity(label.len() + 8);
        bytes.extend_from_slice(label.as_bytes());
        bytes.extend_from_slice(&id.to_le_bytes());
        SeedTree { root: mix(self.root, &bytes) }
    }

    /// Materializes an RNG stream for this node.
    pub fn rng(self) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(self.root)
    }

    /// Shorthand: RNG for a labelled child.
    pub fn rng_for(self, label: &str) -> ChaCha12Rng {
        self.child(label).rng()
    }

    /// Shorthand: RNG for a labelled, numbered child.
    pub fn rng_for_id(self, label: &str, id: u64) -> ChaCha12Rng {
        self.child_id(label, id).rng()
    }
}

/// FNV-1a–style mixing of a seed with a byte label, finished with a
/// SplitMix64 avalanche so nearby labels yield unrelated seeds.
fn mix(seed: u64, label: &[u8]) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in label {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let t = SeedTree::new(42);
        let a: Vec<u32> = (0..8).map(|_| 0).scan(t.rng_for("x"), |r, _| Some(r.gen())).collect();
        let b: Vec<u32> = (0..8).map(|_| 0).scan(t.rng_for("x"), |r, _| Some(r.gen())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let t = SeedTree::new(42);
        let a: u64 = t.rng_for("isp/orange").gen();
        let b: u64 = t.rng_for("isp/dtag").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_roots_different_streams() {
        let a: u64 = SeedTree::new(1).rng_for("x").gen();
        let b: u64 = SeedTree::new(2).rng_for("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn id_children_are_distinct_and_stable() {
        let t = SeedTree::new(7).child("probes");
        let a: u64 = t.rng_for_id("probe", 1).gen();
        let b: u64 = t.rng_for_id("probe", 2).gen();
        let a2: u64 = t.rng_for_id("probe", 1).gen();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn nested_children_compose() {
        let t = SeedTree::new(99);
        let via_child = t.child("a").child("b").root();
        let direct = t.child("a").child("b").root();
        assert_eq!(via_child, direct);
        assert_ne!(t.child("ab").root(), via_child, "path structure must matter");
    }

    #[test]
    fn label_concatenation_does_not_collide() {
        // ("ab","c") vs ("a","bc") as id-less labels must differ because
        // mixing is applied per level.
        let t = SeedTree::new(5);
        assert_ne!(
            t.child("ab").child("c").root(),
            t.child("a").child("bc").root()
        );
    }
}
