//! IPv4 address helpers and CIDR prefixes.
//!
//! The paper's Table 7 compares consecutive addresses at three granularities:
//! the enclosing BGP-routed prefix, the /16, and the /8. This module provides
//! the prefix type used by the route table ([`crate::asn`]-keyed, in
//! `dynaddr-ip2as`) and the fixed-length extraction helpers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Converts an [`Ipv4Addr`] to its 32-bit big-endian integer value.
pub fn ipv4_to_u32(addr: Ipv4Addr) -> u32 {
    u32::from(addr)
}

/// Converts a 32-bit integer back to an [`Ipv4Addr`].
pub fn u32_to_ipv4(v: u32) -> Ipv4Addr {
    Ipv4Addr::from(v)
}

/// The enclosing /8 of an address (Table 7's coarsest granularity).
pub fn slash8(addr: Ipv4Addr) -> Prefix {
    Prefix::new(addr, 8).expect("/8 is always valid")
}

/// The enclosing /16 of an address.
pub fn slash16(addr: Ipv4Addr) -> Prefix {
    Prefix::new(addr, 16).expect("/16 is always valid")
}

/// The enclosing /24 of an address (the "nearby reassignment" intuition the
/// paper tests and rejects in §6).
pub fn slash24(addr: Ipv4Addr) -> Prefix {
    Prefix::new(addr, 24).expect("/24 is always valid")
}

/// An IPv4 CIDR prefix: a base address and a mask length in `0..=32`.
///
/// The base address is always stored in canonical (masked) form, so two
/// prefixes are equal iff they cover exactly the same address range.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    base: u32,
    len: u8,
}

/// Error produced when parsing or constructing a [`Prefix`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Mask length greater than 32.
    BadLength(u8),
    /// Input was not `a.b.c.d/len`.
    Malformed(String),
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::BadLength(l) => write!(f, "prefix length {l} exceeds 32"),
            PrefixParseError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl Prefix {
    /// Creates a prefix, canonicalizing the base address by masking.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Prefix, PrefixParseError> {
        if len > 32 {
            return Err(PrefixParseError::BadLength(len));
        }
        let base = ipv4_to_u32(addr) & Self::mask(len);
        Ok(Prefix { base, len })
    }

    /// The network mask for a given length as a `u32`.
    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The (masked) base address.
    pub fn base(self) -> Ipv4Addr {
        u32_to_ipv4(self.base)
    }

    /// Mask length.
    #[allow(clippy::len_without_is_empty)] // a prefix always covers addresses
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered by the prefix.
    pub fn size(self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// Whether `addr` falls inside the prefix.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        ipv4_to_u32(addr) & Self::mask(self.len) == self.base
    }

    /// Whether `other` is fully covered by `self` (equal or more specific).
    pub fn covers(self, other: Prefix) -> bool {
        other.len >= self.len && (other.base & Self::mask(self.len)) == self.base
    }

    /// The `i`-th address within the prefix. Panics if out of range.
    pub fn nth(self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "address index {i} out of range for {self}");
        u32_to_ipv4(self.base + i as u32)
    }

    /// The offset of `addr` within the prefix, if it is contained.
    pub fn index_of(self, addr: Ipv4Addr) -> Option<u64> {
        self.contains(addr).then(|| u64::from(ipv4_to_u32(addr) - self.base))
    }

    /// Iterates the immediate children when splitting into `sub_len`-sized
    /// sub-prefixes (e.g. a /20 into 16 /24s). Used by pool construction.
    pub fn subdivide(self, sub_len: u8) -> impl Iterator<Item = Prefix> {
        assert!(sub_len >= self.len && sub_len <= 32, "bad subdivision length");
        let count = 1u64 << (sub_len - self.len);
        let step = 1u64 << (32 - u32::from(sub_len));
        let base = self.base;
        (0..count).map(move |i| Prefix {
            base: base + (i * step) as u32,
            len: sub_len,
        })
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError::Malformed(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_string()))?;
        Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "91.55.0.0/16", "193.0.0.78/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn canonicalizes_base() {
        assert_eq!(p("91.55.174.103/16"), p("91.55.0.0/16"));
        assert_eq!(p("91.55.174.103/16").base(), Ipv4Addr::new(91, 55, 0, 0));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!("1.2.3.4".parse::<Prefix>(), Err(PrefixParseError::Malformed(_))));
        assert!(matches!("1.2.3.4/33".parse::<Prefix>(), Err(PrefixParseError::BadLength(33))));
        assert!(matches!("1.2.3/8".parse::<Prefix>(), Err(PrefixParseError::Malformed(_))));
        assert!(matches!("1.2.3.4/x".parse::<Prefix>(), Err(PrefixParseError::Malformed(_))));
    }

    #[test]
    fn contains_and_covers() {
        let net = p("91.55.128.0/17");
        assert!(net.contains(Ipv4Addr::new(91, 55, 174, 103)));
        assert!(!net.contains(Ipv4Addr::new(91, 55, 0, 1)));
        assert!(p("91.55.0.0/16").covers(net));
        assert!(!net.covers(p("91.55.0.0/16")));
        assert!(net.covers(net));
        assert!(p("0.0.0.0/0").covers(net));
    }

    #[test]
    fn size_nth_index_roundtrip() {
        let net = p("198.51.100.0/24");
        assert_eq!(net.size(), 256);
        for i in [0u64, 1, 17, 255] {
            let a = net.nth(i);
            assert_eq!(net.index_of(a), Some(i));
        }
        assert_eq!(net.index_of(Ipv4Addr::new(198, 51, 101, 0)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_out_of_range_panics() {
        p("198.51.100.0/24").nth(256);
    }

    #[test]
    fn fixed_length_extraction() {
        let a = Ipv4Addr::new(91, 55, 174, 103);
        assert_eq!(slash8(a), p("91.0.0.0/8"));
        assert_eq!(slash16(a), p("91.55.0.0/16"));
        assert_eq!(slash24(a), p("91.55.174.0/24"));
    }

    #[test]
    fn subdivide_covers_whole_range() {
        let net = p("10.0.0.0/22");
        let subs: Vec<Prefix> = net.subdivide(24).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], p("10.0.0.0/24"));
        assert_eq!(subs[3], p("10.0.3.0/24"));
        assert!(subs.iter().all(|s| net.covers(*s)));
        let total: u64 = subs.iter().map(|s| s.size()).sum();
        assert_eq!(total, net.size());
    }

    #[test]
    fn default_route() {
        let d = p("0.0.0.0/0");
        assert!(d.is_default());
        assert!(d.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(d.size(), 1 << 32);
    }
}
