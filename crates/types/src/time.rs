//! Simulated time for the 2015 measurement year.
//!
//! The paper analyzes logs spanning January 1, 2015 through December 31,
//! 2015. All simulated timestamps are seconds relative to the *epoch*
//! 2015-01-01T00:00:00 GMT. 2015 is not a leap year, so the year is exactly
//! 365 days long. Negative timestamps (late 2014) are legal — the first
//! connection-log entry in the paper's Table 1 starts on Dec 31, 2014.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Seconds in one minute.
pub const MINUTE: i64 = 60;
/// Seconds in one hour.
pub const HOUR: i64 = 3_600;
/// Seconds in one day.
pub const DAY: i64 = 86_400;
/// Seconds in one week.
pub const WEEK: i64 = 7 * DAY;
/// Number of days in 2015 (not a leap year).
pub const DAYS_IN_2015: i64 = 365;

/// Cumulative days at the start of each month of 2015 (non-leap year).
const MONTH_START_DAY: [i64; 13] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365];

/// Three-letter month abbreviations, indexed by month number minus one.
const MONTH_ABBR: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// An instant in simulated time: seconds since 2015-01-01T00:00:00 GMT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(pub i64);

/// A span of simulated time, in seconds. May be negative for differences.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub i64);

impl SimTime {
    /// Start of the measurement year: 2015-01-01T00:00:00 GMT.
    pub const YEAR_START: SimTime = SimTime(0);
    /// End of the measurement year: 2016-01-01T00:00:00 GMT (exclusive).
    pub const YEAR_END: SimTime = SimTime(DAYS_IN_2015 * DAY);

    /// Builds a time from a calendar date and time-of-day in 2015.
    ///
    /// `month` and `day` are 1-based. Panics when the date does not exist.
    pub fn from_date(month: u32, day: u32, hour: u32, min: u32, sec: u32) -> SimTime {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        let month_len = MONTH_START_DAY[month as usize] - MONTH_START_DAY[month as usize - 1];
        assert!(
            (1..=month_len as u32).contains(&day),
            "day {day} out of range for month {month}"
        );
        assert!(hour < 24 && min < 60 && sec < 60, "time-of-day out of range");
        let days = MONTH_START_DAY[month as usize - 1] + i64::from(day) - 1;
        SimTime(days * DAY + i64::from(hour) * HOUR + i64::from(min) * MINUTE + i64::from(sec))
    }

    /// Seconds since the epoch.
    pub fn secs(self) -> i64 {
        self.0
    }

    /// Day index within 2015 (0-based). Days before the year are negative.
    pub fn day_of_year(self) -> i64 {
        self.0.div_euclid(DAY)
    }

    /// GMT hour of day, `0..24`.
    pub fn hour_of_day(self) -> u32 {
        (self.0.rem_euclid(DAY) / HOUR) as u32
    }

    /// Seconds elapsed since GMT midnight, `0..86_400`.
    pub fn secs_of_day(self) -> i64 {
        self.0.rem_euclid(DAY)
    }

    /// 1-based month number for timestamps within 2015.
    ///
    /// Timestamps before the year clamp to January and after the year to
    /// December; the analysis uses this to select a monthly IP-to-AS
    /// snapshot, where clamping is the right behaviour for boundary noise.
    pub fn month_of_2015(self) -> u32 {
        let day = self.day_of_year().clamp(0, DAYS_IN_2015 - 1);
        let m = MONTH_START_DAY.iter().rposition(|&start| start <= day).unwrap_or(0);
        (m + 1).clamp(1, 12) as u32
    }

    /// Whether the instant lies within the 2015 measurement window.
    pub fn in_measurement_year(self) -> bool {
        self >= Self::YEAR_START && self < Self::YEAR_END
    }

    /// Calendar breakdown `(month 1-12, day-of-month 1-31)` for 2015 dates.
    /// Clamps to the year boundaries like [`SimTime::month_of_2015`].
    pub fn month_day(self) -> (u32, u32) {
        let day = self.day_of_year().clamp(0, DAYS_IN_2015 - 1);
        let month = self.month_of_2015();
        let dom = day - MONTH_START_DAY[month as usize - 1] + 1;
        (month, dom as u32)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of whole seconds.
    pub const fn from_secs(secs: i64) -> SimDuration {
        SimDuration(secs)
    }

    /// A duration of whole minutes.
    pub const fn from_mins(mins: i64) -> SimDuration {
        SimDuration(mins * MINUTE)
    }

    /// A duration of whole hours.
    pub const fn from_hours(hours: i64) -> SimDuration {
        SimDuration(hours * HOUR)
    }

    /// A duration of whole days.
    pub const fn from_days(days: i64) -> SimDuration {
        SimDuration(days * DAY)
    }

    /// A duration from fractional hours (used when configuring ISP periods
    /// like the 0.5 h grace in lease logic).
    pub fn from_hours_f64(hours: f64) -> SimDuration {
        SimDuration((hours * HOUR as f64).round() as i64)
    }

    /// Total seconds.
    pub fn secs(self) -> i64 {
        self.0
    }

    /// Duration as fractional hours — the unit used throughout the paper's
    /// tables and figures.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Duration as fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / DAY as f64
    }

    /// Duration as fractional years (the legend unit of Figs. 1–3).
    pub fn as_years(self) -> f64 {
        self.0 as f64 / (DAYS_IN_2015 * DAY) as f64
    }

    /// True for durations strictly longer than zero.
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    /// Formats like the paper's connection-log excerpts: `Jan 1 03:22:16`.
    /// Out-of-year instants append the year for clarity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_of_year();
        let tod = self.secs_of_day();
        let (h, m, s) = (tod / HOUR, (tod % HOUR) / MINUTE, tod % MINUTE);
        if (0..DAYS_IN_2015).contains(&day) {
            let (month, dom) = self.month_day();
            write!(f, "{} {dom} {h:02}:{m:02}:{s:02}", MONTH_ABBR[month as usize - 1])
        } else {
            write!(f, "day{day} {h:02}:{m:02}:{s:02}")
        }
    }
}

impl fmt::Display for SimDuration {
    /// Human-scaled rendering: seconds, minutes, hours, or days.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s.abs() < 2 * MINUTE {
            write!(f, "{s}s")
        } else if s.abs() < 2 * HOUR {
            write!(f, "{:.1}m", s as f64 / MINUTE as f64)
        } else if s.abs() < 2 * DAY {
            write!(f, "{:.1}h", self.as_hours())
        } else {
            write!(f, "{:.1}d", self.as_days())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_first() {
        let t = SimTime::YEAR_START;
        assert_eq!(t.day_of_year(), 0);
        assert_eq!(t.hour_of_day(), 0);
        assert_eq!(t.month_of_2015(), 1);
        assert_eq!(t.month_day(), (1, 1));
    }

    #[test]
    fn from_date_roundtrips_month_day() {
        for (m, d) in [(1, 1), (2, 28), (3, 1), (6, 30), (7, 4), (12, 31)] {
            let t = SimTime::from_date(m, d, 12, 30, 45);
            assert_eq!(t.month_day(), (m, d), "month/day for {m}/{d}");
            assert_eq!(t.hour_of_day(), 12);
        }
    }

    #[test]
    #[should_panic(expected = "day 29 out of range")]
    fn feb_29_does_not_exist_in_2015() {
        SimTime::from_date(2, 29, 0, 0, 0);
    }

    #[test]
    fn year_has_365_days() {
        assert_eq!(SimTime::YEAR_END - SimTime::YEAR_START, SimDuration::from_days(365));
        assert!(!SimTime::YEAR_END.in_measurement_year());
        assert!((SimTime::YEAR_END - SimDuration::from_secs(1)).in_measurement_year());
    }

    #[test]
    fn negative_times_render_and_bucket_sanely() {
        // Dec 31 2014 03:21:34 is 20h38m26s before the epoch.
        let t = SimTime(-(20 * HOUR + 38 * MINUTE + 26));
        assert_eq!(t.day_of_year(), -1);
        assert_eq!(t.hour_of_day(), 3);
        assert_eq!(t.month_of_2015(), 1); // clamped for snapshot selection
        assert_eq!(format!("{t}"), "day-1 03:21:34");
    }

    #[test]
    fn display_matches_paper_sample() {
        let t = SimTime::from_date(1, 1, 3, 22, 16);
        assert_eq!(format!("{t}"), "Jan 1 03:22:16");
        let t2 = SimTime::from_date(12, 31, 23, 59, 59);
        assert_eq!(format!("{t2}"), "Dec 31 23:59:59");
    }

    #[test]
    fn duration_units() {
        assert_eq!(SimDuration::from_hours(24), SimDuration::from_days(1));
        assert!((SimDuration::from_hours(36).as_days() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_days(365).as_years() - 1.0).abs() < 1e-12);
        assert_eq!(SimDuration::from_hours_f64(23.6).secs(), (23.6 * 3600.0) as i64);
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(format!("{}", SimDuration::from_secs(45)), "45s");
        assert_eq!(format!("{}", SimDuration::from_mins(20)), "20.0m");
        assert_eq!(format!("{}", SimDuration::from_hours(23)), "23.0h");
        assert_eq!(format!("{}", SimDuration::from_days(3)), "3.0d");
    }

    #[test]
    fn month_boundaries() {
        assert_eq!(SimTime::from_date(1, 31, 23, 59, 59).month_of_2015(), 1);
        assert_eq!(SimTime::from_date(2, 1, 0, 0, 0).month_of_2015(), 2);
        assert_eq!(SimTime::from_date(12, 31, 23, 59, 59).month_of_2015(), 12);
        assert_eq!(SimTime(SimTime::YEAR_END.0 + DAY).month_of_2015(), 12); // clamp
    }

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_date(3, 10, 6, 0, 0);
        let b = a + SimDuration::from_hours(30);
        assert_eq!(b.month_day(), (3, 11));
        assert_eq!(b.hour_of_day(), 12);
        assert_eq!(b - a, SimDuration::from_hours(30));
    }
}
