//! Autonomous system numbers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous system number (32-bit per RFC 6793).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved AS0, used here as "unknown / unmapped address space".
    pub const UNKNOWN: Asn = Asn(0);

    /// Whether this ASN maps to real, announced address space.
    pub fn is_known(self) -> bool {
        self != Asn::UNKNOWN
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Asn {
        Asn(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_known() {
        assert_eq!(Asn(3320).to_string(), "AS3320");
        assert!(Asn(3320).is_known());
        assert!(!Asn::UNKNOWN.is_known());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn(701) < Asn(3215));
    }
}
