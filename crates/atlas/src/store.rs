//! Columnar store codecs for the Atlas tables (`dynaddr-store` backend).
//!
//! Maps every dataset and ground-truth table onto the segmented columnar
//! format: integers (probe ids, timestamps, counters, enum codes) become
//! delta + zigzag + varint columns, addresses and strings become
//! length-prefixed byte columns. Enum codes are fixed here, independent of
//! declaration order, so files stay readable across refactors; addresses
//! carry their family in the payload length (4 bytes = IPv4, 16 = IPv6)
//! and floats travel as exact IEEE-754 bit patterns — a decode reproduces
//! the in-memory value byte for byte.
//!
//! Datasets are written as one multi-table file (`dataset.store`), ground
//! truth as another (`truth.store`); see [`crate::logs::AtlasDataset::save_dir`]
//! for the directory wiring and the JSONL interchange fallback.

use crate::logs::{
    AtlasDataset, ConnectionLogEntry, KrootPingRecord, PeerAddr, ProbeIndex, ProbeMeta,
    SosUptimeRecord,
};
use crate::truth::{
    ChangeCause, GroundTruth, IspPolicyTruth, TruthChange, TruthOutage, TruthOutageKind,
};
use dynaddr_store::{
    ColumnBuilder, ColumnKind, ColumnReader, ColumnarRecord, DecodeError, FileReader, FileWriter,
    ReadMode, RecoveryReport, StoreError,
};
use dynaddr_types::{Asn, Country, ProbeId, ProbeTag, ProbeVersion, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, Ipv6Addr};

// ---------------------------------------------------------------------------
// Shared column helpers
// ---------------------------------------------------------------------------

fn u32_col(v: i64, what: &str) -> Result<u32, DecodeError> {
    u32::try_from(v).map_err(|_| DecodeError::new(format!("{what} {v} out of range")))
}

fn u8_col(v: i64, what: &str) -> Result<u8, DecodeError> {
    u8::try_from(v).map_err(|_| DecodeError::new(format!("{what} {v} out of range")))
}

fn u64_col(v: i64, what: &str) -> Result<u64, DecodeError> {
    u64::try_from(v).map_err(|_| DecodeError::new(format!("{what} {v} out of range")))
}

fn bool_col(v: i64, what: &str) -> Result<bool, DecodeError> {
    match v {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(DecodeError::new(format!("{what} {other} is not a boolean"))),
    }
}

fn push_peer(col: &mut ColumnBuilder, peer: PeerAddr) {
    match peer {
        PeerAddr::V4(a) => col.push_bytes(&a.octets()),
        PeerAddr::V6(a) => col.push_bytes(&a.octets()),
    }
}

fn peer_from(bytes: &[u8]) -> Result<PeerAddr, DecodeError> {
    match bytes.len() {
        4 => {
            let o: [u8; 4] = bytes.try_into().expect("4 bytes");
            Ok(PeerAddr::V4(Ipv4Addr::from(o)))
        }
        16 => {
            let o: [u8; 16] = bytes.try_into().expect("16 bytes");
            Ok(PeerAddr::V6(Ipv6Addr::from(o)))
        }
        n => Err(DecodeError::new(format!("address of {n} bytes (want 4 or 16)"))),
    }
}

fn v4_from(bytes: &[u8], what: &str) -> Result<Ipv4Addr, DecodeError> {
    let o: [u8; 4] = bytes
        .try_into()
        .map_err(|_| DecodeError::new(format!("{what}: {} bytes (want 4)", bytes.len())))?;
    Ok(Ipv4Addr::from(o))
}

fn version_code(v: ProbeVersion) -> i64 {
    match v {
        ProbeVersion::V1 => 1,
        ProbeVersion::V2 => 2,
        ProbeVersion::V3 => 3,
    }
}

fn version_from(code: i64) -> Result<ProbeVersion, DecodeError> {
    match code {
        1 => Ok(ProbeVersion::V1),
        2 => Ok(ProbeVersion::V2),
        3 => Ok(ProbeVersion::V3),
        other => Err(DecodeError::new(format!("unknown probe version code {other}"))),
    }
}

fn tag_code(t: ProbeTag) -> u8 {
    match t {
        ProbeTag::Multihomed => 0,
        ProbeTag::Datacentre => 1,
        ProbeTag::Core => 2,
        ProbeTag::Dsl => 3,
        ProbeTag::Cable => 4,
        ProbeTag::Fibre => 5,
        ProbeTag::Nat => 6,
        ProbeTag::Home => 7,
    }
}

fn tag_from(code: u8) -> Result<ProbeTag, DecodeError> {
    Ok(match code {
        0 => ProbeTag::Multihomed,
        1 => ProbeTag::Datacentre,
        2 => ProbeTag::Core,
        3 => ProbeTag::Dsl,
        4 => ProbeTag::Cable,
        5 => ProbeTag::Fibre,
        6 => ProbeTag::Nat,
        7 => ProbeTag::Home,
        other => return Err(DecodeError::new(format!("unknown probe tag code {other}"))),
    })
}

fn cause_code(c: ChangeCause) -> i64 {
    match c {
        ChangeCause::PeriodicCap => 0,
        ChangeCause::PoolRotation => 1,
        ChangeCause::ScheduledReconnect => 2,
        ChangeCause::NetworkOutage => 3,
        ChangeCause::PowerOutage => 4,
        ChangeCause::AdminRenumber => 5,
        ChangeCause::Moved => 6,
    }
}

fn cause_from(code: i64) -> Result<ChangeCause, DecodeError> {
    Ok(match code {
        0 => ChangeCause::PeriodicCap,
        1 => ChangeCause::PoolRotation,
        2 => ChangeCause::ScheduledReconnect,
        3 => ChangeCause::NetworkOutage,
        4 => ChangeCause::PowerOutage,
        5 => ChangeCause::AdminRenumber,
        6 => ChangeCause::Moved,
        other => return Err(DecodeError::new(format!("unknown change cause code {other}"))),
    })
}

fn outage_kind_code(k: TruthOutageKind) -> i64 {
    match k {
        TruthOutageKind::Network => 0,
        TruthOutageKind::Power => 1,
        TruthOutageKind::CpeOnlyPower => 2,
        TruthOutageKind::ProbeOnlyReboot => 3,
    }
}

fn outage_kind_from(code: i64) -> Result<TruthOutageKind, DecodeError> {
    Ok(match code {
        0 => TruthOutageKind::Network,
        1 => TruthOutageKind::Power,
        2 => TruthOutageKind::CpeOnlyPower,
        3 => TruthOutageKind::ProbeOnlyReboot,
        other => return Err(DecodeError::new(format!("unknown outage kind code {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Dataset tables
// ---------------------------------------------------------------------------

impl ColumnarRecord for ProbeMeta {
    const TABLE_ID: u8 = 1;
    const TABLE_NAME: &'static str = "meta";
    const COLUMNS: &'static [ColumnKind] =
        &[ColumnKind::I64, ColumnKind::I64, ColumnKind::Bytes, ColumnKind::Bytes];

    fn key(&self) -> u32 {
        self.probe.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.probe.0));
            cols[1].push_i64(version_code(r.version));
            cols[2].push_bytes(r.country.to_string().as_bytes());
            let tags: Vec<u8> = r.tags.iter().map(|&t| tag_code(t)).collect();
            cols[3].push_bytes(&tags);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let probe = ProbeId(u32_col(cols[0].next_i64()?, "probe id")?);
            let version = version_from(cols[1].next_i64()?)?;
            let code = cols[2].next_bytes()?;
            let code = std::str::from_utf8(code)
                .map_err(|_| DecodeError::new("country code is not UTF-8"))?;
            let country = Country::new(code)
                .map_err(|e| DecodeError::new(format!("bad country code: {e}")))?;
            let tags = cols[3]
                .next_bytes()?
                .iter()
                .map(|&c| tag_from(c))
                .collect::<Result<Vec<ProbeTag>, DecodeError>>()?;
            out.push(ProbeMeta { probe, version, country, tags });
        }
        Ok(out)
    }
}

impl ColumnarRecord for ConnectionLogEntry {
    const TABLE_ID: u8 = 2;
    const TABLE_NAME: &'static str = "connections";
    const COLUMNS: &'static [ColumnKind] =
        &[ColumnKind::I64, ColumnKind::I64, ColumnKind::I64, ColumnKind::Bytes];

    fn key(&self) -> u32 {
        self.probe.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.probe.0));
            cols[1].push_i64(r.start.0);
            cols[2].push_i64(r.end.0);
            push_peer(&mut cols[3], r.peer);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(ConnectionLogEntry {
                probe: ProbeId(u32_col(cols[0].next_i64()?, "probe id")?),
                start: SimTime(cols[1].next_i64()?),
                end: SimTime(cols[2].next_i64()?),
                peer: peer_from(cols[3].next_bytes()?)?,
            });
        }
        Ok(out)
    }
}

impl ColumnarRecord for KrootPingRecord {
    const TABLE_ID: u8 = 3;
    const TABLE_NAME: &'static str = "kroot";
    const COLUMNS: &'static [ColumnKind] = &[
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::I64,
    ];

    fn key(&self) -> u32 {
        self.probe.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.probe.0));
            cols[1].push_i64(r.timestamp.0);
            cols[2].push_i64(i64::from(r.sent));
            cols[3].push_i64(i64::from(r.success));
            cols[4].push_i64(r.lts_secs);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(KrootPingRecord {
                probe: ProbeId(u32_col(cols[0].next_i64()?, "probe id")?),
                timestamp: SimTime(cols[1].next_i64()?),
                sent: u8_col(cols[2].next_i64()?, "sent count")?,
                success: u8_col(cols[3].next_i64()?, "success count")?,
                lts_secs: cols[4].next_i64()?,
            });
        }
        Ok(out)
    }
}

impl ColumnarRecord for SosUptimeRecord {
    const TABLE_ID: u8 = 4;
    const TABLE_NAME: &'static str = "uptime";
    const COLUMNS: &'static [ColumnKind] =
        &[ColumnKind::I64, ColumnKind::I64, ColumnKind::I64];

    fn key(&self) -> u32 {
        self.probe.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.probe.0));
            cols[1].push_i64(r.timestamp.0);
            cols[2].push_i64(r.uptime_secs as i64);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(SosUptimeRecord {
                probe: ProbeId(u32_col(cols[0].next_i64()?, "probe id")?),
                timestamp: SimTime(cols[1].next_i64()?),
                uptime_secs: u64_col(cols[2].next_i64()?, "uptime")?,
            });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Ground-truth tables
// ---------------------------------------------------------------------------

impl ColumnarRecord for TruthChange {
    const TABLE_ID: u8 = 16;
    const TABLE_NAME: &'static str = "truth_changes";
    const COLUMNS: &'static [ColumnKind] = &[
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::Bytes,
        ColumnKind::Bytes,
        ColumnKind::I64,
    ];

    fn key(&self) -> u32 {
        self.probe.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.probe.0));
            cols[1].push_i64(r.time.0);
            // `from` is optional: zero bytes = first assignment.
            match r.from {
                Some(a) => cols[2].push_bytes(&a.octets()),
                None => cols[2].push_bytes(&[]),
            }
            cols[3].push_bytes(&r.to.octets());
            cols[4].push_i64(cause_code(r.cause));
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let probe = ProbeId(u32_col(cols[0].next_i64()?, "probe id")?);
            let time = SimTime(cols[1].next_i64()?);
            let from_bytes = cols[2].next_bytes()?;
            let from = if from_bytes.is_empty() {
                None
            } else {
                Some(v4_from(from_bytes, "from address")?)
            };
            let to = v4_from(cols[3].next_bytes()?, "to address")?;
            let cause = cause_from(cols[4].next_i64()?)?;
            out.push(TruthChange { probe, time, from, to, cause });
        }
        Ok(out)
    }
}

impl ColumnarRecord for TruthOutage {
    const TABLE_ID: u8 = 17;
    const TABLE_NAME: &'static str = "truth_outages";
    const COLUMNS: &'static [ColumnKind] = &[
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::I64,
    ];

    fn key(&self) -> u32 {
        self.probe.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.probe.0));
            cols[1].push_i64(outage_kind_code(r.kind));
            cols[2].push_i64(r.start.0);
            cols[3].push_i64(r.duration.0);
            cols[4].push_i64(i64::from(r.address_changed));
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(TruthOutage {
                probe: ProbeId(u32_col(cols[0].next_i64()?, "probe id")?),
                kind: outage_kind_from(cols[1].next_i64()?)?,
                start: SimTime(cols[2].next_i64()?),
                duration: SimDuration(cols[3].next_i64()?),
                address_changed: bool_col(cols[4].next_i64()?, "address_changed")?,
            });
        }
        Ok(out)
    }
}

/// Row form of `GroundTruth::firmware_reboots` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FirmwareReboot {
    probe: ProbeId,
    time: SimTime,
}

impl ColumnarRecord for FirmwareReboot {
    const TABLE_ID: u8 = 18;
    const TABLE_NAME: &'static str = "truth_firmware_reboots";
    const COLUMNS: &'static [ColumnKind] = &[ColumnKind::I64, ColumnKind::I64];

    fn key(&self) -> u32 {
        self.probe.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.probe.0));
            cols[1].push_i64(r.time.0);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(FirmwareReboot {
                probe: ProbeId(u32_col(cols[0].next_i64()?, "probe id")?),
                time: SimTime(cols[1].next_i64()?),
            });
        }
        Ok(out)
    }
}

/// Row form of `GroundTruth::firmware_dates` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FirmwareDate(SimTime);

impl ColumnarRecord for FirmwareDate {
    const TABLE_ID: u8 = 19;
    const TABLE_NAME: &'static str = "truth_firmware_dates";
    const COLUMNS: &'static [ColumnKind] = &[ColumnKind::I64];

    fn key(&self) -> u32 {
        0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(r.0 .0);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(FirmwareDate(SimTime(cols[0].next_i64()?)));
        }
        Ok(out)
    }
}

/// Row form of one `GroundTruth::isp_policies` entry. The float weight
/// travels as its exact IEEE-754 bit pattern, the hour list as a nested
/// varint list inside a bytes column.
#[derive(Debug, Clone, PartialEq)]
struct PolicyRow {
    asn: u32,
    policy: IspPolicyTruth,
}

impl ColumnarRecord for PolicyRow {
    const TABLE_ID: u8 = 20;
    const TABLE_NAME: &'static str = "truth_isp_policies";
    const COLUMNS: &'static [ColumnKind] = &[
        ColumnKind::I64,
        ColumnKind::Bytes,
        ColumnKind::Bytes,
        ColumnKind::Bytes,
        ColumnKind::I64,
        ColumnKind::I64,
        ColumnKind::I64,
    ];

    fn key(&self) -> u32 {
        self.asn
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.asn));
            cols[1].push_bytes(r.policy.name.as_bytes());
            cols[2].push_bytes(r.policy.country.as_bytes());
            let mut hours = Vec::new();
            dynaddr_store::varint::write_u64(&mut hours, r.policy.periodic_hours.len() as u64);
            for &h in &r.policy.periodic_hours {
                dynaddr_store::varint::write_i64(&mut hours, h);
            }
            cols[3].push_bytes(&hours);
            cols[4].push_i64(i64::from(r.policy.renumbers_on_reconnect));
            cols[5].push_i64(r.policy.periodic_weight.to_bits() as i64);
            cols[6].push_i64(r.policy.probes as i64);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let asn = u32_col(cols[0].next_i64()?, "asn")?;
            let name = String::from_utf8(cols[1].next_bytes()?.to_vec())
                .map_err(|_| DecodeError::new("ISP name is not UTF-8"))?;
            let country = String::from_utf8(cols[2].next_bytes()?.to_vec())
                .map_err(|_| DecodeError::new("ISP country is not UTF-8"))?;
            let hours_bytes = cols[3].next_bytes()?;
            let mut pos = 0usize;
            let count = dynaddr_store::varint::read_u64(hours_bytes, &mut pos)?;
            if count > hours_bytes.len() as u64 {
                return Err(DecodeError::new(format!("implausible hour count {count}")));
            }
            let mut periodic_hours = Vec::with_capacity(count as usize);
            for _ in 0..count {
                periodic_hours.push(dynaddr_store::varint::read_i64(hours_bytes, &mut pos)?);
            }
            if pos != hours_bytes.len() {
                return Err(DecodeError::new("trailing bytes in periodic hour list"));
            }
            let renumbers_on_reconnect = bool_col(cols[4].next_i64()?, "renumber flag")?;
            let periodic_weight = f64::from_bits(cols[5].next_i64()? as u64);
            let probes = u64_col(cols[6].next_i64()?, "probe count")? as usize;
            out.push(PolicyRow {
                asn,
                policy: IspPolicyTruth {
                    name,
                    country,
                    periodic_hours,
                    renumbers_on_reconnect,
                    periodic_weight,
                    probes,
                },
            });
        }
        Ok(out)
    }
}

/// Row form of the optional `GroundTruth::admin_renumbering` event
/// (zero or one rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AdminRow {
    asn: Asn,
    time: SimTime,
}

impl ColumnarRecord for AdminRow {
    const TABLE_ID: u8 = 21;
    const TABLE_NAME: &'static str = "truth_admin_renumbering";
    const COLUMNS: &'static [ColumnKind] = &[ColumnKind::I64, ColumnKind::I64];

    fn key(&self) -> u32 {
        self.asn.0
    }

    fn encode(rows: &[Self], cols: &mut [ColumnBuilder]) {
        for r in rows {
            cols[0].push_i64(i64::from(r.asn.0));
            cols[1].push_i64(r.time.0);
        }
    }

    fn decode(cols: &mut [ColumnReader<'_>], rows: usize) -> Result<Vec<Self>, DecodeError> {
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            out.push(AdminRow {
                asn: Asn(u32_col(cols[0].next_i64()?, "asn")?),
                time: SimTime(cols[1].next_i64()?),
            });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Whole-object encode/decode
// ---------------------------------------------------------------------------

/// Encodes a dataset as one multi-table store file.
pub fn dataset_to_bytes(ds: &AtlasDataset) -> Vec<u8> {
    let mut w = FileWriter::new();
    w.write_table(&ds.meta);
    w.write_table(&ds.connections);
    w.write_table(&ds.kroot);
    w.write_table(&ds.uptime);
    w.finish()
}

/// Decodes a dataset store file, normalizing the result (the per-probe
/// index is derived data and is rebuilt, like the JSONL path does).
pub fn dataset_from_bytes(
    bytes: &[u8],
    mode: ReadMode,
) -> Result<(AtlasDataset, RecoveryReport), StoreError> {
    let (reader, notes) = open(bytes, mode)?;
    let mut report = RecoveryReport { notes, dropped: Vec::new() };
    let (meta, d) = reader.decode_table::<ProbeMeta>(mode)?;
    report.dropped.extend(d);
    let (connections, d) = reader.decode_table::<ConnectionLogEntry>(mode)?;
    report.dropped.extend(d);
    let (kroot, d) = reader.decode_table::<KrootPingRecord>(mode)?;
    report.dropped.extend(d);
    let (uptime, d) = reader.decode_table::<SosUptimeRecord>(mode)?;
    report.dropped.extend(d);
    let mut ds =
        AtlasDataset { meta, connections, kroot, uptime, index: ProbeIndex::default() };
    ds.normalize();
    Ok((ds, report))
}

/// Encodes a ground truth as one multi-table store file.
pub fn truth_to_bytes(truth: &GroundTruth) -> Vec<u8> {
    let mut w = FileWriter::new();
    w.write_table(&truth.changes);
    w.write_table(&truth.outages);
    let reboots: Vec<FirmwareReboot> = truth
        .firmware_reboots
        .iter()
        .map(|&(probe, time)| FirmwareReboot { probe, time })
        .collect();
    w.write_table(&reboots);
    let dates: Vec<FirmwareDate> =
        truth.firmware_dates.iter().map(|&t| FirmwareDate(t)).collect();
    w.write_table(&dates);
    let policies: Vec<PolicyRow> = truth
        .isp_policies
        .iter()
        .map(|(&asn, policy)| PolicyRow { asn, policy: policy.clone() })
        .collect();
    w.write_table(&policies);
    let admin: Vec<AdminRow> = truth
        .admin_renumbering
        .iter()
        .map(|&(asn, time)| AdminRow { asn, time })
        .collect();
    w.write_table(&admin);
    w.finish()
}

/// Decodes a ground-truth store file.
pub fn truth_from_bytes(
    bytes: &[u8],
    mode: ReadMode,
) -> Result<(GroundTruth, RecoveryReport), StoreError> {
    let (reader, notes) = open(bytes, mode)?;
    let mut report = RecoveryReport { notes, dropped: Vec::new() };
    let (changes, d) = reader.decode_table::<TruthChange>(mode)?;
    report.dropped.extend(d);
    let (outages, d) = reader.decode_table::<TruthOutage>(mode)?;
    report.dropped.extend(d);
    let (reboots, d) = reader.decode_table::<FirmwareReboot>(mode)?;
    report.dropped.extend(d);
    let (dates, d) = reader.decode_table::<FirmwareDate>(mode)?;
    report.dropped.extend(d);
    let (policies, d) = reader.decode_table::<PolicyRow>(mode)?;
    report.dropped.extend(d);
    let (admin, d) = reader.decode_table::<AdminRow>(mode)?;
    report.dropped.extend(d);
    let truth = GroundTruth {
        changes,
        outages,
        firmware_reboots: reboots.into_iter().map(|r| (r.probe, r.time)).collect(),
        isp_policies: policies
            .into_iter()
            .map(|r| (r.asn, r.policy))
            .collect::<BTreeMap<u32, IspPolicyTruth>>(),
        firmware_dates: dates.into_iter().map(|d| d.0).collect(),
        admin_renumbering: admin.first().map(|a| (a.asn, a.time)),
    };
    Ok((truth, report))
}

fn open(bytes: &[u8], mode: ReadMode) -> Result<(FileReader<'_>, Vec<String>), StoreError> {
    match mode {
        ReadMode::Strict => FileReader::open(bytes).map(|r| (r, Vec::new())),
        ReadMode::Recover => FileReader::open_recover(bytes),
    }
}

// ---------------------------------------------------------------------------
// Random access
// ---------------------------------------------------------------------------

/// Everything one probe contributed to a dataset store file, decoded
/// without touching the other probes' segments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeRecords {
    /// The probe's metadata, if present.
    pub meta: Option<ProbeMeta>,
    /// The probe's connection-log entries.
    pub connections: Vec<ConnectionLogEntry>,
    /// The probe's k-root ping records.
    pub kroot: Vec<KrootPingRecord>,
    /// The probe's SOS-uptime records.
    pub uptime: Vec<SosUptimeRecord>,
}

/// A dataset store opened for repeated single-probe reads: the footer is
/// parsed once and split into per-table segment lists, so each
/// [`StoreIndex::read_probe_indexed`] call pays only for the segments it
/// decodes, not an O(footer) re-parse. Normalized files have non-decreasing
/// key ranges per table, which the index detects and exploits with binary
/// search; unsorted (hand-built) files fall back to a linear scan.
pub struct StoreIndex<'a> {
    bytes: &'a [u8],
    /// One entry per dataset table id 1..=4: `(per-table segment ordinal,
    /// footer info)` in file order, plus whether the key ranges are sorted.
    tables: [TableSegments; 4],
}

struct TableSegments {
    segs: Vec<(usize, dynaddr_store::SegmentInfo)>,
    sorted: bool,
}

impl<'a> StoreIndex<'a> {
    /// Parses the footer once and indexes the four dataset tables.
    pub fn open(bytes: &'a [u8]) -> Result<StoreIndex<'a>, StoreError> {
        let reader = FileReader::open(bytes)?;
        let mut tables: [TableSegments; 4] =
            std::array::from_fn(|_| TableSegments { segs: Vec::new(), sorted: true });
        for info in reader.segments() {
            let Some(slot) = (1..=4).contains(&info.table).then(|| (info.table - 1) as usize)
            else {
                continue;
            };
            let t = &mut tables[slot];
            if let Some(&(_, prev)) = t.segs.last() {
                if prev.key_lo > info.key_lo || prev.key_hi > info.key_hi {
                    t.sorted = false;
                }
            }
            let ordinal = t.segs.len();
            t.segs.push((ordinal, *info));
        }
        Ok(StoreIndex { bytes, tables })
    }

    /// Decodes `key`'s rows of one table, touching only covering segments.
    fn rows_for<R: ColumnarRecord>(&self, key: u32) -> Result<Vec<R>, StoreError> {
        let t = &self.tables[(R::TABLE_ID - 1) as usize];
        let candidates = if t.sorted {
            // First segment whose range could still contain the key.
            &t.segs[t.segs.partition_point(|&(_, info)| info.key_hi < key)..]
        } else {
            &t.segs[..]
        };
        let mut rows = Vec::new();
        for &(ordinal, info) in candidates {
            if t.sorted && info.key_lo > key {
                break;
            }
            if (info.key_lo..=info.key_hi).contains(&key) {
                rows.extend(
                    dynaddr_store::decode_segment_at::<R>(self.bytes, ordinal, info)?
                        .into_iter()
                        .filter(|r| r.key() == key),
                );
            }
        }
        Ok(rows)
    }

    /// Random access: everything one probe contributed, decoded without
    /// touching the other probes' segments (or the footer again).
    pub fn read_probe_indexed(&self, probe: ProbeId) -> Result<ProbeRecords, StoreError> {
        Ok(ProbeRecords {
            meta: self.rows_for::<ProbeMeta>(probe.0)?.into_iter().next(),
            connections: self.rows_for::<ConnectionLogEntry>(probe.0)?,
            kroot: self.rows_for::<KrootPingRecord>(probe.0)?,
            uptime: self.rows_for::<SosUptimeRecord>(probe.0)?,
        })
    }
}

/// Random-access read of one probe from dataset store bytes. Thin wrapper
/// over [`StoreIndex`]; callers doing repeated lookups should open the
/// index once instead of paying the footer parse per call.
pub fn read_probe(bytes: &[u8], probe: ProbeId) -> Result<ProbeRecords, StoreError> {
    StoreIndex::open(bytes)?.read_probe_indexed(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_types::SimDuration;

    fn sample_dataset() -> AtlasDataset {
        let mut ds = AtlasDataset::default();
        for p in 0..12u32 {
            ds.meta.push(ProbeMeta {
                probe: ProbeId(p),
                version: [ProbeVersion::V1, ProbeVersion::V2, ProbeVersion::V3][p as usize % 3],
                country: Country::new(["DE", "US", "JP", "BR"][p as usize % 4]).unwrap(),
                tags: if p % 2 == 0 {
                    vec![ProbeTag::Home, ProbeTag::Dsl]
                } else {
                    vec![]
                },
            });
            for k in 0..5i64 {
                ds.connections.push(ConnectionLogEntry {
                    probe: ProbeId(p),
                    start: SimTime(k * 10_000 + i64::from(p)),
                    end: SimTime(k * 10_000 + 5_000),
                    peer: if k == 4 {
                        PeerAddr::V6("2001:db8::1".parse().unwrap())
                    } else {
                        PeerAddr::V4(Ipv4Addr::new(10, 0, p as u8, k as u8))
                    },
                });
                ds.kroot.push(KrootPingRecord {
                    probe: ProbeId(p),
                    timestamp: SimTime(k * 240),
                    sent: 3,
                    success: (k % 4) as u8,
                    lts_secs: 86 + k,
                });
            }
            ds.uptime.push(SosUptimeRecord {
                probe: ProbeId(p),
                timestamp: SimTime(i64::from(p) * 7),
                uptime_secs: 262_531 + u64::from(p),
            });
        }
        ds.normalize();
        ds
    }

    fn sample_truth() -> GroundTruth {
        let mut truth = GroundTruth::default();
        for p in 0..6u32 {
            truth.changes.push(TruthChange {
                probe: ProbeId(p),
                time: SimTime(i64::from(p) * 1000),
                from: (p > 0).then(|| Ipv4Addr::new(10, 1, p as u8, 1)),
                to: Ipv4Addr::new(10, 1, p as u8, 2),
                cause: [
                    ChangeCause::PeriodicCap,
                    ChangeCause::PoolRotation,
                    ChangeCause::ScheduledReconnect,
                    ChangeCause::NetworkOutage,
                    ChangeCause::PowerOutage,
                    ChangeCause::Moved,
                ][p as usize % 6],
            });
            truth.outages.push(TruthOutage {
                probe: ProbeId(p),
                kind: [
                    TruthOutageKind::Network,
                    TruthOutageKind::Power,
                    TruthOutageKind::CpeOnlyPower,
                    TruthOutageKind::ProbeOnlyReboot,
                ][p as usize % 4],
                start: SimTime(i64::from(p) * 500),
                duration: SimDuration::from_mins(i64::from(p) + 1),
                address_changed: p % 2 == 0,
            });
        }
        truth.firmware_reboots.push((ProbeId(3), SimTime(12_345)));
        truth.firmware_dates.push(SimTime::from_date(6, 1, 0, 0, 0));
        truth.isp_policies.insert(
            3320,
            IspPolicyTruth {
                name: "Deutsche Telekom".to_string(),
                country: "DE".to_string(),
                periodic_hours: vec![24],
                renumbers_on_reconnect: true,
                periodic_weight: 0.97,
                probes: 1234,
            },
        );
        truth.admin_renumbering = Some((Asn(6830), SimTime::from_date(9, 1, 2, 0, 0)));
        truth.normalize();
        truth
    }

    #[test]
    fn dataset_roundtrips_exactly() {
        let ds = sample_dataset();
        let bytes = dataset_to_bytes(&ds);
        let (back, report) = dataset_from_bytes(&bytes, ReadMode::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(ds, back);
        // Byte-identical through the JSONL fingerprint too.
        assert_eq!(ds.to_jsonl().connections, back.to_jsonl().connections);
        // Re-encode is idempotent.
        assert_eq!(bytes, dataset_to_bytes(&back));
    }

    #[test]
    fn truth_roundtrips_exactly() {
        let truth = sample_truth();
        let bytes = truth_to_bytes(&truth);
        let (back, report) = truth_from_bytes(&bytes, ReadMode::Strict).unwrap();
        assert!(report.is_clean());
        assert_eq!(truth.changes, back.changes);
        assert_eq!(truth.outages, back.outages);
        assert_eq!(truth.firmware_reboots, back.firmware_reboots);
        assert_eq!(truth.firmware_dates, back.firmware_dates);
        assert_eq!(truth.isp_policies, back.isp_policies);
        assert_eq!(truth.admin_renumbering, back.admin_renumbering);
        assert_eq!(bytes, truth_to_bytes(&back));
    }

    #[test]
    fn empty_objects_roundtrip() {
        let ds = AtlasDataset::default();
        let (back, _) =
            dataset_from_bytes(&dataset_to_bytes(&ds), ReadMode::Strict).unwrap();
        assert_eq!(ds, back);
        let truth = GroundTruth::default();
        let (back, _) = truth_from_bytes(&truth_to_bytes(&truth), ReadMode::Strict).unwrap();
        assert_eq!(truth.admin_renumbering, back.admin_renumbering);
        assert!(back.changes.is_empty() && back.isp_policies.is_empty());
    }

    #[test]
    fn probe_random_access_matches_full_decode() {
        let ds = sample_dataset();
        let bytes = dataset_to_bytes(&ds);
        for p in [ProbeId(0), ProbeId(7), ProbeId(11), ProbeId(999)] {
            let got = read_probe(&bytes, p).unwrap();
            assert_eq!(got.meta.as_ref(), ds.meta_of(p));
            assert_eq!(got.connections, ds.connections_of(p));
            assert_eq!(got.kroot, ds.kroot_of(p));
            assert_eq!(got.uptime, ds.uptime_of(p));
        }
    }

    #[test]
    fn float_weights_roundtrip_bit_exactly() {
        let mut truth = GroundTruth::default();
        for (i, w) in [0.1f64, 2.0 / 3.0, f64::MIN_POSITIVE, 1e300].into_iter().enumerate() {
            truth.isp_policies.insert(
                i as u32,
                IspPolicyTruth {
                    name: format!("isp{i}"),
                    country: "DE".to_string(),
                    periodic_hours: vec![],
                    renumbers_on_reconnect: false,
                    periodic_weight: w,
                    probes: 0,
                },
            );
        }
        let (back, _) = truth_from_bytes(&truth_to_bytes(&truth), ReadMode::Strict).unwrap();
        for (asn, policy) in &truth.isp_policies {
            assert_eq!(
                policy.periodic_weight.to_bits(),
                back.isp_policies[asn].periodic_weight.to_bits()
            );
        }
    }
}
