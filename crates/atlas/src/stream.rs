//! Batched, out-of-core reading of a `dataset.store` file.
//!
//! [`DatasetStream`] walks a store file on disk and yields a sequence of
//! small [`AtlasDataset`]s, each holding a contiguous range of whole
//! probes — every row of a probe is in exactly one batch, so any per-probe
//! computation (filtering, outage detection) sees the same inputs it would
//! see on the materialized dataset. Peak memory is one batch plus one
//! decoded segment per table, never the file.
//!
//! Batch boundaries are driven by the meta table (one row per probe in a
//! normalized file): a batch takes the next `batch_probes` meta rows, then
//! drains each log table through the last included probe id. Rows inside
//! a store file are already in canonical `normalize()` order, so each
//! batch is born normalized (the constructor's `normalize()` call only
//! rebuilds the per-probe range index).

use crate::logs::{
    AtlasDataset, ConnectionLogEntry, KrootPingRecord, ProbeMeta, SosUptimeRecord,
};
use dynaddr_store::{ColumnarRecord, SegmentFileReader, SegmentInfo, StoreError};
use std::path::Path;

/// Default probes per batch: large enough that per-batch overhead
/// (index rebuild, executor dispatch) is noise, small enough that a batch
/// of the heaviest table stays a few megabytes.
pub const DEFAULT_BATCH_PROBES: usize = 512;

/// Sequential cursor over one table's segments in a store file.
struct TableCursor<R> {
    /// This table's segments in file order, with their within-table
    /// ordinals (for error naming).
    segs: Vec<(usize, SegmentInfo)>,
    next: usize,
    /// Decoded rows of the current segment not yet handed out.
    buf: Vec<R>,
}

impl<R: ColumnarRecord> TableCursor<R> {
    fn new(reader: &SegmentFileReader) -> TableCursor<R> {
        let segs = reader
            .segments()
            .iter()
            .filter(|e| e.table == R::TABLE_ID)
            .copied()
            .enumerate()
            .collect();
        TableCursor { segs, next: 0, buf: Vec::new() }
    }

    fn exhausted(&self) -> bool {
        self.buf.is_empty() && self.next == self.segs.len()
    }

    /// Takes up to `n` rows, decoding segments as needed.
    fn take_count(
        &mut self,
        reader: &mut SegmentFileReader,
        n: usize,
    ) -> Result<Vec<R>, StoreError> {
        let mut out = Vec::new();
        while out.len() < n {
            if self.buf.is_empty() {
                let Some(&(idx, info)) = self.segs.get(self.next) else { break };
                self.buf = reader.read_segment::<R>(idx, info)?;
                self.next += 1;
            }
            let take = (n - out.len()).min(self.buf.len());
            out.extend(self.buf.drain(..take));
        }
        Ok(out)
    }

    /// Takes every remaining row with key ≤ `hi` (rows are key-sorted, so
    /// this is a prefix; segments whose `key_lo` exceeds `hi` stay on
    /// disk untouched).
    fn take_through(
        &mut self,
        reader: &mut SegmentFileReader,
        hi: u32,
    ) -> Result<Vec<R>, StoreError> {
        let mut out = Vec::new();
        loop {
            if self.buf.is_empty() {
                let Some(&(idx, info)) = self.segs.get(self.next) else { break };
                if info.key_lo > hi {
                    break;
                }
                self.buf = reader.read_segment::<R>(idx, info)?;
                self.next += 1;
            }
            let take = self.buf.partition_point(|r| r.key() <= hi);
            out.extend(self.buf.drain(..take));
            if !self.buf.is_empty() {
                break;
            }
        }
        Ok(out)
    }
}

/// Streams a `dataset.store` file as a sequence of whole-probe batches.
pub struct DatasetStream {
    reader: SegmentFileReader,
    meta: TableCursor<ProbeMeta>,
    connections: TableCursor<ConnectionLogEntry>,
    kroot: TableCursor<KrootPingRecord>,
    uptime: TableCursor<SosUptimeRecord>,
    batch_probes: usize,
}

impl DatasetStream {
    /// Opens a store file for streaming with [`DEFAULT_BATCH_PROBES`]
    /// probes per batch. Only the footer index is read here.
    pub fn open(path: &Path) -> Result<DatasetStream, StoreError> {
        DatasetStream::with_batch_probes(path, DEFAULT_BATCH_PROBES)
    }

    /// [`DatasetStream::open`] with an explicit batch size (clamped to at
    /// least 1 probe).
    pub fn with_batch_probes(path: &Path, batch_probes: usize) -> Result<DatasetStream, StoreError> {
        let reader = SegmentFileReader::open(path)?;
        Ok(DatasetStream {
            meta: TableCursor::new(&reader),
            connections: TableCursor::new(&reader),
            kroot: TableCursor::new(&reader),
            uptime: TableCursor::new(&reader),
            reader,
            batch_probes,
        })
    }

    /// Probes (meta rows) the file's index records, available before any
    /// batch is decoded.
    pub fn total_probes(&self) -> u64 {
        self.reader.table_rows(ProbeMeta::TABLE_ID)
    }

    /// Decodes and returns the next batch of whole probes, `None` once
    /// every table is drained. Each batch is normalized and indexed, so
    /// `connections_of`/`kroot_of`/`uptime_of` work as on the full
    /// dataset (restricted to the batch's probes).
    pub fn next_batch(&mut self) -> Result<Option<AtlasDataset>, StoreError> {
        let meta = self.meta.take_count(&mut self.reader, self.batch_probes)?;
        // Rows beyond the last meta'd probe can only exist in a file not
        // produced by the simulator; u32::MAX drains such stragglers into
        // the final batch rather than losing them.
        let hi = if self.meta.exhausted() {
            u32::MAX
        } else {
            meta.last().expect("cursor not exhausted, batch_probes >= 1").probe.0
        };
        let connections = self.connections.take_through(&mut self.reader, hi)?;
        let kroot = self.kroot.take_through(&mut self.reader, hi)?;
        let uptime = self.uptime.take_through(&mut self.reader, hi)?;
        if meta.is_empty() && connections.is_empty() && kroot.is_empty() && uptime.is_empty() {
            return Ok(None);
        }
        let mut batch =
            AtlasDataset { meta, connections, kroot, uptime, ..AtlasDataset::default() };
        batch.normalize();
        Ok(Some(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logs::PeerAddr;
    use crate::world::paper_world;
    use crate::{simulate, SimOptions};
    use dynaddr_store::FileWriter;
    use dynaddr_types::{Country, ProbeId, ProbeVersion, SimTime};

    /// Writes `ds` as a store file with a given segment row cap, so tests
    /// can force one probe's rows across a segment boundary.
    fn write_store(ds: &AtlasDataset, segment_rows: usize, name: &str) -> std::path::PathBuf {
        let mut w = FileWriter::with_segment_rows(segment_rows);
        w.write_table(&ds.meta);
        w.write_table(&ds.connections);
        w.write_table(&ds.kroot);
        w.write_table(&ds.uptime);
        let dir = std::env::temp_dir().join("dynaddr-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.store", std::process::id()));
        std::fs::write(&path, w.finish()).unwrap();
        path
    }

    fn meta(probe: u32) -> ProbeMeta {
        ProbeMeta {
            probe: ProbeId(probe),
            version: ProbeVersion::V3,
            country: Country::new("DE").unwrap(),
            tags: Vec::new(),
        }
    }

    fn conn(probe: u32, start: i64) -> ConnectionLogEntry {
        ConnectionLogEntry {
            probe: ProbeId(probe),
            start: SimTime(start),
            end: SimTime(start + 60),
            peer: PeerAddr::V4("10.0.0.1".parse().unwrap()),
        }
    }

    #[test]
    fn empty_store_yields_no_batches() {
        let ds = AtlasDataset::default();
        let path = write_store(&ds, 4, "empty");
        let mut stream = DatasetStream::open(&path).unwrap();
        assert_eq!(stream.total_probes(), 0);
        assert!(stream.next_batch().unwrap().is_none());
        // Stays drained: asking again is fine and still empty.
        assert!(stream.next_batch().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_probe_store_is_one_batch_at_any_batch_size() {
        let mut ds = AtlasDataset {
            meta: vec![meta(7)],
            connections: vec![conn(7, 0), conn(7, 100), conn(7, 200)],
            kroot: vec![KrootPingRecord {
                probe: ProbeId(7),
                timestamp: SimTime(50),
                sent: 3,
                success: 3,
                lts_secs: 10,
            }],
            uptime: vec![SosUptimeRecord {
                probe: ProbeId(7),
                timestamp: SimTime(100),
                uptime_secs: 90,
            }],
            ..AtlasDataset::default()
        };
        ds.normalize();
        let path = write_store(&ds, 4, "single");
        for batch_probes in [1usize, 2, DEFAULT_BATCH_PROBES] {
            let mut stream = DatasetStream::with_batch_probes(&path, batch_probes).unwrap();
            assert_eq!(stream.total_probes(), 1);
            let batch = stream.next_batch().unwrap().expect("one batch");
            assert_eq!(batch, ds, "batch_probes={batch_probes}");
            assert!(stream.next_batch().unwrap().is_none());
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// A probe whose connection rows span a segment boundary must still
    /// arrive whole in one batch: `take_through` keeps draining segments
    /// until the probe's key range ends, not just until the first segment
    /// boundary.
    #[test]
    fn probe_spanning_a_segment_boundary_stays_whole() {
        let mut ds = AtlasDataset {
            meta: vec![meta(1), meta(2)],
            // Probe 1 fills most of the first 4-row segment; probe 2's six
            // rows then straddle segments {1|2}: [1,1,1,2][2,2,2,2][2].
            connections: vec![
                conn(1, 0),
                conn(1, 100),
                conn(1, 200),
                conn(2, 0),
                conn(2, 100),
                conn(2, 200),
                conn(2, 300),
                conn(2, 400),
                conn(2, 500),
            ],
            ..AtlasDataset::default()
        };
        ds.normalize();
        let path = write_store(&ds, 4, "boundary");
        let mut stream = DatasetStream::with_batch_probes(&path, 1).unwrap();

        let first = stream.next_batch().unwrap().expect("probe 1");
        assert_eq!(first.meta.len(), 1);
        assert_eq!(first.meta[0].probe, ProbeId(1));
        assert_eq!(first.connections.len(), 3);

        let second = stream.next_batch().unwrap().expect("probe 2");
        assert_eq!(second.meta.len(), 1);
        assert_eq!(second.meta[0].probe, ProbeId(2));
        assert_eq!(second.connections.len(), 6, "rows split across segments reassemble");
        assert!(second.connections.iter().all(|e| e.probe == ProbeId(2)));

        assert!(stream.next_batch().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batches_reassemble_the_dataset_at_any_batch_size() {
        let out = simulate(&paper_world(0.01, 3));
        let dir = std::env::temp_dir().join("dynaddr-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reassemble.store");
        crate::sim::simulate_to_store(&paper_world(0.01, 3), &SimOptions::default(), &path)
            .unwrap();

        for batch_probes in [1usize, 7, 64, 100_000] {
            let mut stream = DatasetStream::with_batch_probes(&path, batch_probes).unwrap();
            assert_eq!(stream.total_probes(), out.dataset.meta.len() as u64);
            let mut rebuilt = AtlasDataset::default();
            let mut last_hi: Option<u32> = None;
            while let Some(batch) = stream.next_batch().unwrap() {
                // Whole probes, in ascending order, never split.
                let lo = batch.meta.first().unwrap().probe.0;
                if let Some(prev) = last_hi {
                    assert!(lo > prev, "batch overlaps its predecessor");
                }
                last_hi = Some(batch.meta.last().unwrap().probe.0);
                rebuilt.meta.extend(batch.meta.iter().cloned());
                rebuilt.connections.extend(batch.connections.iter().cloned());
                rebuilt.kroot.extend(batch.kroot.iter().cloned());
                rebuilt.uptime.extend(batch.uptime.iter().cloned());
            }
            rebuilt.normalize();
            assert_eq!(rebuilt, out.dataset, "batch_probes={batch_probes}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
