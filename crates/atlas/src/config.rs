//! World configuration: the knobs that define a simulated deployment.
//!
//! A world is a set of ISPs hosting *analyzable* probes (the event-driven
//! part of the simulation), plus populations of *filler* probes — dual-stack,
//! IPv6-only, multihomed, never-changed, testing-address — generated
//! procedurally so the Table 2 filtering funnel has realistic input.

use dynaddr_ispnet::pool::AllocationPolicy;
use dynaddr_ispnet::AccessConfig;
use dynaddr_types::dist::DurationDist;
use dynaddr_types::{Asn, Country, Prefix, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How the CPEs of an ISP are split across access configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessShare {
    /// Relative weight of this share (need not sum to 1 across shares).
    pub weight: f64,
    /// Access configuration for CPEs in this share.
    pub access: AccessConfig,
    /// CPE scheduled nightly reconnect (the privacy feature of §4.4.3):
    /// fraction of this share's CPEs that disconnect/reconnect daily at a
    /// fixed local hour.
    pub schedule: Option<CpeSchedule>,
}

/// Per-CPE scheduled daily reconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpeSchedule {
    /// Fraction of CPEs in the share that have the feature enabled.
    pub adoption: f64,
    /// GMT hours `[start, end)` the reconnect time is drawn from. May wrap
    /// midnight (e.g. `start=22, end=6`).
    pub window_start_hour: u32,
    /// End of the window (exclusive).
    pub window_end_hour: u32,
    /// Probability a given night's reconnect is skipped (harmonics).
    pub skip_prob: f64,
}

/// Outage processes of an ISP's customer base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageSpec {
    /// Mean network outages per probe per year.
    pub network_per_year: f64,
    /// Network outage duration distribution (seconds).
    pub network_duration: DurationDist,
    /// Mean power outages (incl. CPE reboots) per probe per year.
    pub power_per_year: f64,
    /// Power outage duration distribution (seconds).
    pub power_duration: DurationDist,
}

impl OutageSpec {
    /// A typical residential profile: a couple of outages per month, most
    /// of them minutes long, with a heavy tail reaching days.
    pub fn residential() -> OutageSpec {
        OutageSpec {
            network_per_year: 22.0,
            network_duration: DurationDist::Mixture(vec![
                // Short blips and reconnects: a few minutes.
                (0.55, DurationDist::LogNormal { mu: 5.6, sigma: 0.6 }), // ~4.5 min
                // Medium outages: tens of minutes to hours.
                (0.33, DurationDist::LogNormal { mu: 8.0, sigma: 1.0 }), // ~50 min
                // Heavy tail: many hours to days.
                (0.12, DurationDist::Pareto { xm: 4.0 * 3600.0, alpha: 1.1 }),
            ]),
            power_per_year: 12.0,
            power_duration: DurationDist::Mixture(vec![
                // CPE reboots: 1.5–4 minutes.
                (0.62, DurationDist::Uniform { lo: 90.0, hi: 240.0 }),
                // Real power cuts: tens of minutes to hours.
                (0.28, DurationDist::LogNormal { mu: 7.6, sigma: 1.0 }), // ~33 min
                // Long cuts: heavy tail.
                (0.10, DurationDist::Pareto { xm: 3.0 * 3600.0, alpha: 1.2 }),
            ]),
        }
    }

    /// A quieter profile (well-provisioned networks).
    pub fn stable() -> OutageSpec {
        let mut spec = OutageSpec::residential();
        spec.network_per_year = 10.0;
        spec.power_per_year = 6.0;
        spec
    }
}

/// One ISP hosting analyzable probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspSpec {
    /// Display name (matches the paper's tables).
    pub name: String,
    /// Autonomous system number.
    pub asn: Asn,
    /// Country of the deployment.
    pub country: Country,
    /// Number of probes hosted in this ISP.
    pub probes: usize,
    /// Prefixes of the dynamic pool.
    pub prefixes: Vec<Prefix>,
    /// Pool allocation policy (controls Table 7 cross-prefix rates).
    pub allocation: AllocationPolicy,
    /// Background pool occupancy `0.0..1.0`.
    pub occupancy: f64,
    /// Access-technology shares.
    pub shares: Vec<AccessShare>,
    /// Outage processes.
    pub outages: OutageSpec,
    /// Fraction of probes powered over the CPE's USB port (fate-shared
    /// power, §5.1).
    pub usb_fate_shared: f64,
    /// Probe hardware mix `(v1, v2, v3)` fractions; normalized on use.
    pub version_mix: (f64, f64, f64),
}

impl IspSpec {
    /// A plain DHCP ISP with sensible defaults; customize from here.
    pub fn new(name: &str, asn: u32, country: &str, probes: usize) -> IspSpec {
        IspSpec {
            name: name.to_string(),
            asn: Asn(asn),
            country: Country::new(country).expect("valid country code"),
            probes,
            prefixes: Vec::new(),
            allocation: AllocationPolicy::PreferPrevious,
            occupancy: 0.6,
            shares: vec![AccessShare {
                weight: 1.0,
                access: AccessConfig::Dhcp(dynaddr_ispnet::DhcpConfig::default()),
                schedule: None,
            }],
            outages: OutageSpec::residential(),
            usb_fate_shared: 0.85,
            version_mix: (0.08, 0.12, 0.80),
        }
    }
}

/// Counts of procedurally generated filler probes (Table 2 funnel input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FillerSpec {
    /// Probes whose address never changes all year.
    pub never_changed: usize,
    /// Dual-stack probes alternating IPv4/IPv6 connections.
    pub dual_stack: usize,
    /// IPv6-only probes.
    pub ipv6_only: usize,
    /// Probes carrying a disqualifying tag (multihomed/datacentre/core).
    pub tagged: usize,
    /// Fraction of tagged probes that also *behave* multihomed
    /// (alternate between a fixed and a changing address).
    pub tagged_alternating_frac: f64,
    /// Untagged probes with multihomed (alternating-address) behaviour.
    pub alternating: usize,
    /// Probes whose only address change is away from 193.0.0.78.
    pub testing_static: usize,
}

impl FillerSpec {
    /// No filler at all (unit-test worlds).
    pub fn none() -> FillerSpec {
        FillerSpec {
            never_changed: 0,
            dual_stack: 0,
            ipv6_only: 0,
            tagged: 0,
            tagged_alternating_frac: 0.2,
            alternating: 0,
            testing_static: 0,
        }
    }
}

/// The full world configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Root seed for all randomness.
    pub seed: u64,
    /// ISPs hosting analyzable probes.
    pub isps: Vec<IspSpec>,
    /// Filler probe populations.
    pub filler: FillerSpec,
    /// Number of probes that move between two ISPs mid-year (multi-AS
    /// probes, filtered from the AS-level analysis).
    pub movers: usize,
    /// Firmware push dates (§5.2; five in 2015).
    pub firmware_dates: Vec<SimTime>,
    /// Fraction of probes that install a given firmware update (and hence
    /// reboot shortly after the push date).
    pub firmware_uptake: f64,
    /// Cadence of materialized all-OK k-root heartbeat records. The probe
    /// logically measures every 4 minutes; quiet periods are thinned to this
    /// cadence in the emitted log (records around outages are always
    /// materialized at the 4-minute grid, so detection is unaffected).
    pub kroot_heartbeat: SimDuration,
    /// Probability that a v1/v2 probe spontaneously reboots when it makes a
    /// new TCP connection (memory fragmentation, §5.1).
    pub frail_reboot_prob: f64,
    /// Rate of controller-side connection drops per probe per year (gaps
    /// with neither outage nor address change).
    pub controller_drops_per_year: f64,
    /// Optional administrative renumbering: (ASN, date, new prefixes).
    pub admin_renumber: Option<(Asn, SimTime, Vec<Prefix>)>,
}

impl WorldConfig {
    /// An empty world with the given seed; add ISPs and filler.
    pub fn empty(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            isps: Vec::new(),
            filler: FillerSpec::none(),
            movers: 0,
            firmware_dates: Vec::new(),
            firmware_uptake: 0.85,
            kroot_heartbeat: SimDuration::from_hours(12),
            frail_reboot_prob: 0.35,
            controller_drops_per_year: 10.0,
            admin_renumber: None,
        }
    }

    /// The five firmware push dates the paper identifies in 2015 (§5.2).
    pub fn firmware_dates_2015() -> Vec<SimTime> {
        vec![
            SimTime::from_date(1, 25, 10, 0, 0),
            SimTime::from_date(3, 23, 10, 0, 0),
            SimTime::from_date(4, 14, 10, 0, 0),
            SimTime::from_date(7, 6, 10, 0, 0),
            SimTime::from_date(10, 5, 10, 0, 0),
        ]
    }

    /// Total probe count across ISPs, filler, and movers.
    pub fn total_probes(&self) -> usize {
        self.isps.iter().map(|i| i.probes).sum::<usize>()
            + self.filler.never_changed
            + self.filler.dual_stack
            + self.filler.ipv6_only
            + self.filler.tagged
            + self.filler.alternating
            + self.filler.testing_static
            + self.movers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residential_outage_profile_is_plausible() {
        let spec = OutageSpec::residential();
        // Mean power outage duration should be minutes-to-hours scale.
        let mean = spec.power_duration.mean();
        // Pareto alpha > 1 so a mean exists.
        let mean = mean.expect("finite mean");
        assert!(mean > 60.0 && mean < 24.0 * 3600.0, "mean {mean}s");
    }

    #[test]
    fn isp_spec_defaults() {
        let spec = IspSpec::new("TestNet", 64500, "DE", 10);
        assert_eq!(spec.asn, Asn(64500));
        assert_eq!(spec.country.code(), "DE");
        assert_eq!(spec.shares.len(), 1);
        let (v1, v2, v3) = spec.version_mix;
        assert!((v1 + v2 + v3 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn firmware_dates_match_paper() {
        let dates = WorldConfig::firmware_dates_2015();
        assert_eq!(dates.len(), 5);
        assert_eq!(dates[0].month_day(), (1, 25));
        assert_eq!(dates[2].month_day(), (4, 14));
        assert_eq!(dates[4].month_day(), (10, 5));
        assert!(dates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn total_probes_sums_everything() {
        let mut w = WorldConfig::empty(1);
        w.isps.push(IspSpec::new("A", 1, "DE", 10));
        w.isps.push(IspSpec::new("B", 2, "FR", 5));
        w.filler.never_changed = 7;
        w.filler.dual_stack = 3;
        w.movers = 2;
        assert_eq!(w.total_probes(), 27);
    }
}
