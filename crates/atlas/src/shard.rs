//! Partitioning the world into independently simulable shards.
//!
//! Probes only interact through their `(ISP, access-share)` network: every
//! event handler touches one probe and one net. The two couplings that span
//! nets are (a) administrative renumbering, which rebuilds *all* share-nets
//! of one ASN and reconnects all of its probes, and (b) mover probes, which
//! hold a reference to a target net in another ISP. Building connected
//! components over nets with "same ASN" and "mover origin→target" edges
//! therefore yields groups with no shared mutable state at all — each can
//! run its own event queue on its own thread.
//!
//! The component ids produced here are *dense and in first-seen order by net
//! index*, so assigning component `c` to shard `c % k` distributes nets
//! deterministically for any forced shard count `k`.

/// Union-find (disjoint-set) over `0..n` with path halving.
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect() }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller root wins. No rank heuristic — path
            // halving alone keeps the forest shallow at our sizes.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }

    /// Labels every element with a dense component id, ids assigned in
    /// first-seen order by element index. Returns `(component_of, count)`.
    pub fn dense_components(&mut self) -> (Vec<usize>, usize) {
        let n = self.parent.len();
        let mut id_of_root = vec![usize::MAX; n];
        let mut comp_of = vec![0usize; n];
        let mut count = 0usize;
        for x in 0..n {
            let r = self.find(x);
            if id_of_root[r] == usize::MAX {
                id_of_root[r] = count;
                count += 1;
            }
            comp_of[x] = id_of_root[r];
        }
        (comp_of, count)
    }
}

/// How many shards to build for `n_comps` components under an optional
/// forced cap. Defaults to one shard per component; a cap folds components
/// together (`comp % cap`) without ever producing empty shards.
pub fn shard_count(n_comps: usize, cap: Option<usize>) -> usize {
    match cap {
        Some(k) => k.clamp(1, n_comps.max(1)),
        None => n_comps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_components() {
        let mut uf = UnionFind::new(4);
        let (comp, n) = uf.dense_components();
        assert_eq!(comp, vec![0, 1, 2, 3]);
        assert_eq!(n, 4);
    }

    #[test]
    fn unions_merge_transitively() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let (comp, n) = uf.dense_components();
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[2], comp[4]);
        assert_eq!(comp[1], comp[5]);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[1], comp[3]);
    }

    #[test]
    fn component_ids_are_dense_and_first_seen_ordered() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 4); // later elements share a set…
        uf.union(0, 1); // …but 0 is seen first, so its set gets id 0
        let (comp, n) = uf.dense_components();
        assert_eq!(n, 3);
        assert_eq!(comp, vec![0, 0, 1, 2, 2]);
    }

    #[test]
    fn union_order_does_not_change_labels() {
        let edges = [(0, 3), (3, 5), (1, 2)];
        let mut fwd = UnionFind::new(6);
        for &(a, b) in &edges {
            fwd.union(a, b);
        }
        let mut rev = UnionFind::new(6);
        for &(a, b) in edges.iter().rev() {
            rev.union(b, a);
        }
        assert_eq!(fwd.dense_components(), rev.dense_components());
    }

    #[test]
    fn shard_count_clamps_cap() {
        assert_eq!(shard_count(7, None), 7);
        assert_eq!(shard_count(7, Some(3)), 3);
        assert_eq!(shard_count(7, Some(100)), 7);
        assert_eq!(shard_count(7, Some(0)), 1);
        assert_eq!(shard_count(0, None), 0);
        assert_eq!(shard_count(0, Some(4)), 1);
    }
}
