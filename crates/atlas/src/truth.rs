//! Ground truth emitted by the simulator alongside the logs.
//!
//! The paper validates inferences against private ISP communication; we can
//! do better — the simulator knows exactly why every address changed and
//! when every outage happened. The analysis pipeline never sees this; tests
//! and `EXPERIMENTS.md` compare pipeline inferences against it.

use dynaddr_types::{Asn, ProbeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Why an address change happened, from the simulator's omniscient view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeCause {
    /// ISP session cap (periodic renumbering) fired.
    PeriodicCap,
    /// DHCP administrative pool rotation moved the client (non-periodic,
    /// weeks-scale churn).
    PoolRotation,
    /// CPE's scheduled nightly reconnect (privacy feature) fired.
    ScheduledReconnect,
    /// Recovery from a network outage.
    NetworkOutage,
    /// Recovery from a power outage (includes CPE reboots).
    PowerOutage,
    /// Administrative en-masse renumbering.
    AdminRenumber,
    /// The probe physically moved to a different ISP.
    Moved,
}

/// One address change with its true cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthChange {
    /// Affected probe.
    pub probe: ProbeId,
    /// When the new address took effect.
    pub time: SimTime,
    /// Address before the change (None at first assignment).
    pub from: Option<Ipv4Addr>,
    /// Address after the change.
    pub to: Ipv4Addr,
    /// Why it changed.
    pub cause: ChangeCause,
}

/// Kind of a true outage event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TruthOutageKind {
    /// Loss of connectivity while the probe stayed powered.
    Network,
    /// Loss of power to CPE and probe (fate-shared), incl. reboots.
    Power,
    /// Loss of power to the CPE only (probe on independent power) — appears
    /// to the probe as a network outage.
    CpeOnlyPower,
    /// Probe-only reboot (firmware update or v1/v2 fragility); the CPE and
    /// its address are unaffected.
    ProbeOnlyReboot,
}

/// One true outage event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthOutage {
    /// Affected probe.
    pub probe: ProbeId,
    /// Outage kind.
    pub kind: TruthOutageKind,
    /// When connectivity/power was lost.
    pub start: SimTime,
    /// How long it lasted.
    pub duration: SimDuration,
    /// Whether the recovery came with a new address.
    pub address_changed: bool,
}

/// Ground-truth summary of one ISP's configured policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspPolicyTruth {
    /// ISP display name.
    pub name: String,
    /// Country code of the ISP's main footprint.
    pub country: String,
    /// Configured periodic renumbering period in hours, if any. Mixed
    /// deployments may carry several (e.g. Orange Polska's 22 h and 24 h).
    pub periodic_hours: Vec<i64>,
    /// Whether reconnects renumber (PPP-style).
    pub renumbers_on_reconnect: bool,
    /// Fraction of the customer base on periodically-renumbered plans.
    pub periodic_weight: f64,
    /// Number of simulated probes in the ISP.
    pub probes: usize,
}

/// Everything the simulator knows that the pipeline must re-infer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Every address change with its cause.
    pub changes: Vec<TruthChange>,
    /// Every outage event.
    pub outages: Vec<TruthOutage>,
    /// Probe reboots caused by firmware pushes: (probe, reboot time).
    pub firmware_reboots: Vec<(ProbeId, SimTime)>,
    /// Configured policy per ISP ASN.
    pub isp_policies: BTreeMap<u32, IspPolicyTruth>,
    /// The dates firmware updates were pushed.
    pub firmware_dates: Vec<SimTime>,
    /// ASN that performed an administrative renumbering, with the date.
    pub admin_renumbering: Option<(Asn, SimTime)>,
}

impl GroundTruth {
    /// Puts the event vectors into canonical order: changes by
    /// (time, probe), outages by (start, probe), firmware reboots by
    /// (time, probe). Per-probe events come from one simulation shard in
    /// deterministic relative order, so after this stable sort the truth is
    /// byte-identical no matter how shards were grouped or merged.
    pub fn normalize(&mut self) {
        self.changes.sort_by_key(|c| (c.time, c.probe));
        self.outages.sort_by_key(|o| (o.start, o.probe));
        self.firmware_reboots.sort_by_key(|&(p, t)| (t, p));
    }

    /// Encodes the truth as one segmented columnar store file
    /// (see [`crate::store`]).
    pub fn to_store_bytes(&self) -> Vec<u8> {
        crate::store::truth_to_bytes(self)
    }

    /// Decodes a truth from store bytes, failing on the first corrupt
    /// segment.
    pub fn from_store_bytes(bytes: &[u8]) -> Result<GroundTruth, dynaddr_store::StoreError> {
        crate::store::truth_from_bytes(bytes, dynaddr_store::ReadMode::Strict)
            .map(|(truth, _)| truth)
    }

    /// Decodes a truth from store bytes, skipping corrupt segments and
    /// reporting what was dropped.
    pub fn from_store_bytes_recover(
        bytes: &[u8],
    ) -> Result<(GroundTruth, dynaddr_store::RecoveryReport), dynaddr_store::StoreError> {
        crate::store::truth_from_bytes(bytes, dynaddr_store::ReadMode::Recover)
    }

    /// Changes recorded for one probe, in time order.
    pub fn changes_of(&self, probe: ProbeId) -> Vec<&TruthChange> {
        let mut v: Vec<&TruthChange> =
            self.changes.iter().filter(|c| c.probe == probe).collect();
        v.sort_by_key(|c| c.time);
        v
    }

    /// Counts changes by cause across all probes.
    pub fn cause_histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for c in &self.changes {
            *h.entry(format!("{:?}", c.cause)).or_insert(0) += 1;
        }
        h
    }

    /// Fraction of outages of a kind that changed the address.
    pub fn outage_change_rate(&self, kind: TruthOutageKind) -> Option<f64> {
        let of_kind: Vec<&TruthOutage> =
            self.outages.iter().filter(|o| o.kind == kind).collect();
        if of_kind.is_empty() {
            return None;
        }
        let changed = of_kind.iter().filter(|o| o.address_changed).count();
        Some(changed as f64 / of_kind.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change(probe: u32, time: i64, cause: ChangeCause) -> TruthChange {
        TruthChange {
            probe: ProbeId(probe),
            time: SimTime(time),
            from: None,
            to: Ipv4Addr::new(10, 0, 0, 1),
            cause,
        }
    }

    #[test]
    fn changes_of_sorts_by_time() {
        let mut gt = GroundTruth::default();
        gt.changes.push(change(1, 500, ChangeCause::PeriodicCap));
        gt.changes.push(change(1, 100, ChangeCause::NetworkOutage));
        gt.changes.push(change(2, 50, ChangeCause::Moved));
        let of_one = gt.changes_of(ProbeId(1));
        assert_eq!(of_one.len(), 2);
        assert!(of_one[0].time < of_one[1].time);
    }

    #[test]
    fn cause_histogram_counts() {
        let mut gt = GroundTruth::default();
        gt.changes.push(change(1, 0, ChangeCause::PeriodicCap));
        gt.changes.push(change(1, 1, ChangeCause::PeriodicCap));
        gt.changes.push(change(2, 2, ChangeCause::PowerOutage));
        let h = gt.cause_histogram();
        assert_eq!(h.get("PeriodicCap"), Some(&2));
        assert_eq!(h.get("PowerOutage"), Some(&1));
    }

    #[test]
    fn outage_change_rate() {
        let mut gt = GroundTruth::default();
        for (i, changed) in [(0, true), (1, true), (2, false), (3, false)] {
            gt.outages.push(TruthOutage {
                probe: ProbeId(i),
                kind: TruthOutageKind::Network,
                start: SimTime(0),
                duration: SimDuration::from_mins(5),
                address_changed: changed,
            });
        }
        assert_eq!(gt.outage_change_rate(TruthOutageKind::Network), Some(0.5));
        assert_eq!(gt.outage_change_rate(TruthOutageKind::Power), None);
    }
}
