//! The scripted "paper world": a deployment whose configured ground truth
//! mirrors the populations behind the paper's tables and figures.
//!
//! Every named ISP in Tables 5, 6, and 7 is present with its ASN, country,
//! probe count, periodic-renumbering plan (period, skip probability, CPE
//! schedule), access technology, and a pool prefix layout chosen so the
//! cross-BGP / cross-/16 / cross-/8 rates land near the paper's Table 7.
//! Background ISPs per continent shape the Fig. 1 geography, and filler
//! populations feed the Table 2 funnel.
//!
//! Everything scales with a single `scale` factor so tests can run a 5%
//! world while the `repro` harness runs a large one. Named ISPs keep a
//! minimum probe count so the per-AS tables stay populated at any scale.

use crate::config::{AccessShare, CpeSchedule, FillerSpec, IspSpec, OutageSpec, WorldConfig};
use dynaddr_ip2as::{MonthlySnapshots, RouteTable};
use dynaddr_ispnet::pool::AllocationPolicy;
use dynaddr_ispnet::{AccessConfig, DhcpConfig, PppConfig};
use dynaddr_types::dist::DurationDist;
use dynaddr_types::{Asn, Prefix, SimDuration, SimTime};

// ---------------------------------------------------------------------------
// Access-config shorthands
// ---------------------------------------------------------------------------

fn ppp_cap(hours: i64, skip: f64) -> AccessConfig {
    AccessConfig::Ppp(PppConfig {
        session_cap: Some(SimDuration::from_hours(hours)),
        skip_renumber_prob: skip,
        ..PppConfig::default()
    })
}

/// Cap whose skipped terminations extend the session by a random,
/// non-harmonic amount — Global Village Telecom's odd Table 5 row.
fn ppp_cap_nonharmonic(hours: i64, skip: f64, ext_hours: (f64, f64)) -> AccessConfig {
    AccessConfig::Ppp(PppConfig {
        session_cap: Some(SimDuration::from_hours(hours)),
        skip_renumber_prob: skip,
        skip_extension: Some(DurationDist::Uniform {
            lo: ext_hours.0 * 3_600.0,
            hi: ext_hours.1 * 3_600.0,
        }),
        ..PppConfig::default()
    })
}

fn ppp_uncapped() -> AccessConfig {
    AccessConfig::Ppp(PppConfig::default())
}

fn dhcp(lease_hours: i64, churn_per_hour: f64) -> AccessConfig {
    AccessConfig::Dhcp(DhcpConfig {
        lease: SimDuration::from_hours(lease_hours),
        renew_at: 0.5,
        churn_rate_per_hour: churn_per_hour,
        rotation_mean: None,
    })
}

/// DHCP with administrative pool rotation every ~`rotation_days` on average:
/// the weeks-scale, modeless churn of North American and cable ISPs.
fn dhcp_rotating(lease_hours: i64, churn_per_hour: f64, rotation_days: i64) -> AccessConfig {
    AccessConfig::Dhcp(DhcpConfig {
        lease: SimDuration::from_hours(lease_hours),
        renew_at: 0.5,
        churn_rate_per_hour: churn_per_hour,
        rotation_mean: Some(SimDuration::from_days(rotation_days)),
    })
}

fn share(weight: f64, access: AccessConfig) -> AccessShare {
    AccessShare { weight, access, schedule: None }
}

fn share_scheduled(weight: f64, window: (u32, u32), skip: f64) -> AccessShare {
    AccessShare {
        weight,
        // The CPE schedule drives the daily renumbering; the session itself
        // is uncapped so the two mechanisms do not race.
        access: ppp_uncapped(),
        schedule: Some(CpeSchedule {
            adoption: 1.0,
            window_start_hour: window.0,
            window_end_hour: window.1,
            skip_prob: skip,
        }),
    }
}

// ---------------------------------------------------------------------------
// Prefix carving
// ---------------------------------------------------------------------------

/// Hands out disjoint /8 blocks to ISPs and carves pool prefixes from them.
struct PrefixAlloc {
    next: u8,
}

impl PrefixAlloc {
    fn new() -> PrefixAlloc {
        PrefixAlloc { next: 2 }
    }

    fn slash8(&mut self) -> u8 {
        loop {
            let v = self.next;
            assert!(v < 224, "ran out of /8 space for the world");
            self.next += 1;
            // Skip private space (10/8), loopback (127/8), the filler
            // address space (130–190, used by procedurally generated filler
            // probes), and 193/8 (the RIPE testing address lives there).
            if v == 10 || (127..=190).contains(&v) || v == 193 {
                continue;
            }
            return v;
        }
    }

    /// `layout`: per prefix, `(slash8_slot, second_octet, len)`. Slots index
    /// into freshly allocated /8s for this ISP, so e.g. slots `[0,0,1]` put
    /// two prefixes in one /8 and the third in another.
    fn carve(&mut self, layout: &[(usize, u8, u8)]) -> Vec<Prefix> {
        let slots_needed = layout.iter().map(|(s, _, _)| *s).max().unwrap_or(0) + 1;
        let bases: Vec<u8> = (0..slots_needed).map(|_| self.slash8()).collect();
        layout
            .iter()
            .map(|&(slot, second, len)| {
                Prefix::new(std::net::Ipv4Addr::new(bases[slot], second, 0, 0), len)
                    .expect("static layouts are valid")
            })
            .collect()
    }
}

fn scaled(n: usize, scale: f64, min: usize) -> usize {
    ((n as f64 * scale).round() as usize).max(min)
}

// ---------------------------------------------------------------------------
// The world
// ---------------------------------------------------------------------------

/// Builds the scripted paper world at a given scale (1.0 ≈ the paper's
/// 10,977-probe deployment; tests typically use 0.05–0.2).
pub fn paper_world(scale: f64, seed: u64) -> WorldConfig {
    assert!(scale > 0.0, "scale must be positive");
    let mut w = WorldConfig::empty(seed);
    w.firmware_dates = WorldConfig::firmware_dates_2015();
    let mut alloc = PrefixAlloc::new();
    let s = scale;

    let mut isps: Vec<IspSpec> = Vec::new();

    // --- Periodic ISPs (Table 5) ------------------------------------------

    // Orange FR: one-week sessions, free-running; 68% of changes cross BGP
    // prefixes (Table 7) — four /16s in three /8s, nearly random allocation.
    let mut orange = IspSpec::new("Orange", 3215, "FR", scaled(130, s, 8));
    orange.prefixes = alloc.carve(&[(0, 0, 16), (0, 64, 16), (1, 0, 16), (2, 0, 16)]);
    orange.allocation = AllocationPolicy::SamePrefixBias(0.10);
    orange.shares = vec![
        share(0.86, ppp_cap(168, 0.0)),
        share(0.04, ppp_cap(168, 0.012)),
        share(0.10, ppp_uncapped()),
    ];
    isps.push(orange);

    // Deutsche Telekom: 24-hour renumbering, ~72% of it scheduled by CPEs
    // between 00:00 and 06:00 GMT (Fig. 5); low cross-prefix rates (Table 7).
    let mut dtag = IspSpec::new("DTAG", 3320, "DE", scaled(70, s, 8));
    dtag.prefixes = alloc.carve(&[(0, 0, 16), (0, 80, 16), (0, 160, 16), (1, 0, 16)]);
    dtag.allocation = AllocationPolicy::SamePrefixBias(0.70);
    dtag.shares = vec![
        share_scheduled(0.52, (0, 6), 0.0),
        share_scheduled(0.13, (0, 6), 0.02),
        share(0.17, ppp_cap(24, 0.0)),
        share(0.08, ppp_cap(24, 0.015)),
        share(0.10, ppp_uncapped()),
    ];
    isps.push(dtag);

    // Telefonica Germany (two ASes): 24-hour periods, most probes see the
    // occasional skipped night (low MAX ≤ d in Table 5).
    let mut tef2 = IspSpec::new("Telefonica DE 2", 6805, "DE", scaled(18, s, 6));
    tef2.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16), (1, 0, 16)]);
    tef2.allocation = AllocationPolicy::SamePrefixBias(0.35);
    tef2.shares = vec![
        share(0.22, ppp_cap(24, 0.0)),
        share(0.66, ppp_cap(24, 0.006)),
        share(0.12, ppp_uncapped()),
    ];
    isps.push(tef2);

    let mut tef1 = IspSpec::new("Telefonica DE 1", 13184, "DE", scaled(15, s, 6));
    tef1.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16), (1, 0, 16)]);
    tef1.allocation = AllocationPolicy::SamePrefixBias(0.35);
    tef1.shares = vec![
        share(0.18, ppp_cap(24, 0.0)),
        share(0.75, ppp_cap(24, 0.006)),
        share(0.07, ppp_uncapped()),
    ];
    isps.push(tef1);

    let mut rostelecom = IspSpec::new("PJSC Rostelecom", 8997, "RU", scaled(23, s, 6));
    rostelecom.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    rostelecom.allocation = AllocationPolicy::SamePrefixBias(0.15);
    rostelecom.shares = vec![
        share(0.15, ppp_cap(24, 0.0)),
        share(0.45, ppp_cap(24, 0.008)),
        share(0.40, dhcp(6, 0.01)),
    ];
    isps.push(rostelecom);

    // BT: weak two-week periodicity — only a fifth of probes, frequently
    // skipped; BGP prefixes are /15s so /16 changes outnumber BGP changes.
    let mut bt = IspSpec::new("BT", 2856, "GB", scaled(70, s, 8));
    bt.prefixes = alloc.carve(&[(0, 0, 15), (1, 0, 15), (2, 0, 15)]);
    bt.allocation = AllocationPolicy::SamePrefixBias(0.34);
    bt.shares = vec![
        share(0.12, ppp_cap(337, 0.0)),
        share(0.10, ppp_cap(337, 0.05)),
        share(0.45, ppp_uncapped()),
        share(0.33, dhcp(12, 0.01)),
    ];
    isps.push(bt);

    // Proximus: two line types — 36 h (never clean: all skippers) and 24 h.
    let mut proximus = IspSpec::new("Proximus", 5432, "BE", scaled(41, s, 8));
    proximus.prefixes = alloc.carve(&[(0, 0, 15), (0, 128, 16), (1, 0, 16)]);
    proximus.allocation = AllocationPolicy::SamePrefixBias(0.35);
    proximus.shares = vec![
        share(0.30, ppp_cap(36, 0.015)),
        share(0.10, ppp_cap(24, 0.012)),
        share(0.35, ppp_uncapped()),
        share(0.25, dhcp(8, 0.02)),
    ];
    isps.push(proximus);

    let mut a1 = IspSpec::new("A1 Telekom", 8447, "AT", scaled(12, s, 5));
    a1.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    a1.allocation = AllocationPolicy::SamePrefixBias(0.4);
    a1.shares = vec![
        share(0.70, ppp_cap(24, 0.0)),
        share(0.22, ppp_cap(24, 0.008)),
        share(0.08, ppp_uncapped()),
    ];
    isps.push(a1);

    // Vodafone DE: periodic minority, every periodic probe occasionally
    // overruns (MAX ≤ d = 0% in Table 5); renumbers on outages (Table 6).
    let mut vodafone = IspSpec::new("Vodafone GmbH", 3209, "DE", scaled(21, s, 6));
    vodafone.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    vodafone.allocation = AllocationPolicy::SamePrefixBias(0.3);
    vodafone.shares = vec![
        share(0.43, ppp_cap(24, 0.012)),
        share(0.45, ppp_uncapped()),
        share(0.12, dhcp(8, 0.02)),
    ];
    isps.push(vodafone);

    let mut hrvatski = IspSpec::new("Hrvatski", 5391, "HR", scaled(7, s, 5));
    hrvatski.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    hrvatski.allocation = AllocationPolicy::SamePrefixBias(0.15);
    hrvatski.shares = vec![share(0.55, ppp_cap(24, 0.0)), share(0.45, ppp_cap(24, 0.008))];
    isps.push(hrvatski);

    let mut iskon = IspSpec::new("ISKON", 13046, "HR", scaled(6, s, 5));
    iskon.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    iskon.allocation = AllocationPolicy::RandomAny;
    iskon.shares = vec![share(0.9, ppp_cap(24, 0.012)), share(0.1, ppp_uncapped())];
    isps.push(iskon);

    // ANTEL Uruguay: 12-hour sessions.
    let mut antel = IspSpec::new("ANTEL", 6057, "UY", scaled(6, s, 5));
    antel.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16), (1, 0, 16)]);
    antel.allocation = AllocationPolicy::SamePrefixBias(0.1);
    antel.shares = vec![share(0.6, ppp_cap(12, 0.0)), share(0.4, ppp_cap(12, 0.006))];
    isps.push(antel);

    // Global Village Telecom: 48-hour sessions with substantial jitter —
    // overruns are not harmonic multiples (Table 5's odd row).
    let mut gvt = IspSpec::new("Global Village Telecom", 18881, "BR", scaled(6, s, 5));
    gvt.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    gvt.allocation = AllocationPolicy::SamePrefixBias(0.2);
    gvt.shares = vec![share(1.0, ppp_cap_nonharmonic(48, 0.22, (4.0, 44.0)))];
    isps.push(gvt);

    let mut mauritius = IspSpec::new("Mauritius Telecom", 23889, "MU", scaled(6, s, 5));
    mauritius.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    mauritius.allocation = AllocationPolicy::RandomAny;
    mauritius.shares = vec![
        share(0.70, ppp_cap(24, 0.008)),
        share(0.15, ppp_cap(24, 0.0)),
        share(0.15, ppp_uncapped()),
    ];
    isps.push(mauritius);

    let mut kazakh = IspSpec::new("JSC Kazakhtelecom", 9198, "KZ", scaled(15, s, 6));
    kazakh.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    kazakh.allocation = AllocationPolicy::SamePrefixBias(0.2);
    kazakh.shares = vec![
        share(0.30, ppp_cap(24, 0.004)),
        share(0.35, ppp_uncapped()),
        share(0.35, dhcp(8, 0.015)),
    ];
    isps.push(kazakh);

    // Orange Polska: two plans, 22 h and 24 h, both strongly periodic.
    let mut opl = IspSpec::new("Orange Polska", 5617, "PL", scaled(10, s, 6));
    opl.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16), (1, 0, 16)]);
    opl.allocation = AllocationPolicy::SamePrefixBias(0.2);
    opl.shares = vec![
        share(0.45, ppp_cap(22, 0.005)),
        share(0.40, ppp_cap(24, 0.005)),
        share(0.15, ppp_uncapped()),
    ];
    isps.push(opl);

    let mut vipnet = IspSpec::new("VIPnet", 31012, "HR", scaled(7, s, 5));
    vipnet.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    vipnet.allocation = AllocationPolicy::RandomAny;
    vipnet.shares = vec![
        share(0.45, ppp_cap(92, 0.015)),
        share(0.15, ppp_cap(92, 0.05)),
        share(0.40, dhcp(8, 0.02)),
    ];
    isps.push(vipnet);

    let mut digi = IspSpec::new("Digi Tavkozlesi", 20845, "HU", scaled(4, s, 4));
    digi.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    digi.allocation = AllocationPolicy::RandomAny;
    digi.shares = vec![share(1.0, ppp_cap(168, 0.004))];
    isps.push(digi);

    let mut free = IspSpec::new("Free SAS", 12322, "FR", scaled(12, s, 6));
    free.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    free.allocation = AllocationPolicy::SamePrefixBias(0.5);
    free.shares = vec![
        share(0.25, ppp_cap(24, 0.01)),
        share(0.75, dhcp_rotating(24, 0.012, 90)),
    ];
    isps.push(free);

    let mut sonatel = IspSpec::new("SONATEL-AS", 8346, "SN", scaled(7, s, 5));
    sonatel.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    sonatel.allocation = AllocationPolicy::RandomAny;
    sonatel.shares = vec![
        share(0.40, ppp_cap(24, 0.012)),
        share(0.60, ppp_uncapped()),
    ];
    isps.push(sonatel);

    let mut nbn = IspSpec::new("Net by Net", 12714, "RU", scaled(7, s, 5));
    nbn.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
    nbn.allocation = AllocationPolicy::RandomAny;
    nbn.shares = vec![
        share(0.45, ppp_cap(47, 0.01)),
        share(0.55, dhcp(8, 0.02)),
    ];
    isps.push(nbn);

    // --- Non-periodic ISPs (Tables 6 & 7, Figs. 2/7/8/9) -------------------

    // Liberty Global: DHCP cable — the Fig. 9 left panel. Changes require an
    // outage long enough to outlive the lease plus pool churn.
    let mut lgi = IspSpec::new("LGI", 6830, "NL", scaled(90, s, 8));
    lgi.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 15), (1, 0, 16), (2, 0, 16)]);
    lgi.allocation = AllocationPolicy::SamePrefixBias(0.25);
    lgi.shares = vec![share(1.0, dhcp_rotating(4, 0.045, 40))];
    isps.push(lgi);

    // Verizon: the long-lived North American addresses of Fig. 2.
    let mut verizon = IspSpec::new("Verizon", 701, "US", scaled(55, s, 8));
    verizon.prefixes = alloc.carve(&[(0, 0, 16), (0, 96, 16), (1, 0, 16), (1, 128, 16)]);
    verizon.allocation = AllocationPolicy::SamePrefixBias(0.70);
    verizon.outages = OutageSpec::stable();
    verizon.shares = vec![share(1.0, dhcp_rotating(12, 0.02, 75))];
    isps.push(verizon);

    let mut comcast = IspSpec::new("Comcast", 7922, "US", scaled(30, s, 6));
    comcast.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16), (1, 0, 16)]);
    comcast.allocation = AllocationPolicy::SamePrefixBias(0.45);
    comcast.outages = OutageSpec::stable();
    comcast.shares = vec![share(1.0, dhcp_rotating(8, 0.022, 55))];
    isps.push(comcast);

    // Telecom Italia: uncapped PPP — high P(ac|outage) (Table 6) and very
    // high cross-prefix rates (Table 7: 85% / 88% / 47%).
    let mut ti = IspSpec::new("Telecom Italia", 3269, "IT", scaled(30, s, 8));
    ti.prefixes = alloc.carve(&[
        (0, 0, 15), (0, 64, 15), (0, 128, 15), (0, 192, 15),
        (1, 0, 15), (1, 64, 15), (1, 128, 15), (1, 192, 15),
    ]);
    ti.allocation = AllocationPolicy::RandomAny;
    ti.shares = vec![share(1.0, ppp_uncapped())];
    isps.push(ti);

    let mut wind = IspSpec::new("Wind Telecomunicazioni", 1267, "IT", scaled(12, s, 6));
    wind.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16), (1, 0, 16)]);
    wind.allocation = AllocationPolicy::SamePrefixBias(0.2);
    wind.shares = vec![share(0.85, ppp_uncapped()), share(0.15, dhcp(8, 0.02))];
    isps.push(wind);

    // SFR: mixed plant — only some probes renumber on outages.
    let mut sfr = IspSpec::new("SFR", 15557, "FR", scaled(16, s, 6));
    sfr.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16)]);
    sfr.allocation = AllocationPolicy::SamePrefixBias(0.4);
    sfr.shares = vec![share(0.40, ppp_uncapped()), share(0.60, dhcp_rotating(6, 0.01, 60))];
    isps.push(sfr);

    let mut ziggo = IspSpec::new("Ziggo", 9143, "NL", scaled(12, s, 5));
    ziggo.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16)]);
    ziggo.allocation = AllocationPolicy::SamePrefixBias(0.5);
    ziggo.shares = vec![share(1.0, dhcp_rotating(6, 0.02, 45))];
    isps.push(ziggo);

    // Virgin Media: rare changes, but when they happen they span prefixes
    // (Table 7: 84% / 89% / 71%).
    let mut virgin = IspSpec::new("Virgin Media", 5089, "GB", scaled(10, s, 5));
    virgin.prefixes = alloc.carve(&[
        (0, 0, 15), (1, 0, 15), (2, 0, 15), (3, 0, 15), (0, 128, 15), (1, 128, 15),
    ]);
    virgin.allocation = AllocationPolicy::RandomAny;
    virgin.shares = vec![share(1.0, dhcp_rotating(6, 0.05, 75))];
    isps.push(virgin);

    // The stable German cable ISPs of Fig. 3.
    let mut kabel_de = IspSpec::new("Kabel Deutschland", 31334, "DE", scaled(25, s, 6));
    kabel_de.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16)]);
    kabel_de.allocation = AllocationPolicy::PreferPrevious;
    kabel_de.outages = OutageSpec::stable();
    kabel_de.shares = vec![share(1.0, dhcp_rotating(12, 0.012, 55))];
    isps.push(kabel_de);

    let mut kabel_bw = IspSpec::new("Kabel BW", 29562, "DE", scaled(8, s, 5));
    kabel_bw.prefixes = alloc.carve(&[(0, 0, 16)]);
    kabel_bw.allocation = AllocationPolicy::PreferPrevious;
    kabel_bw.outages = OutageSpec::stable();
    kabel_bw.shares = vec![share(1.0, dhcp_rotating(12, 0.012, 55))];
    isps.push(kabel_bw);

    // --- Background ISPs shaping Fig. 1 -------------------------------------

    let mut bg_asn = 64_600u32;
    let background = |alloc: &mut PrefixAlloc,
                      isps: &mut Vec<IspSpec>,
                      bg_asn: &mut u32,
                      probes: usize,
                      cc: &str,
                      label: &str,
                      shares: Vec<AccessShare>,
                      scale: f64| {
        let mut isp = IspSpec::new(label, *bg_asn, cc, scaled(probes, scale, 3));
        *bg_asn += 1;
        isp.prefixes = alloc.carve(&[(0, 0, 16), (1, 0, 16)]);
        isp.allocation = AllocationPolicy::SamePrefixBias(0.25);
        isp.shares = shares;
        isps.push(isp);
    };

    // Europe: a mix of daily/weekly periodic and stable plant.
    let eu_mix = vec![
        share(0.10, ppp_cap(24, 0.0)),
        share(0.05, ppp_cap(24, 0.01)),
        share(0.04, ppp_cap(168, 0.0)),
        share(0.01, ppp_cap(168, 0.008)),
        share(0.30, ppp_uncapped()),
        share(0.50, dhcp_rotating(8, 0.025, 60)),
    ];
    for (i, cc) in ["DE", "FR", "GB", "NL", "SE", "CZ", "PL", "IT", "ES", "CH", "RO", "FI"]
        .iter()
        .enumerate()
    {
        background(&mut alloc, &mut isps, &mut bg_asn, 42, cc, &format!("bg-eu-{i}"), eu_mix.clone(), s);
    }

    // North America: stable DHCP, quiet networks.
    let na_mix = vec![share(1.0, dhcp_rotating(12, 0.018, 70))];
    for (i, cc) in ["US", "US", "US", "CA", "CA", "MX"].iter().enumerate() {
        let mut isp = IspSpec::new(&format!("bg-na-{i}"), bg_asn, cc, scaled(56, s, 3));
        bg_asn += 1;
        isp.prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16)]);
        isp.allocation = AllocationPolicy::PreferPrevious;
        isp.outages = OutageSpec::stable();
        isp.shares = na_mix.clone();
        isps.push(isp);
    }

    // Asia: a 24-hour mode exists but is weaker than Europe's.
    let as_mix = vec![
        share(0.06, ppp_cap(24, 0.0)),
        share(0.03, ppp_cap(24, 0.01)),
        share(0.34, ppp_uncapped()),
        share(0.57, dhcp_rotating(8, 0.022, 55)),
    ];
    for (i, cc) in ["JP", "IN", "SG", "KR", "TR", "ID", "TH", "HK"].iter().enumerate() {
        background(&mut alloc, &mut isps, &mut bg_asn, 28, cc, &format!("bg-as-{i}"), as_mix.clone(), s);
    }

    // Africa: a pronounced 24-hour mode (total time fraction ≈ 0.16).
    let af_mix = vec![
        share(0.13, ppp_cap(24, 0.0)),
        share(0.07, ppp_cap(24, 0.009)),
        share(0.32, ppp_uncapped()),
        share(0.48, dhcp_rotating(8, 0.025, 50)),
    ];
    for (i, cc) in ["ZA", "EG", "KE", "NG", "MA"].iter().enumerate() {
        background(&mut alloc, &mut isps, &mut bg_asn, 20, cc, &format!("bg-af-{i}"), af_mix.clone(), s);
    }

    // South America: the multi-mode continent — 12 h, 28 h, 48 h, 192 h.
    let sa_mixes: Vec<(&str, Vec<AccessShare>)> = vec![
        ("UY", vec![share(0.22, ppp_cap(12, 0.0)), share(0.10, ppp_cap(12, 0.008)), share(0.68, dhcp_rotating(8, 0.025, 50))]),
        ("AR", vec![share(0.16, ppp_cap(28, 0.0)), share(0.10, ppp_cap(28, 0.009)), share(0.74, ppp_uncapped())]),
        ("BR", vec![share(0.22, ppp_cap(48, 0.0)), share(0.10, ppp_cap(48, 0.009)), share(0.68, dhcp_rotating(8, 0.025, 50))]),
        ("CL", vec![share(0.18, ppp_cap(192, 0.0)), share(0.06, ppp_cap(192, 0.007)), share(0.76, dhcp_rotating(8, 0.025, 50))]),
        ("CO", vec![share(0.14, ppp_cap(12, 0.0)), share(0.08, ppp_cap(12, 0.009)), share(0.78, ppp_uncapped())]),
        ("BR", vec![share(0.16, ppp_cap(48, 0.0)), share(0.10, ppp_cap(48, 0.01)), share(0.74, ppp_uncapped())]),
    ];
    for (i, (cc, mix)) in sa_mixes.into_iter().enumerate() {
        background(&mut alloc, &mut isps, &mut bg_asn, 24, cc, &format!("bg-sa-{i}"), mix, s);
    }

    // Oceania: stable, no modes.
    for (i, cc) in ["AU", "AU", "NZ"].iter().enumerate() {
        let mut isp = IspSpec::new(&format!("bg-oc-{i}"), bg_asn, cc, scaled(18, s, 3));
        bg_asn += 1;
        isp.prefixes = alloc.carve(&[(0, 0, 16)]);
        isp.allocation = AllocationPolicy::PreferPrevious;
        isp.outages = OutageSpec::stable();
        isp.shares = vec![share(1.0, dhcp_rotating(12, 0.02, 70))];
        isps.push(isp);
    }

    w.isps = isps;

    // --- Movers, filler, administrative renumbering -------------------------

    w.movers = scaled(766, s, 2);
    w.filler = FillerSpec {
        never_changed: scaled(2_850, s, 2),
        dual_stack: scaled(3_728, s, 2),
        ipv6_only: scaled(237, s, 1),
        tagged: scaled(174, s, 2),
        tagged_alternating_frac: 0.2,
        alternating: scaled(511, s, 2),
        testing_static: scaled(216, s, 1),
    };

    // One administrative renumbering, on a background EU ISP in September
    // ("we found only one instance", §8).
    let admin_asn = Asn(64_600);
    let admin_prefixes = alloc.carve(&[(0, 0, 16), (0, 128, 16)]);
    w.admin_renumber = Some((admin_asn, SimTime::from_date(9, 15, 2, 0, 0), admin_prefixes));

    w
}

/// Builds the monthly IP-to-AS snapshots for a world: every ISP's pool
/// prefixes announced by its ASN, with admin-renumbering target prefixes
/// appearing from their migration month onward.
pub fn paper_route_tables(config: &WorldConfig) -> MonthlySnapshots {
    let mut base = RouteTable::new();
    for isp in &config.isps {
        for p in &isp.prefixes {
            base.announce(*p, isp.asn);
        }
    }
    let mut snaps = MonthlySnapshots::uniform(base.clone());
    if let Some((asn, when, new_prefixes)) = &config.admin_renumber {
        let mut after = base;
        for p in new_prefixes {
            after.announce(*p, *asn);
        }
        snaps.set_from_month(when.month_of_2015(), after);
    }
    snaps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_at_small_scale() {
        let w = paper_world(0.05, 1);
        assert!(w.isps.len() > 40, "isps: {}", w.isps.len());
        assert!(w.total_probes() > 200);
        // Named ISPs retain minimum populations.
        let orange = w.isps.iter().find(|i| i.name == "Orange").unwrap();
        assert!(orange.probes >= 8);
    }

    #[test]
    fn prefixes_are_globally_disjoint() {
        let w = paper_world(0.05, 1);
        let mut all: Vec<(Prefix, &str)> = Vec::new();
        for isp in &w.isps {
            for p in &isp.prefixes {
                all.push((*p, &isp.name));
            }
        }
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert!(
                    !all[i].0.covers(all[j].0) && !all[j].0.covers(all[i].0),
                    "{} ({}) overlaps {} ({})",
                    all[i].0,
                    all[i].1,
                    all[j].0,
                    all[j].1
                );
            }
        }
    }

    #[test]
    fn route_tables_cover_every_pool() {
        let w = paper_world(0.05, 1);
        let snaps = paper_route_tables(&w);
        for isp in &w.isps {
            for p in &isp.prefixes {
                let origin = snaps.month(1).origin(p.nth(1)).unwrap();
                assert_eq!(origin.asn, isp.asn, "prefix {p} of {}", isp.name);
            }
        }
    }

    #[test]
    fn admin_prefixes_appear_from_september() {
        let w = paper_world(0.05, 1);
        let snaps = paper_route_tables(&w);
        let (asn, when, prefixes) = w.admin_renumber.clone().unwrap();
        assert_eq!(when.month_of_2015(), 9);
        let addr = prefixes[0].nth(5);
        assert_eq!(snaps.month(8).asn_of(addr), Asn::UNKNOWN);
        assert_eq!(snaps.month(9).asn_of(addr), asn);
        assert_eq!(snaps.month(12).asn_of(addr), asn);
    }

    #[test]
    fn scale_scales_probe_counts() {
        let small = paper_world(0.05, 1);
        let large = paper_world(0.5, 1);
        assert!(large.total_probes() > 3 * small.total_probes());
        assert_eq!(small.isps.len(), large.isps.len(), "ISP roster is scale-free");
    }

    #[test]
    fn paper_scale_approximates_paper_population() {
        let w = paper_world(1.0, 1);
        let total = w.total_probes();
        assert!(
            (9_000..13_000).contains(&total),
            "full-scale world has {total} probes; paper had 10,977"
        );
    }

    #[test]
    fn table5_asns_present() {
        let w = paper_world(0.1, 1);
        for asn in [3215u32, 3320, 6805, 13184, 8997, 2856, 5432, 8447, 3209, 5391, 13046,
            6057, 18881, 23889, 9198, 5617, 31012, 20845, 12322, 8346, 12714]
        {
            assert!(
                w.isps.iter().any(|i| i.asn == Asn(asn)),
                "AS{asn} missing from the world"
            );
        }
    }

    #[test]
    fn periodic_ground_truth_matches_table5() {
        let w = paper_world(0.1, 1);
        let find = |asn: u32| w.isps.iter().find(|i| i.asn == Asn(asn)).unwrap();
        let period_of = |asn: u32| -> Vec<i64> {
            let mut v: Vec<i64> = find(asn)
                .shares
                .iter()
                .filter_map(|s| s.access.periodic_period().map(|d| d.secs() / 3600))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(period_of(3215), vec![168]);
        assert_eq!(period_of(6057), vec![12]);
        assert_eq!(period_of(5617), vec![22, 24]);
        assert_eq!(period_of(2856), vec![337]);
        assert!(period_of(6830).is_empty(), "LGI must not be periodic");
        assert!(period_of(701).is_empty(), "Verizon must not be periodic");
    }
}
