//! The discrete-event simulation of analyzable probes.
//!
//! Each analyzable probe sits behind a CPE attached to one ISP
//! ([`dynaddr_ispnet::IspNetwork`]). An event loop advances a clock through
//! 2015, processing per-probe events:
//!
//! * **outages** (network / power, Poisson arrivals with per-probe rate
//!   multipliers and heavy-tailed durations) — processed atomically: the
//!   window is recorded, k-root evidence emitted, and the ISP asked what the
//!   address looks like after recovery;
//! * **session-cap expiries** — the ISP-side periodic renumbering;
//! * **scheduled reconnects** — the CPE-side nightly privacy reconnect;
//! * **firmware pushes** — probe-only reboots that look like power outages
//!   until the pipeline's spike filter removes them;
//! * **controller drops** — TCP breaks with no outage and no change;
//! * **moves** — probes that switch ISP mid-year (multi-AS probes);
//! * **administrative renumbering** — one ISP migrating its pool.
//!
//! ## Sharding
//!
//! There is no single global event loop. [`World::build`] computes only the
//! cheap partition plan: per-net construction recipes ([`NetPlan`]) and
//! per-probe placements ([`ProbePlan`]) under stable global ids, which
//! [`World::into_shards`] groups into connected components (see
//! [`crate::shard`]): each share-net is its own unit — share pools are
//! independent, so nets of one ASN are only coupled (and unified) when an
//! administrative-renumbering event targets that ASN — and mover probes add
//! the only cross-ISP edges. The expensive half of construction — pools,
//! servers, probe state — happens *inside* the shard map
//! ([`Sim::materialize`]), so it parallelizes like the event loops
//! themselves. Each shard owns its nets, its probes, and its own
//! [`EventQueue`], so shards run concurrently on the `dynaddr-exec`
//! executor with no shared mutable state. Every random draw comes from a
//! [`SeedTree`] stream keyed by entity (`("probe", id)`,
//! `("world", asn)` → `("pool", net)`, `("admin", asn)`, …), never from a
//! shared world stream, so a shard replays exactly the event subsequence
//! the unsharded loop would give its entities — and the merged, canonically
//! sorted output is byte-identical at any thread count and any forced shard
//! count.
//!
//! ## Log thinning
//!
//! A real probe pings k-root every 4 minutes (~131 k records per probe per
//! year). Materializing all of them would dominate memory without adding
//! information: the pipeline only reads k-root records (a) inside outage
//! windows and (b) immediately around them. We therefore always emit the
//! 4-minute-grid records *inside and bracketing* every outage window (with
//! long loss runs thinned to an hourly grid after the first hour — first and
//! last loss records are always present, which is all the detector uses),
//! plus all-OK heartbeats at a configurable cadence elsewhere. An
//! equivalence test in `dynaddr-core` verifies detection output is identical
//! on full vs thinned grids.

use crate::config::{CpeSchedule, IspSpec, WorldConfig};
use crate::engine::EventQueue;
use crate::logs::{
    AtlasDataset, ConnectionLogEntry, KrootPingRecord, PeerAddr, ProbeMeta, SosUptimeRecord,
};
use crate::truth::{
    ChangeCause, GroundTruth, IspPolicyTruth, TruthChange, TruthOutage, TruthOutageKind,
};
use crate::shard::UnionFind;
use dynaddr_ispnet::pool::{AddressPool, AllocationPolicy, ClientId};
use dynaddr_ispnet::{AccessConfig, IspNetwork, NextIspAction};
use dynaddr_types::dist::{poisson_gap, DurationDist};
use dynaddr_types::rng::SeedTree;
use dynaddr_types::time::DAY;
use dynaddr_types::{
    Asn, Country, Prefix, ProbeId, ProbeTag, ProbeVersion, SimDuration, SimTime,
};
use dynaddr_store::{SegmentSink, StoreError, StreamWriter};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

/// k-root built-in measurement cadence: every four minutes (§3.4).
const KROOT_GRID: i64 = 240;
/// A network outage longer than this breaks the controller TCP connection.
const TCP_BREAK_SECS: i64 = 180;
/// After the first hour of a loss run, loss records are thinned to this.
const LOSS_THIN_SECS: i64 = 3_600;

/// Simulator output: the scraped-looking dataset plus ground truth.
pub struct SimOutput {
    /// The three log datasets plus probe metadata, normalized.
    pub dataset: AtlasDataset,
    /// What actually happened (never shown to the pipeline).
    pub truth: GroundTruth,
}

/// Runs a full-year simulation of the configured world.
///
/// The world is partitioned into independent shards (one per connected
/// component of nets; see the module docs) that run concurrently on the
/// `dynaddr-exec` executor. The output is byte-identical at any worker
/// count.
pub fn simulate(config: &WorldConfig) -> SimOutput {
    simulate_with_shard_cap(config, None)
}

/// Like [`simulate`], but folds the world's independent components into at
/// most `cap` shards (`None` keeps one shard per component). The output is
/// byte-identical for every `cap` and worker count; the knob exists so
/// tests can pin shard layouts and callers can trade scheduling
/// granularity against per-shard overhead.
pub fn simulate_with_shard_cap(config: &WorldConfig, cap: Option<usize>) -> SimOutput {
    simulate_with_options(config, &SimOptions { shard_cap: cap, ..SimOptions::default() })
}

/// Like [`simulate`], with the full set of sharding knobs.
pub fn simulate_with_options(config: &WorldConfig, opts: &SimOptions) -> SimOutput {
    simulate_instrumented_opts(config, opts).0
}

/// Knobs controlling how the world is partitioned. Every combination
/// produces byte-identical output; the options trade scheduling granularity
/// against per-shard overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Fold the world's components into at most this many shards
    /// (`None` keeps one shard per component).
    pub shard_cap: Option<usize>,
    /// Unify *all* share-nets of each ASN into one component, as the
    /// simulator did before intra-ISP splitting: share-nets are only
    /// coupled by administrative renumbering, so by default only the
    /// admin-targeted ASN (if any) is unified and giant ISPs split into
    /// per-share components. Setting this restores the coarse layout.
    pub unify_all_isps: bool,
    /// Materialize every shard's nets and probes serially, before the
    /// parallel shard map, instead of inside it. Reference mode for the CI
    /// gate: shard-local construction must produce the same bytes.
    pub serial_build: bool,
}

/// Aggregate event-queue traffic across all shards of one simulation,
/// merged associatively so `par_fold` can carry it alongside the output.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueTelemetry {
    /// Events pushed, summed over shards.
    pub pushes: u64,
    /// Events popped, summed over shards.
    pub pops: u64,
    /// Largest pending-event count of any single shard queue.
    pub max_queue_len: usize,
    /// Pushes landing in the overflow (past-the-span) region, summed.
    pub overflow_hits: u64,
    /// Bucket-width halvings, summed.
    pub resizes: u64,
    /// Events popped by the busiest shard — `max_shard_pops` against
    /// `pops / shards` is the balance ratio.
    pub max_shard_pops: u64,
    /// Queue occupancy at push, aggregated over all shards (elementwise
    /// histogram merge — worker-count invariant).
    pub occupancy: dynaddr_obs::Histogram,
    /// Per-shard pop totals as a distribution: the shape of shard balance,
    /// not just its max.
    pub shard_pops: dynaddr_obs::Histogram,
}

impl QueueTelemetry {
    fn absorb(mut self, q: crate::engine::QueueStats) -> QueueTelemetry {
        self.pushes += q.pushes;
        self.pops += q.pops;
        self.max_queue_len = self.max_queue_len.max(q.max_len);
        self.overflow_hits += q.overflow_hits;
        self.resizes += q.resizes;
        self.max_shard_pops = self.max_shard_pops.max(q.pops);
        self.occupancy.merge(&q.occupancy);
        self.shard_pops.record(q.pops);
        self
    }

    fn merge(mut self, other: QueueTelemetry) -> QueueTelemetry {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.max_queue_len = self.max_queue_len.max(other.max_queue_len);
        self.overflow_hits += other.overflow_hits;
        self.resizes += other.resizes;
        self.max_shard_pops = self.max_shard_pops.max(other.max_shard_pops);
        self.occupancy.merge(&other.occupancy);
        self.shard_pops.merge(&other.shard_pops);
        self
    }

    /// Publish the aggregated telemetry into the global metrics registry.
    /// Called once per simulation from single-threaded control flow, with
    /// values that are already worker-count invariant.
    fn publish(&self, shards: usize) {
        dynaddr_obs::counter_add("sim.events_pushed", self.pushes);
        dynaddr_obs::counter_add("sim.events_popped", self.pops);
        dynaddr_obs::counter_add("sim.queue_overflow_hits", self.overflow_hits);
        dynaddr_obs::counter_add("sim.queue_resizes", self.resizes);
        dynaddr_obs::gauge_max("sim.max_queue_len", self.max_queue_len as u64);
        dynaddr_obs::gauge_max("sim.shards", shards as u64);
        dynaddr_obs::hist_merge("sim.queue_occupancy", &self.occupancy);
        dynaddr_obs::hist_merge("sim.shard_pops", &self.shard_pops);
    }
}

/// Wall-clock breakdown of one [`simulate`] call, recorded by `perfsnap`.
#[derive(Debug, Clone, Copy)]
pub struct SimStats {
    /// How many shards the world was partitioned into.
    pub shards: usize,
    /// Seconds spent constructing the world: the serial partition plan plus
    /// every shard's net/probe materialization. Materialization runs inside
    /// the shard map, so this is a CPU-seconds sum — at one worker it equals
    /// wall clock, at many it exceeds its wall-clock share.
    pub world_build_s: f64,
    /// Seconds spent running the sharded event loops, excluding
    /// [`SimStats::world_build_s`].
    pub event_loop_s: f64,
    /// Seconds spent generating filler probes.
    pub filler_s: f64,
    /// Seconds spent in the final canonical sorts.
    pub normalize_s: f64,
    /// Aggregate queue traffic across shards.
    pub queue: QueueTelemetry,
}

impl SimStats {
    /// Load-balance ratio: events in the busiest shard over the per-shard
    /// mean. 1.0 is perfect balance; `shards` is one shard doing all work.
    pub fn shard_balance(&self) -> f64 {
        if self.shards == 0 || self.queue.pops == 0 {
            return 1.0;
        }
        let mean = self.queue.pops as f64 / self.shards as f64;
        self.queue.max_shard_pops as f64 / mean
    }
}

/// [`simulate_with_shard_cap`] plus per-stage timings.
pub fn simulate_instrumented(
    config: &WorldConfig,
    cap: Option<usize>,
) -> (SimOutput, SimStats) {
    simulate_instrumented_opts(config, &SimOptions { shard_cap: cap, ..SimOptions::default() })
}

/// [`simulate_with_options`] plus per-stage timings and queue telemetry.
pub fn simulate_instrumented_opts(
    config: &WorldConfig,
    opts: &SimOptions,
) -> (SimOutput, SimStats) {
    let sp_plan = dynaddr_obs::span("world_plan");
    let mut world = World::build(config);
    let base_truth = std::mem::take(&mut world.truth);
    let admin = world.admin.clone();
    let mut shards = world.into_shards(opts);
    let n_shards = shards.len();
    let plan_s = sp_plan.finish_secs();
    let mut serial_build_s = 0.0;
    if opts.serial_build {
        // Reference mode: materialize every shard up front, serially, so CI
        // can diff the default shard-local construction against it.
        for shard in &mut shards {
            serial_build_s += shard.materialize();
        }
    }
    let progress = dynaddr_obs::Progress::start("sim_shards", n_shards as u64);
    let sp_loop = dynaddr_obs::span("sim_event_loop");
    let (mut output, queue, shard_build_s) = dynaddr_exec::par_fold(
        shards,
        || (empty_output(), QueueTelemetry::default(), 0.0f64),
        |(acc, tel, build_s), mut shard| {
            let b = shard.run();
            let q = shard.queue.stats();
            progress.add(1);
            (
                merge_outputs(acc, SimOutput { dataset: shard.dataset, truth: shard.truth }),
                tel.absorb(q),
                build_s + b,
            )
        },
        |(a, ta, ba), (b, tb, bb)| (merge_outputs(a, b), ta.merge(tb), ba + bb),
    );
    let loop_wall_s = sp_loop.finish_secs();
    progress.finish();
    // Attach the world-level truth no shard owns.
    output.truth.isp_policies = base_truth.isp_policies;
    output.truth.firmware_dates = base_truth.firmware_dates;
    if n_shards == 0 {
        // No nets, so no shard could replay the admin event; the unsharded
        // loop would still have popped it and recorded the fact.
        if let Some((asn, when, _)) = admin {
            if when < SimTime::YEAR_END {
                output.truth.admin_renumbering = Some((asn, when));
            }
        }
    }
    let world_build_s = plan_s + serial_build_s + shard_build_s;
    let event_loop_s = (loop_wall_s - shard_build_s).max(0.0);

    let filler_s = {
        let sp = dynaddr_obs::span("sim_filler");
        crate::fill::generate_filler(config, &mut output);
        sp.finish_secs()
    };

    let normalize_s = {
        let sp = dynaddr_obs::span("sim_normalize");
        output.dataset.normalize();
        output.truth.normalize();
        sp.finish_secs()
    };
    queue.publish(n_shards);
    (
        output,
        SimStats { shards: n_shards, world_build_s, event_loop_s, filler_s, normalize_s, queue },
    )
}

/// Runs the simulation out-of-core, writing `dataset.store` at `out_path`.
///
/// Each shard sorts its finished rows with the canonical `normalize()`
/// keys and appends them to a [`SegmentSink`] run as it completes (filler
/// chunks become further runs); the sink's key-ordered merge then streams
/// the file through a [`StreamWriter`]. Because probes are partitioned
/// across shards, merging sorted shard runs by key reproduces the global
/// stable sort exactly — the file is byte-identical to
/// `simulate_with_options(config, opts).dataset.to_store_bytes()`, but the
/// full dataset never materializes: peak memory is the largest live shard
/// plus one decoded segment per run, not the dataset.
///
/// Returns the normalized ground truth and stats; on this path
/// [`SimStats::normalize_s`] times the k-way merge that replaces the
/// global sort, and [`SimStats::event_loop_s`] includes the per-shard
/// sort-and-encode work.
pub fn simulate_to_store(
    config: &WorldConfig,
    opts: &SimOptions,
    out_path: &std::path::Path,
) -> Result<(GroundTruth, SimStats), StoreError> {
    let sp_plan = dynaddr_obs::span("world_plan");
    let mut world = World::build(config);
    let base_truth = std::mem::take(&mut world.truth);
    let admin = world.admin.clone();
    let mut shards = world.into_shards(opts);
    let n_shards = shards.len();
    let plan_s = sp_plan.finish_secs();
    let mut serial_build_s = 0.0;
    if opts.serial_build {
        for shard in &mut shards {
            serial_build_s += shard.materialize();
        }
    }
    let spill_path = out_path.with_extension("spill");
    let sink = Mutex::new(SegmentSink::create(&spill_path)?);
    // The fold must stay infallible for par_fold, so the first append
    // failure parks here and the remaining shards skip their appends.
    let sink_err: Mutex<Option<StoreError>> = Mutex::new(None);
    let fail = |e: StoreError| -> StoreError {
        let _ = std::fs::remove_file(&spill_path);
        e
    };

    let progress = dynaddr_obs::Progress::start("sim_shards_to_store", n_shards as u64);
    let sp_loop = dynaddr_obs::span("sim_event_loop");
    let runs: Vec<(u64, Sim)> =
        shards.into_iter().enumerate().map(|(i, s)| (i as u64, s)).collect();
    let (truth, queue, shard_build_s, max_id) = dynaddr_exec::par_fold(
        runs,
        || (GroundTruth::default(), QueueTelemetry::default(), 0.0f64, 0u32),
        |(acc, tel, build_s, max_id), (run, mut shard)| {
            let b = shard.run();
            let q = shard.queue.stats();
            progress.add(1);
            let mut ds = shard.dataset;
            // Shard-local canonical sort: same keys, same stability as
            // AtlasDataset::normalize, restricted to this shard's probes.
            ds.meta.sort_by_key(|m| m.probe);
            ds.connections.sort_by_key(|c| (c.probe, c.start, c.end));
            ds.kroot.sort_by_key(|k| (k.probe, k.timestamp));
            ds.uptime.sort_by_key(|u| (u.probe, u.timestamp));
            let shard_max = ds.meta.iter().map(|m| m.probe.0).max().unwrap_or(0);
            let appended = {
                let mut sink = sink.lock().expect("sink lock");
                sink.append(run, &ds.meta)
                    .and_then(|_| sink.append(run, &ds.connections))
                    .and_then(|_| sink.append(run, &ds.kroot))
                    .and_then(|_| sink.append(run, &ds.uptime))
            };
            if let Err(e) = appended {
                sink_err.lock().expect("sink error lock").get_or_insert(e);
            }
            (merge_truths(acc, shard.truth), tel.absorb(q), build_s + b, max_id.max(shard_max))
        },
        |(a, ta, ba, ma), (b, tb, bb, mb)| (merge_truths(a, b), ta.merge(tb), ba + bb, ma.max(mb)),
    );
    let loop_wall_s = sp_loop.finish_secs();
    progress.finish();
    if let Some(e) = sink_err.into_inner().expect("sink error lock") {
        return Err(fail(e));
    }
    let mut truth = truth;
    truth.isp_policies = base_truth.isp_policies;
    truth.firmware_dates = base_truth.firmware_dates;
    if n_shards == 0 {
        if let Some((asn, when, _)) = admin {
            if when < SimTime::YEAR_END {
                truth.admin_renumbering = Some((asn, when));
            }
        }
    }
    let world_build_s = plan_s + serial_build_s + shard_build_s;
    let event_loop_s = (loop_wall_s - shard_build_s).max(0.0);

    let filler_s = {
        let sp = dynaddr_obs::span("sim_filler");
        crate::fill::generate_filler_to_sink(config, max_id + 1, n_shards as u64, &sink)
            .map_err(&fail)?;
        sp.finish_secs()
    };

    let sp_merge = dynaddr_obs::span("store_merge");
    let merged: Result<(), StoreError> = (|| {
        let mut merger = sink.into_inner().expect("sink lock").finish()?;
        let file = std::fs::File::create(out_path)
            .map_err(|e| StoreError::io(format!("create {}", out_path.display()), e))?;
        let mut out = std::io::BufWriter::new(file);
        let mut w = StreamWriter::new(&mut out)?;
        merger.merge_table::<ProbeMeta, _>(&mut w)?;
        merger.merge_table::<ConnectionLogEntry, _>(&mut w)?;
        merger.merge_table::<KrootPingRecord, _>(&mut w)?;
        merger.merge_table::<SosUptimeRecord, _>(&mut w)?;
        w.finish()?;
        use std::io::Write as _;
        out.flush()
            .map_err(|e| StoreError::io(format!("flush {}", out_path.display()), e))
    })();
    let _ = std::fs::remove_file(&spill_path);
    merged?;
    truth.normalize();
    let normalize_s = sp_merge.finish_secs();
    queue.publish(n_shards);
    Ok((
        truth,
        SimStats { shards: n_shards, world_build_s, event_loop_s, filler_s, normalize_s, queue },
    ))
}

fn empty_output() -> SimOutput {
    SimOutput { dataset: AtlasDataset::default(), truth: GroundTruth::default() }
}

/// Concatenates two partial outputs, left before right. Associative with
/// [`empty_output`] as identity — exactly what `par_fold` needs — and order
/// differences between shard layouts are erased by the canonical
/// `normalize` sorts afterwards.
fn merge_outputs(mut a: SimOutput, b: SimOutput) -> SimOutput {
    let mut bd = b.dataset;
    a.dataset.meta.append(&mut bd.meta);
    a.dataset.connections.append(&mut bd.connections);
    a.dataset.kroot.append(&mut bd.kroot);
    a.dataset.uptime.append(&mut bd.uptime);
    a.truth = merge_truths(a.truth, b.truth);
    a
}

/// The ground-truth half of [`merge_outputs`], shared with the streamed
/// path (which never materializes the merged dataset).
fn merge_truths(mut a: GroundTruth, mut b: GroundTruth) -> GroundTruth {
    a.changes.append(&mut b.changes);
    a.outages.append(&mut b.outages);
    a.firmware_reboots.append(&mut b.firmware_reboots);
    a.isp_policies.append(&mut b.isp_policies);
    a.admin_renumbering = a.admin_renumbering.or(b.admin_renumbering);
    if a.firmware_dates.is_empty() {
        a.firmware_dates = std::mem::take(&mut b.firmware_dates);
    }
    a
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    CapExpiry { p: usize, epoch: u64 },
    Scheduled { p: usize, epoch: u64 },
    NetOutage { p: usize },
    PwOutage { p: usize },
    Firmware { p: usize },
    CtrlDrop { p: usize, epoch: u64 },
    Move { p: usize },
    AdminRenumber { asn: Asn },
}

#[derive(Debug, Clone, Copy)]
struct ScheduleCfg {
    hour: u32,
    minute: u32,
    skip_prob: f64,
}

struct ProbeSim {
    id: ProbeId,
    version: ProbeVersion,
    country: Country,
    tags: Vec<ProbeTag>,
    net: usize,
    client: ClientId,
    mover_target: Option<(usize, SimTime)>,
    usb_fate_shared: bool,
    schedule: Option<ScheduleCfg>,
    net_rate: f64,
    pw_rate: f64,
    net_dur: DurationDist,
    pw_dur: DurationDist,
    frail: bool,
    join: SimTime,
    // dynamic state
    epoch: u64,
    addr: Option<Ipv4Addr>,
    conn_open: Option<SimTime>,
    boot_time: SimTime,
    offline_until: SimTime,
    kroot_phase: i64,
    windows: Vec<(SimTime, SimTime)>,
    rng: ChaCha12Rng,
}

/// World-level simulation parameters, cloned into every shard.
#[derive(Clone)]
struct SimParams {
    seeds: SeedTree,
    kroot_heartbeat: i64,
    frail_reboot_prob: f64,
    ctrl_drop_rate: f64,
    firmware_dates: Vec<SimTime>,
    firmware_uptake: f64,
    /// The ISP specs, shared with every shard so probes can be materialized
    /// shard-locally from their plans.
    isps: Arc<Vec<IspSpec>>,
}

/// Construction recipe for one share-net: everything a shard needs to
/// materialize the [`IspNetwork`] locally. Building from the plan is
/// O(prefixes) — the pool's background occupancy is the implicit function
/// of `pool_seed`, so no bitmap and no RNG sweep exist anywhere.
struct NetPlan {
    asn: Asn,
    access: AccessConfig,
    prefixes: Arc<Vec<Prefix>>,
    policy: AllocationPolicy,
    occupancy: f64,
    /// Seed of the pool's implicit background occupancy, derived from the
    /// `("world", asn)` → `("pool", net)` SeedTree path: it depends only on
    /// the net's stable global index, never on shard layout or build order.
    pool_seed: u64,
}

/// Placement of one probe, decided in the cheap planning pass so the
/// partition knows probe → net; everything else about the probe is
/// re-derived shard-locally from its `("probe", id)` stream.
struct ProbePlan {
    id: u32,
    /// Index of the probe's origin ISP in the spec list.
    isp: usize,
    /// Chosen access share within that ISP (the plan's one RNG draw).
    share: usize,
    ordinal: usize,
    /// Origin net — global until [`World::into_shards`] remaps it.
    net: usize,
    mover_target: Option<(usize, SimTime)>,
}

/// The planned world before partitioning: per-net recipes and per-probe
/// placements under stable global indices, plus the world-level truth no
/// shard owns. Materialization happens per shard, after partitioning.
struct World {
    net_plans: Vec<NetPlan>,
    net_asn: Vec<Asn>,
    probe_plans: Vec<ProbePlan>,
    truth: GroundTruth,
    admin: Option<(Asn, SimTime, Arc<Vec<Prefix>>)>,
    params: SimParams,
}

/// One shard's event loop: a private set of nets and probes (materialized
/// from plans by [`Sim::materialize`]), a private queue, and private output
/// buffers.
struct Sim {
    net_plans: Vec<NetPlan>,
    probe_plans: Vec<ProbePlan>,
    nets: Vec<IspNetwork>,
    net_asn: Vec<Asn>,
    probes: Vec<ProbeSim>,
    probes_by_asn: BTreeMap<u32, Vec<usize>>,
    queue: EventQueue<Ev>,
    dataset: AtlasDataset,
    truth: GroundTruth,
    params: SimParams,
    admin: Option<(Asn, SimTime, Arc<Vec<Prefix>>)>,
}

impl World {
    fn build(config: &WorldConfig) -> World {
        let seeds = SeedTree::new(config.seed);
        let mut net_plans = Vec::new();
        let mut net_asn = Vec::new();
        let mut probe_plans: Vec<ProbePlan> = Vec::new();
        let mut truth = GroundTruth {
            firmware_dates: config.firmware_dates.clone(),
            ..GroundTruth::default()
        };

        // Plan one share-net per (ISP, access share). Shares of an ISP draw
        // from one `Arc`-shared prefix list; address collisions across
        // shares are harmless because the analysis never compares addresses
        // across probes.
        let mut isp_nets: Vec<Vec<usize>> = Vec::new();
        for spec in &config.isps {
            let world_seeds = seeds.child_id("world", u64::from(spec.asn.0));
            let prefixes = Arc::new(spec.prefixes.clone());
            let mut share_nets = Vec::new();
            for share in &spec.shares {
                let net_idx = net_plans.len();
                net_plans.push(NetPlan {
                    asn: spec.asn,
                    access: share.access.clone(),
                    prefixes: Arc::clone(&prefixes),
                    policy: spec.allocation,
                    occupancy: spec.occupancy,
                    pool_seed: world_seeds.child_id("pool", net_idx as u64).root(),
                });
                net_asn.push(spec.asn);
                share_nets.push(net_idx);
            }
            isp_nets.push(share_nets);

            let mut periodic_hours: Vec<i64> = spec
                .shares
                .iter()
                .filter_map(|s| s.access.periodic_period().map(|d| d.secs() / 3_600))
                .collect();
            periodic_hours.sort_unstable();
            periodic_hours.dedup();
            let total_w: f64 = spec.shares.iter().map(|s| s.weight).sum();
            let periodic_w: f64 = spec
                .shares
                .iter()
                .filter(|s| s.access.periodic_period().is_some() || s.schedule.is_some())
                .map(|s| s.weight)
                .sum();
            truth.isp_policies.insert(
                spec.asn.0,
                IspPolicyTruth {
                    name: spec.name.clone(),
                    country: spec.country.code().to_string(),
                    periodic_hours,
                    renumbers_on_reconnect: spec
                        .shares
                        .iter()
                        .any(|s| s.access.renumbers_on_reconnect()),
                    periodic_weight: periodic_w / total_w.max(f64::MIN_POSITIVE),
                    probes: spec.probes,
                },
            );
        }

        // Plan analyzable probes. A probe's share pick is the first draw of
        // its ("probe", id) stream; the plan consumes it here (the partition
        // needs probe → net) and `make_probe` burns the same draw when the
        // shard materializes, keeping every later draw aligned.
        let mut next_probe_id = 1u32;
        for (isp_idx, spec) in config.isps.iter().enumerate() {
            for k in 0..spec.probes {
                let p =
                    plan_probe(&seeds, spec, isp_idx, &isp_nets[isp_idx], next_probe_id, k, None);
                probe_plans.push(p);
                next_probe_id += 1;
            }
        }

        // Movers: probes that switch between two ISPs mid-year. Hosts move
        // house, not continent: the partner ISP is the next one in the same
        // country, falling back to the same continent, then to anything.
        if config.movers > 0 && config.isps.len() >= 2 {
            let mut mover_rng = seeds.rng_for("movers");
            let partner_of = |from: usize| -> usize {
                let n = config.isps.len();
                let country = config.isps[from].country;
                let continent = country.continent();
                let mut same_continent: Option<usize> = None;
                for k in 1..n {
                    let cand = (from + k) % n;
                    if config.isps[cand].country == country {
                        return cand;
                    }
                    if same_continent.is_none()
                        && config.isps[cand].country.continent() == continent
                    {
                        same_continent = Some(cand);
                    }
                }
                same_continent.unwrap_or((from + 1) % n)
            };
            for m in 0..config.movers {
                let from_isp = m % config.isps.len();
                let to_isp = partner_of(from_isp);
                let switch_day = mover_rng.gen_range(60..300);
                let switch = SimTime(switch_day * DAY + mover_rng.gen_range(0..DAY));
                // Weighted share pick within the target ISP.
                let target_spec = &config.isps[to_isp];
                let total_w: f64 = target_spec.shares.iter().map(|s| s.weight).sum();
                let pick = mover_rng.gen::<f64>() * total_w;
                let target_net = isp_nets[to_isp][pick_share(pick, &target_spec.shares)];
                let spec = &config.isps[from_isp];
                let p = plan_probe(
                    &seeds,
                    spec,
                    from_isp,
                    &isp_nets[from_isp],
                    next_probe_id,
                    10_000 + m,
                    Some((target_net, switch)),
                );
                probe_plans.push(p);
                next_probe_id += 1;
            }
        }

        World {
            net_plans,
            net_asn,
            probe_plans,
            truth,
            admin: config
                .admin_renumber
                .clone()
                .map(|(asn, when, prefixes)| (asn, when, Arc::new(prefixes))),
            params: SimParams {
                seeds,
                kroot_heartbeat: config.kroot_heartbeat.secs().max(KROOT_GRID),
                frail_reboot_prob: config.frail_reboot_prob,
                ctrl_drop_rate: config.controller_drops_per_year / (365.0 * DAY as f64),
                firmware_dates: config.firmware_dates.clone(),
                firmware_uptake: config.firmware_uptake,
                isps: Arc::new(config.isps.clone()),
            },
        }
    }

    /// Partitions the world into independently runnable shards. Nets and
    /// probes are distributed in ascending global order, so within a shard
    /// relative order — and with it every event tie-break — matches the
    /// subsequence an unsharded loop would produce for the same entities.
    fn into_shards(mut self, opts: &SimOptions) -> Vec<Sim> {
        let n = self.net_plans.len();
        if n == 0 {
            return Vec::new();
        }
        // Share-nets draw from independent pools, so the only coupling
        // between two nets of one ASN is administrative renumbering, which
        // rebuilds them together and reconnects the ASN's probes in one
        // pass. Unify an ASN's nets only when that event will actually
        // fire for it — every other ISP, however large, splits into
        // per-share components, which is what keeps giant ASNs from
        // bounding shard balance. `unify_all_isps` restores the coarse
        // pre-splitting layout (the determinism tests compare both).
        let admin_asn = self.admin.as_ref().and_then(|(asn, when, _)| {
            (*when < SimTime::YEAR_END).then_some(*asn)
        });
        let unify = |asn: Asn| opts.unify_all_isps || Some(asn) == admin_asn;
        let mut uf = UnionFind::new(n);
        let mut first_net_of_asn: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, asn) in self.net_asn.iter().enumerate() {
            match first_net_of_asn.entry(asn.0) {
                Entry::Vacant(e) => {
                    e.insert(i);
                }
                Entry::Occupied(e) => {
                    if unify(*asn) {
                        uf.union(*e.get(), i);
                    }
                }
            }
        }
        // Movers are the only cross-ISP edges.
        for p in &self.probe_plans {
            if let Some((target, _)) = p.mover_target {
                uf.union(p.net, target);
            }
        }
        let (comp_of, n_comps) = uf.dense_components();
        let groups = crate::shard::shard_count(n_comps, opts.shard_cap);

        let mut shards: Vec<Sim> =
            (0..groups).map(|_| Sim::empty(self.params.clone())).collect();
        let mut local_net = vec![0usize; n];
        let mut group_of_net = vec![0usize; n];
        for (i, plan) in self.net_plans.drain(..).enumerate() {
            let g = comp_of[i] % groups;
            group_of_net[i] = g;
            local_net[i] = shards[g].net_plans.len();
            shards[g].net_plans.push(plan);
            shards[g].net_asn.push(self.net_asn[i]);
        }
        for mut p in self.probe_plans.drain(..) {
            let g = group_of_net[p.net];
            if let Some((target, when)) = p.mover_target {
                p.mover_target = Some((local_net[target], when));
            }
            p.net = local_net[p.net];
            shards[g].probe_plans.push(p);
        }
        // The admin event belongs to the shard holding that ASN's nets. An
        // ASN absent from the world still gets the event recorded in truth
        // (matching the unsharded semantics), so park it in shard 0.
        if let Some(admin) = self.admin.take() {
            let g = self
                .net_asn
                .iter()
                .position(|&a| a == admin.0)
                .map(|i| group_of_net[i])
                .unwrap_or(0);
            shards[g].admin = Some(admin);
        }
        shards
    }
}

impl Sim {
    fn empty(params: SimParams) -> Sim {
        Sim {
            net_plans: Vec::new(),
            probe_plans: Vec::new(),
            nets: Vec::new(),
            net_asn: Vec::new(),
            probes: Vec::new(),
            probes_by_asn: BTreeMap::new(),
            queue: EventQueue::with_horizon(SimTime::YEAR_END),
            dataset: AtlasDataset::default(),
            truth: GroundTruth::default(),
            params,
            admin: None,
        }
    }

    /// Materializes the shard's nets and probes from their plans — the
    /// expensive half of world construction, normally run inside the shard
    /// map on the executor. Idempotent; returns the seconds spent.
    fn materialize(&mut self) -> f64 {
        if self.net_plans.is_empty() && self.probe_plans.is_empty() {
            return 0.0;
        }
        let sp = dynaddr_obs::span("shard_materialize");
        let seeds = self.params.seeds;
        for plan in self.net_plans.drain(..) {
            let pool = AddressPool::from_parts(
                plan.prefixes,
                plan.policy,
                plan.occupancy,
                plan.pool_seed,
            );
            self.nets.push(IspNetwork::with_pool(plan.asn, pool, plan.access));
        }
        let isps = Arc::clone(&self.params.isps);
        for plan in self.probe_plans.drain(..) {
            let spec = &isps[plan.isp];
            let share = &spec.shares[plan.share];
            let p = make_probe(
                &seeds,
                spec,
                share,
                plan.net,
                plan.id,
                plan.ordinal,
                plan.mover_target,
            );
            // Movers stay registered under their origin ASN, as before.
            let asn = self.net_asn[p.net];
            let local_idx = self.probes.len();
            self.probes_by_asn.entry(asn.0).or_default().push(local_idx);
            self.probes.push(p);
        }
        sp.finish_secs()
    }

    /// Runs the shard to completion, materializing first if that has not
    /// happened yet. Returns the seconds spent materializing.
    fn run(&mut self) -> f64 {
        let build_s = self.materialize();
        // Seed initial events. Starts are scheduled "now" (before the year)
        // by running them directly, since the queue horizon only caps the end.
        for p in 0..self.probes.len() {
            self.handle_start(p);
        }
        if let Some((asn, when, _)) = &self.admin {
            let (asn, when) = (*asn, *when);
            self.queue.push(when, Ev::AdminRenumber { asn });
        }
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Ev::CapExpiry { p, epoch } => self.handle_cap(p, epoch, t),
                Ev::Scheduled { p, epoch } => self.handle_scheduled(p, epoch, t),
                Ev::NetOutage { p } => self.handle_outage(p, t, false),
                Ev::PwOutage { p } => self.handle_outage(p, t, true),
                Ev::Firmware { p } => self.handle_firmware(p, t),
                Ev::CtrlDrop { p, epoch } => self.handle_ctrl_drop(p, epoch, t),
                Ev::Move { p } => self.handle_move(p, t),
                Ev::AdminRenumber { asn } => self.handle_admin(asn, t),
            }
        }
        self.finalize();
        build_s
    }

    // ----- connection-log helpers ---------------------------------------

    fn close_conn(&mut self, p: usize, end: SimTime) {
        let probe = &mut self.probes[p];
        if let Some(start) = probe.conn_open.take() {
            let peer = PeerAddr::V4(probe.addr.expect("open connection implies an address"));
            let end = end.max(start); // zero-length guards
            self.dataset.connections.push(ConnectionLogEntry {
                probe: probe.id,
                start,
                end,
                peer,
            });
        }
    }

    fn open_conn(&mut self, p: usize, start: SimTime) {
        if start >= SimTime::YEAR_END {
            return;
        }
        let frail_roll = {
            let probe = &mut self.probes[p];
            probe.frail && probe.rng.gen::<f64>() < self.params.frail_reboot_prob
        };
        if frail_roll {
            // v1/v2 memory-fragmentation reboot triggered by the new TCP
            // connection: the uptime counter resets moments before the
            // connection is (re)established, and a couple of ping rounds
            // are missed.
            let probe = &mut self.probes[p];
            let back = probe.rng.gen_range(30..120);
            probe.boot_time = start - SimDuration::from_secs(back);
            let w0 = probe.boot_time - SimDuration::from_secs(90);
            let w1 = probe.boot_time;
            probe.windows.push((w0, w1));
            self.emit_outage_kroot(p, w0, w1, false);
        }
        let probe = &mut self.probes[p];
        probe.conn_open = Some(start);
        let uptime = (start - probe.boot_time).secs().max(0) as u64;
        self.dataset.uptime.push(SosUptimeRecord {
            probe: probe.id,
            timestamp: start,
            uptime_secs: uptime,
        });
    }

    // ----- k-root helpers -------------------------------------------------

    /// Largest grid instant `<= t` for this probe's ping phase.
    fn grid_at_or_before(&self, p: usize, t: SimTime) -> SimTime {
        let phase = self.probes[p].kroot_phase;
        SimTime(t.0 - (t.0 - phase).rem_euclid(KROOT_GRID))
    }

    /// Emits the k-root evidence for an outage window `[t0, t1)`.
    ///
    /// `probe_alive` — during network outages the probe keeps measuring
    /// (loss records with growing LTS); during power outages it is silent
    /// and only the bracketing all-OK records are emitted.
    fn emit_outage_kroot(&mut self, p: usize, t0: SimTime, t1: SimTime, probe_alive: bool) {
        let id = self.probes[p].id;
        let pre = self.grid_at_or_before(p, t0);
        let base_lts = self.probes[p].rng.gen_range(20..220);
        self.dataset.kroot.push(KrootPingRecord {
            probe: id,
            timestamp: pre,
            sent: 3,
            success: 3,
            lts_secs: base_lts,
        });
        if probe_alive {
            // Loss records at the 4-minute grid, thinned after the first
            // hour; the final loss record is always emitted (the detector
            // uses first and last loss only).
            let mut g = pre + SimDuration::from_secs(KROOT_GRID);
            let mut last_emitted: Option<SimTime> = None;
            let mut last_loss: Option<SimTime> = None;
            while g < t1 {
                let in_first_hour = (g - t0).secs() <= 3_600;
                let on_thin_grid = (g.0 - pre.0) % LOSS_THIN_SECS < KROOT_GRID;
                if in_first_hour || on_thin_grid {
                    self.dataset.kroot.push(KrootPingRecord {
                        probe: id,
                        timestamp: g,
                        sent: 3,
                        success: 0,
                        lts_secs: base_lts + (g - pre).secs(),
                    });
                    last_emitted = Some(g);
                }
                last_loss = Some(g);
                g += SimDuration::from_secs(KROOT_GRID);
            }
            if let Some(last) = last_loss {
                if last_emitted != Some(last) {
                    self.dataset.kroot.push(KrootPingRecord {
                        probe: id,
                        timestamp: last,
                        sent: 3,
                        success: 0,
                        lts_secs: base_lts + (last - pre).secs(),
                    });
                }
            }
        }
        // First all-OK round after recovery.
        let mut post = self.grid_at_or_before(p, t1);
        if post < t1 {
            post += SimDuration::from_secs(KROOT_GRID);
        }
        if post < SimTime::YEAR_END + SimDuration::from_days(1) {
            let lts = self.probes[p].rng.gen_range(20..220);
            self.dataset.kroot.push(KrootPingRecord {
                probe: id,
                timestamp: post,
                sent: 3,
                success: 3,
                lts_secs: lts,
            });
        }
    }

    // ----- scheduling helpers ----------------------------------------------

    /// Re-arms ISP-side and CPE-side periodic events after a state change.
    fn rearm(&mut self, p: usize, from: SimTime) {
        let epoch = self.probes[p].epoch;
        let client = self.probes[p].client;
        let net = self.probes[p].net;
        if let Some(NextIspAction::CapExpiry(t)) = self.nets[net].next_action(client) {
            self.queue.push(t.max(from), Ev::CapExpiry { p, epoch });
        }
        if let Some(s) = self.probes[p].schedule {
            let t = next_daily(from, s.hour, s.minute);
            self.queue.push(t, Ev::Scheduled { p, epoch });
        }
    }

    fn schedule_outage(&mut self, p: usize, from: SimTime, power: bool) {
        let probe = &mut self.probes[p];
        let rate = if power { probe.pw_rate } else { probe.net_rate };
        if let Some(gap) = poisson_gap(&mut probe.rng, rate) {
            let ev = if power { Ev::PwOutage { p } } else { Ev::NetOutage { p } };
            self.queue.push(from + gap, ev);
        }
    }

    fn schedule_ctrl_drop(&mut self, p: usize, from: SimTime) {
        let epoch = self.probes[p].epoch;
        if let Some(gap) = poisson_gap(&mut self.probes[p].rng, self.params.ctrl_drop_rate) {
            self.queue.push(from + gap, Ev::CtrlDrop { p, epoch });
        }
    }

    // ----- event handlers ---------------------------------------------------

    fn handle_start(&mut self, p: usize) {
        let join = self.probes[p].join;
        let client = self.probes[p].client;
        let net = self.probes[p].net;
        let out = {
            let probe = &mut self.probes[p];
            self.nets[net].connect(&mut probe.rng, client, join, None)
        };
        self.probes[p].addr = Some(out.addr);
        let delay = self.probes[p].rng.gen_range(5..60);
        self.open_conn(p, join + SimDuration::from_secs(delay));
        self.rearm(p, join);
        self.schedule_outage(p, join, false);
        self.schedule_outage(p, join, true);
        self.schedule_ctrl_drop(p, join);
        if let Some((_, switch)) = self.probes[p].mover_target {
            self.queue.push(switch, Ev::Move { p });
        }
        // Firmware pushes: each update reaches this probe with probability
        // `firmware_uptake`, staggered over the following 36 hours.
        for i in 0..self.params.firmware_dates.len() {
            let date = self.params.firmware_dates[i];
            let probe = &mut self.probes[p];
            if probe.rng.gen::<f64>() < self.params.firmware_uptake {
                let stagger = probe.rng.gen_range(0..(36 * 3_600));
                self.queue.push(date + SimDuration::from_secs(stagger), Ev::Firmware { p });
            }
        }
    }

    /// An outage hits the CPE/probe at `t`. `power` distinguishes loss of
    /// power (at the CPE; fate-sharing decides whether the probe dies too)
    /// from pure connectivity loss.
    fn handle_outage(&mut self, p: usize, t: SimTime, power: bool) {
        if t < self.probes[p].offline_until {
            // Another outage is still in progress; try again after it.
            let resume = self.probes[p].offline_until;
            self.schedule_outage(p, resume, power);
            return;
        }
        let dur = {
            let probe = &mut self.probes[p];
            // Disjoint field borrows: the distribution is read-only while
            // the RNG advances, so no clone per event.
            let dist = if power { &probe.pw_dur } else { &probe.net_dur };
            let mut d = dist.sample_duration(&mut probe.rng);
            if power {
                // A power cycle is never shorter than the reboot time.
                d = d.max(SimDuration::from_secs(90));
            } else {
                d = d.max(SimDuration::from_secs(20));
            }
            d
        };
        let end = t + dur;
        let probe_dies = power && self.probes[p].usb_fate_shared;
        let kind = match (power, probe_dies) {
            (true, true) => TruthOutageKind::Power,
            (true, false) => TruthOutageKind::CpeOnlyPower,
            (false, _) => TruthOutageKind::Network,
        };
        self.probes[p].windows.push((t, end));
        self.probes[p].offline_until = end;
        // k-root evidence: the probe keeps measuring unless it lost power.
        self.emit_outage_kroot(p, t, end, !probe_dies);
        if probe_dies {
            self.probes[p].boot_time = end;
        }
        self.probes[p].epoch += 1;

        // ISP-side recovery.
        let client = self.probes[p].client;
        let net = self.probes[p].net;
        let out = {
            let probe = &mut self.probes[p];
            self.nets[net].connect(&mut probe.rng, client, end, Some(dur))
        };
        let changed = self.probes[p].addr != Some(out.addr);

        let breaks = probe_dies || changed || dur.secs() > TCP_BREAK_SECS;
        if breaks {
            self.close_conn(p, t);
        }
        self.probes[p].addr = Some(out.addr);
        if breaks {
            let delay = {
                let probe = &mut self.probes[p];
                if changed && !probe_dies {
                    // TCP retransmission exhaustion before reconnecting.
                    probe.rng.gen_range(600..1_560)
                } else {
                    probe.rng.gen_range(60..240)
                }
            };
            self.open_conn(p, end + SimDuration::from_secs(delay));
        }

        self.truth.outages.push(TruthOutage {
            probe: self.probes[p].id,
            kind,
            start: t,
            duration: dur,
            address_changed: changed,
        });
        if changed {
            self.truth.changes.push(TruthChange {
                probe: self.probes[p].id,
                time: end,
                from: None,
                to: out.addr,
                cause: if power { ChangeCause::PowerOutage } else { ChangeCause::NetworkOutage },
            });
        }
        self.rearm(p, end);
        self.schedule_outage(p, end, power);
        self.schedule_ctrl_drop(p, end);
    }

    fn handle_cap(&mut self, p: usize, epoch: u64, t: SimTime) {
        if self.probes[p].epoch != epoch {
            return;
        }
        if t < self.probes[p].offline_until {
            // Probe is in a (firmware-style) window; defer.
            let resume = self.probes[p].offline_until + SimDuration::from_secs(60);
            self.queue.push(resume, Ev::CapExpiry { p, epoch });
            return;
        }
        let client = self.probes[p].client;
        let net = self.probes[p].net;
        let out = {
            let probe = &mut self.probes[p];
            self.nets[net].handle_action(&mut probe.rng, client, t)
        };
        // Judge the change against the probe's own view — the server's
        // memory may have been reset by administrative renumbering.
        let changed = self.probes[p].addr != Some(out.addr);
        if !changed {
            // Skipped termination: session runs another period.
            if let Some(NextIspAction::CapExpiry(next)) = self.nets[net].next_action(client) {
                self.queue.push(next, Ev::CapExpiry { p, epoch });
            }
            return;
        }
        self.close_conn(p, t);
        self.probes[p].addr = Some(out.addr);
        self.probes[p].epoch += 1;
        let delay = self.probes[p].rng.gen_range(600..1_560);
        self.open_conn(p, t + SimDuration::from_secs(delay));
        let cause = match self.nets[net].access() {
            dynaddr_ispnet::AccessConfig::Dhcp(_) => ChangeCause::PoolRotation,
            dynaddr_ispnet::AccessConfig::Ppp(_) => ChangeCause::PeriodicCap,
        };
        self.truth.changes.push(TruthChange {
            probe: self.probes[p].id,
            time: t,
            from: None,
            to: out.addr,
            cause,
        });
        self.rearm(p, t);
    }

    fn handle_scheduled(&mut self, p: usize, epoch: u64, t: SimTime) {
        if self.probes[p].epoch != epoch {
            return;
        }
        if t < self.probes[p].offline_until {
            let resume = self.probes[p].offline_until + SimDuration::from_secs(60);
            self.queue.push(resume, Ev::Scheduled { p, epoch });
            return;
        }
        let (skip, hour, minute) = {
            let s = self.probes[p].schedule.expect("scheduled event without schedule");
            let roll = self.probes[p].rng.gen::<f64>() < s.skip_prob;
            (roll, s.hour, s.minute)
        };
        if skip {
            let next = next_daily(t, hour, minute);
            self.queue.push(next, Ev::Scheduled { p, epoch });
            return;
        }
        let client = self.probes[p].client;
        let net = self.probes[p].net;
        let out = {
            let probe = &mut self.probes[p];
            self.nets[net].force_reconnect(&mut probe.rng, client, t)
        };
        let changed = self.probes[p].addr != Some(out.addr);
        self.close_conn(p, t);
        self.probes[p].addr = Some(out.addr);
        self.probes[p].epoch += 1;
        let delay = if changed {
            self.probes[p].rng.gen_range(600..1_560)
        } else {
            self.probes[p].rng.gen_range(60..240)
        };
        self.open_conn(p, t + SimDuration::from_secs(delay));
        if changed {
            self.truth.changes.push(TruthChange {
                probe: self.probes[p].id,
                time: t,
                from: None,
                to: out.addr,
                cause: ChangeCause::ScheduledReconnect,
            });
        }
        self.rearm(p, t);
    }

    fn handle_firmware(&mut self, p: usize, t: SimTime) {
        if t < self.probes[p].offline_until || t < self.probes[p].join {
            return; // picked up with the next push
        }
        let reboot_secs = self.probes[p].rng.gen_range(120..300);
        let end = t + SimDuration::from_secs(reboot_secs);
        self.close_conn(p, t);
        self.probes[p].windows.push((t, end));
        self.probes[p].offline_until = end;
        self.emit_outage_kroot(p, t, end, false);
        self.probes[p].boot_time = end;
        self.truth.firmware_reboots.push((self.probes[p].id, end));
        let delay = self.probes[p].rng.gen_range(30..90);
        // Same CPE, same address: the probe reconnects as it was.
        self.open_conn(p, end + SimDuration::from_secs(delay));
    }

    fn handle_ctrl_drop(&mut self, p: usize, epoch: u64, t: SimTime) {
        if self.probes[p].epoch != epoch {
            return;
        }
        if t >= self.probes[p].offline_until && self.probes[p].conn_open.is_some() {
            self.close_conn(p, t);
            let delay = self.probes[p].rng.gen_range(45..180);
            self.open_conn(p, t + SimDuration::from_secs(delay));
        }
        self.schedule_ctrl_drop(p, t);
    }

    fn handle_move(&mut self, p: usize, t: SimTime) {
        let (target_net, _) = self.probes[p].mover_target.expect("move without target");
        self.close_conn(p, t);
        let old_net = self.probes[p].net;
        let client = self.probes[p].client;
        self.nets[old_net].disconnect(client);
        // The physical move takes hours to days; the probe is unpowered.
        let gap_secs = self.probes[p].rng.gen_range(3_600..(72 * 3_600));
        let end = t + SimDuration::from_secs(gap_secs);
        self.probes[p].windows.push((t, end));
        self.probes[p].offline_until = end;
        self.probes[p].boot_time = end;
        self.probes[p].epoch += 1;
        self.probes[p].net = target_net;
        let out = {
            let probe = &mut self.probes[p];
            self.nets[target_net].connect(&mut probe.rng, client, end, None)
        };
        self.probes[p].addr = Some(out.addr);
        let delay = self.probes[p].rng.gen_range(60..240);
        self.open_conn(p, end + SimDuration::from_secs(delay));
        self.truth.changes.push(TruthChange {
            probe: self.probes[p].id,
            time: end,
            from: None,
            to: out.addr,
            cause: ChangeCause::Moved,
        });
        self.rearm(p, end);
    }

    fn handle_admin(&mut self, asn: Asn, t: SimTime) {
        let new_prefixes = self
            .admin
            .as_ref()
            .map(|(_, _, p)| Arc::clone(p))
            .expect("admin event without config");
        self.truth.admin_renumbering = Some((asn, t));
        // Rebuild every share-net of this ASN. The RNG stream is keyed by
        // ASN — not shared with anything else — so the outcome does not
        // depend on shard layout or on events elsewhere in the world.
        let mut admin_rng = self.params.seeds.rng_for_id("admin", u64::from(asn.0));
        for i in 0..self.nets.len() {
            if self.net_asn[i] == asn {
                self.nets[i].admin_renumber(&mut admin_rng, Arc::clone(&new_prefixes), 0.4);
            }
        }
        let members = self.probes_by_asn.get(&asn.0).cloned().unwrap_or_default();
        for p in members {
            if t < self.probes[p].offline_until || self.probes[p].net_asn_changed(&self.net_asn, asn)
            {
                continue;
            }
            let stagger = self.probes[p].rng.gen_range(0..1_800);
            let when = t + SimDuration::from_secs(stagger);
            self.close_conn(p, when);
            self.probes[p].epoch += 1;
            let client = self.probes[p].client;
            let net = self.probes[p].net;
            let out = {
                let probe = &mut self.probes[p];
                self.nets[net].connect(&mut probe.rng, client, when, None)
            };
            self.probes[p].addr = Some(out.addr);
            let delay = self.probes[p].rng.gen_range(600..1_560);
            self.open_conn(p, when + SimDuration::from_secs(delay));
            self.truth.changes.push(TruthChange {
                probe: self.probes[p].id,
                time: when,
                from: None,
                to: out.addr,
                cause: ChangeCause::AdminRenumber,
            });
            self.rearm(p, when);
        }
    }

    // ----- finalization -------------------------------------------------------

    fn finalize(&mut self) {
        // Close still-open connections at the collection horizon.
        for p in 0..self.probes.len() {
            self.close_conn(p, SimTime::YEAR_END);
        }
        // Heartbeats + metadata.
        for p in 0..self.probes.len() {
            self.emit_heartbeats(p);
            let probe = &self.probes[p];
            self.dataset.meta.push(ProbeMeta {
                probe: probe.id,
                version: probe.version,
                country: probe.country,
                tags: probe.tags.clone(),
            });
        }
    }

    fn emit_heartbeats(&mut self, p: usize) {
        let (id, join, phase) =
            (self.probes[p].id, self.probes[p].join, self.probes[p].kroot_phase);
        let step = self.params.kroot_heartbeat;
        // The windows list is only needed here, at end of run: take it
        // rather than cloning one Vec per probe.
        let mut windows = std::mem::take(&mut self.probes[p].windows);
        windows.sort();
        let mut w = 0usize;
        let mut t = SimTime(join.0 - (join.0 - phase).rem_euclid(KROOT_GRID)) + SimDuration::from_secs(step);
        let guard = SimDuration::from_secs(KROOT_GRID + 60);
        while t < SimTime::YEAR_END {
            while w < windows.len() && windows[w].1 + guard < t {
                w += 1;
            }
            let inside = w < windows.len() && windows[w].0 - guard <= t && t <= windows[w].1 + guard;
            if !inside {
                let lts = self.probes[p].rng.gen_range(20..220);
                self.dataset.kroot.push(KrootPingRecord {
                    probe: id,
                    timestamp: t,
                    sent: 3,
                    success: 3,
                    lts_secs: lts,
                });
            }
            t += SimDuration::from_secs(step);
        }
    }
}

impl ProbeSim {
    /// Whether this probe has already moved away from `asn` (movers keep
    /// their original ASN registration in `probes_by_asn`).
    fn net_asn_changed(&self, net_asn: &[Asn], asn: Asn) -> bool {
        net_asn[self.net] != asn
    }
}

/// Next instant strictly after `from` at the given GMT hour:minute.
fn next_daily(from: SimTime, hour: u32, minute: u32) -> SimTime {
    let tod = i64::from(hour) * 3_600 + i64::from(minute) * 60;
    let day = from.0.div_euclid(DAY);
    let mut t = SimTime(day * DAY + tod);
    while t <= from {
        t += SimDuration::from_days(1);
    }
    t
}

/// Weighted share pick. `pick` is a uniform draw already scaled by the
/// total weight; the scan order is the contract the planning pass and the
/// shard-local materialization agree on.
fn pick_share(mut pick: f64, shares: &[crate::config::AccessShare]) -> usize {
    let mut chosen = shares.len() - 1;
    for (si, share) in shares.iter().enumerate() {
        if pick < share.weight {
            chosen = si;
            break;
        }
        pick -= share.weight;
    }
    chosen
}

/// Plans one probe: consumes exactly the first draw of the probe's
/// `("probe", id)` stream (the weighted share pick) and records the
/// placement. [`make_probe`] burns the same draw at materialization, so the
/// rest of the stream is identical either way.
fn plan_probe(
    seeds: &SeedTree,
    spec: &IspSpec,
    isp: usize,
    share_nets: &[usize],
    id: u32,
    ordinal: usize,
    mover_target: Option<(usize, SimTime)>,
) -> ProbePlan {
    let mut rng = seeds.rng_for_id("probe", u64::from(id));
    let total_w: f64 = spec.shares.iter().map(|s| s.weight).sum();
    let pick = rng.gen::<f64>() * total_w;
    let share = pick_share(pick, &spec.shares);
    ProbePlan { id, isp, share, ordinal, net: share_nets[share], mover_target }
}

fn make_probe(
    seeds: &SeedTree,
    spec: &IspSpec,
    share: &crate::config::AccessShare,
    net: usize,
    id: u32,
    ordinal: usize,
    mover_target: Option<(usize, SimTime)>,
) -> ProbeSim {
    let mut rng = seeds.rng_for_id("probe", u64::from(id));

    // Burn the share-pick draw the planning pass consumed (`plan_probe`).
    let _ = rng.gen::<f64>();

    let schedule = share.schedule.and_then(|s: CpeSchedule| {
        if rng.gen::<f64>() < s.adoption {
            let span = if s.window_end_hour >= s.window_start_hour {
                s.window_end_hour - s.window_start_hour
            } else {
                24 - s.window_start_hour + s.window_end_hour
            };
            let hour = (s.window_start_hour + rng.gen_range(0..span.max(1))) % 24;
            Some(ScheduleCfg { hour, minute: rng.gen_range(0..60), skip_prob: s.skip_prob })
        } else {
            None
        }
    });

    let version = {
        let (v1, v2, v3) = spec.version_mix;
        let total = v1 + v2 + v3;
        let roll = rng.gen::<f64>() * total;
        if roll < v1 {
            ProbeVersion::V1
        } else if roll < v1 + v2 {
            ProbeVersion::V2
        } else {
            ProbeVersion::V3
        }
    };

    // Per-probe outage-rate multiplier: households differ.
    let mult = (rng.gen::<f64>() * 1.6 + 0.4).max(0.1); // U(0.4, 2.0)
    let year_secs = 365.0 * DAY as f64;

    // Most probes were deployed before 2015; some join during the year.
    let join = if ordinal % 7 == 6 {
        SimTime(rng.gen_range(0..(300 * DAY)))
    } else {
        SimTime(-rng.gen_range(1..(30 * DAY)))
    };

    ProbeSim {
        id: ProbeId(id),
        version,
        country: spec.country,
        tags: vec![ProbeTag::Home],
        net,
        client: ClientId(u64::from(id)),
        mover_target,
        usb_fate_shared: rng.gen::<f64>() < spec.usb_fate_shared,
        schedule,
        net_rate: spec.outages.network_per_year * mult / year_secs,
        pw_rate: spec.outages.power_per_year * mult / year_secs,
        net_dur: spec.outages.network_duration.clone(),
        pw_dur: spec.outages.power_duration.clone(),
        frail: !version.reliable_uptime(),
        join,
        epoch: 0,
        addr: None,
        conn_open: None,
        boot_time: join - SimDuration::from_days(3),
        offline_until: join,
        kroot_phase: i64::from(id) % KROOT_GRID,
        windows: Vec::new(),
        rng,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccessShare, FillerSpec, OutageSpec};
    use dynaddr_ispnet::pool::AllocationPolicy;
    use dynaddr_ispnet::{AccessConfig, DhcpConfig, PppConfig};

    fn tiny_world() -> WorldConfig {
        let mut w = WorldConfig::empty(42);
        let mut periodic = IspSpec::new("PeriodicNet", 64500, "DE", 6);
        periodic.prefixes = vec!["10.0.0.0/18".parse().unwrap(), "10.64.0.0/18".parse().unwrap()];
        periodic.allocation = AllocationPolicy::RandomAny;
        periodic.shares = vec![AccessShare {
            weight: 1.0,
            access: AccessConfig::Ppp(PppConfig {
                session_cap: Some(SimDuration::from_hours(24)),
                ..PppConfig::default()
            }),
            schedule: None,
        }];
        let mut stable = IspSpec::new("StableNet", 64501, "US", 6);
        stable.prefixes = vec!["172.16.0.0/18".parse().unwrap()];
        stable.outages = OutageSpec::stable();
        stable.shares = vec![AccessShare {
            weight: 1.0,
            access: AccessConfig::Dhcp(DhcpConfig {
                churn_rate_per_hour: 0.01,
                ..DhcpConfig::default()
            }),
            schedule: None,
        }];
        w.isps = vec![periodic, stable];
        w.filler = FillerSpec::none();
        w.firmware_dates = WorldConfig::firmware_dates_2015();
        w
    }

    #[test]
    fn simulation_is_deterministic() {
        let w = tiny_world();
        let a = simulate(&w);
        let b = simulate(&w);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.truth.changes.len(), b.truth.changes.len());
    }

    #[test]
    fn different_seeds_differ() {
        let w = tiny_world();
        let mut w2 = w.clone();
        w2.seed = 43;
        let a = simulate(&w);
        let b = simulate(&w2);
        assert_ne!(a.dataset.connections, b.dataset.connections);
    }

    #[test]
    fn periodic_isp_produces_daily_changes() {
        let out = simulate(&tiny_world());
        let periodic_changes = out
            .truth
            .changes
            .iter()
            .filter(|c| {
                matches!(c.cause, ChangeCause::PeriodicCap | ChangeCause::ScheduledReconnect)
            })
            .count();
        // 6 probes × ~365 daily changes, minus outage interruptions.
        assert!(
            periodic_changes > 6 * 250,
            "expected thousands of periodic changes, got {periodic_changes}"
        );
    }

    #[test]
    fn connection_logs_are_well_formed() {
        let out = simulate(&tiny_world());
        assert!(!out.dataset.connections.is_empty());
        for c in &out.dataset.connections {
            assert!(c.end >= c.start, "entry with negative duration: {c:?}");
            assert!(c.end <= SimTime::YEAR_END);
        }
        // Entries of each probe must not overlap.
        for meta in &out.dataset.meta {
            let entries = out.dataset.connections_of(meta.probe);
            for pair in entries.windows(2) {
                assert!(
                    pair[1].start >= pair[0].end,
                    "overlapping connections for {}: {:?} then {:?}",
                    meta.probe,
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn uptime_records_match_connections() {
        let out = simulate(&tiny_world());
        // One SOS record per connection start within the year.
        let starts: usize = out
            .dataset
            .connections
            .iter()
            .filter(|c| c.start < SimTime::YEAR_END)
            .count();
        assert_eq!(out.dataset.uptime.len(), starts);
    }

    #[test]
    fn outage_truth_recorded_for_both_kinds() {
        let out = simulate(&tiny_world());
        let nw = out
            .truth
            .outages
            .iter()
            .filter(|o| o.kind == TruthOutageKind::Network)
            .count();
        let pw = out
            .truth
            .outages
            .iter()
            .filter(|o| o.kind == TruthOutageKind::Power)
            .count();
        assert!(nw > 50, "network outages: {nw}");
        assert!(pw > 20, "power outages: {pw}");
    }

    #[test]
    fn ppp_changes_on_most_outages_dhcp_rarely() {
        let out = simulate(&tiny_world());
        let rate_for = |asn_probe_low: bool| {
            let (mut changed, mut total) = (0, 0);
            for o in &out.truth.outages {
                // Probes 1..=6 are PeriodicNet (PPP), 7..=12 StableNet (DHCP).
                let is_ppp = o.probe.0 <= 6;
                if is_ppp == asn_probe_low && o.kind == TruthOutageKind::Network {
                    total += 1;
                    if o.address_changed {
                        changed += 1;
                    }
                }
            }
            changed as f64 / total.max(1) as f64
        };
        let ppp_rate = rate_for(true);
        let dhcp_rate = rate_for(false);
        assert!(ppp_rate > 0.6, "PPP outage-change rate {ppp_rate}");
        assert!(dhcp_rate < 0.3, "DHCP outage-change rate {dhcp_rate}");
        assert!(ppp_rate > dhcp_rate + 0.3);
    }

    #[test]
    fn firmware_reboots_cluster_on_push_dates() {
        let out = simulate(&tiny_world());
        assert!(!out.truth.firmware_reboots.is_empty());
        for (_, t) in &out.truth.firmware_reboots {
            let close = WorldConfig::firmware_dates_2015()
                .iter()
                .any(|d| (*t - *d).secs() >= 0 && (*t - *d).secs() < 37 * 3_600);
            assert!(close, "firmware reboot at {t} not near any push date");
        }
    }

    #[test]
    fn kroot_evidence_exists_for_network_outages() {
        let out = simulate(&tiny_world());
        let lost = out.dataset.kroot.iter().filter(|k| k.all_lost()).count();
        assert!(lost > 100, "lost-ping records: {lost}");
        // LTS grows during loss runs.
        let mut prev: Option<&KrootPingRecord> = None;
        let mut grew = 0;
        for k in &out.dataset.kroot {
            if let Some(p) = prev {
                if p.probe == k.probe && p.all_lost() && k.all_lost() {
                    assert!(k.lts_secs > p.lts_secs, "LTS must grow in a loss run");
                    grew += 1;
                }
            }
            prev = Some(k);
        }
        assert!(grew > 10);
    }

    #[test]
    fn movers_change_as() {
        let mut w = tiny_world();
        w.movers = 2;
        let out = simulate(&w);
        let moved: Vec<_> = out
            .truth
            .changes
            .iter()
            .filter(|c| c.cause == ChangeCause::Moved)
            .collect();
        assert_eq!(moved.len(), 2);
        // Mover address must come from the target ISP's space after moving.
        for c in moved {
            assert!(
                "172.16.0.0/18".parse::<dynaddr_types::Prefix>().unwrap().contains(c.to)
                    || "10.0.0.0/8".parse::<dynaddr_types::Prefix>().unwrap().contains(c.to),
            );
        }
    }

    #[test]
    fn admin_renumber_moves_isp_probes() {
        let mut w = tiny_world();
        w.admin_renumber = Some((
            Asn(64501),
            SimTime::from_date(6, 15, 3, 0, 0),
            vec!["198.18.0.0/17".parse().unwrap()],
        ));
        let out = simulate(&w);
        let admin: Vec<_> = out
            .truth
            .changes
            .iter()
            .filter(|c| c.cause == ChangeCause::AdminRenumber)
            .collect();
        assert!(!admin.is_empty());
        for c in &admin {
            assert!("198.18.0.0/17".parse::<dynaddr_types::Prefix>().unwrap().contains(c.to));
        }
    }

    #[test]
    fn next_daily_computes_following_occurrence() {
        let from = SimTime::from_date(3, 10, 5, 30, 0);
        let t = next_daily(from, 4, 0);
        assert_eq!(t, SimTime::from_date(3, 11, 4, 0, 0));
        let t2 = next_daily(from, 6, 0);
        assert_eq!(t2, SimTime::from_date(3, 10, 6, 0, 0));
        // Exactly at the boundary: strictly after.
        let at = SimTime::from_date(3, 10, 4, 0, 0);
        assert_eq!(next_daily(at, 4, 0), SimTime::from_date(3, 11, 4, 0, 0));
    }
}
