//! Deterministic discrete-event queue: a bucketed calendar queue.
//!
//! The queue orders `(time, sequence, event)` triples; the monotone
//! sequence number makes ordering of simultaneous events deterministic
//! (FIFO among equals), which keeps whole-world simulations
//! bit-reproducible across runs and platforms.
//!
//! ## Why a calendar queue
//!
//! The simulator's event loop is its hottest path, and a `BinaryHeap` pays
//! `O(log n)` comparison-heavy sifts on every push *and* pop. Simulation
//! events are spread over a fixed, known horizon (the 2015 measurement
//! year), which is exactly the shape a calendar queue exploits:
//!
//! * entries live in a **flat slot arena** (`Vec<Option<Entry>>` plus a
//!   free list), so push/pop never move event payloads around;
//! * the `[0, horizon)` span is cut into fixed-width **time buckets**
//!   (day-width by default, configurable via [`set_bucket_width`]); a push
//!   appends its slot index to one bucket — `O(1)`, no comparisons;
//! * pop drains buckets in order. When the cursor enters a bucket, the
//!   bucket is sorted once by `(time, seq)` into the **active run** and
//!   then consumed front to back. Sorting `k` events costs `O(k log k)`
//!   amortized over the `k` pops they feed, and the `(time, seq)` key is
//!   unique, so an unstable sort is still deterministic;
//! * events pushed at or before the cursor (same-bucket follow-ups like
//!   reconnect delays, or — allowed, though the simulator never does it —
//!   times before an already-popped event) are **ordered-inserted** into
//!   the remaining active run, preserving exact priority-queue semantics;
//! * events at or past the bucketed span land in an **overflow list**
//!   that is sorted and drained only after every bucket is exhausted
//!   (far-future events on a queue built without a horizon);
//! * when a single bucket's occupancy exceeds [`MAX_BUCKET_OCCUPANCY`]
//!   the bucket width is **halved and the un-drained region re-bucketed**,
//!   keeping per-bucket sorts and ordered inserts cheap for worlds much
//!   denser than the defaults. The trigger depends only on the push/pop
//!   sequence, so resizing never breaks determinism.
//!
//! The pop order is byte-for-byte the order the previous `BinaryHeap`
//! implementation produced — a property-based differential test below
//! drives both through randomized interleavings. The queue also counts its
//! traffic ([`QueueStats`]): `perfsnap` aggregates per-shard queue
//! telemetry into `BENCH_pipeline.json`.

use dynaddr_types::time::DAY;
use dynaddr_types::SimTime;
use std::sync::atomic::{AtomicI64, Ordering};

/// Default bucket width: one simulated day. With the year-long horizon this
/// yields 365 buckets, and per-probe event cadence (a handful of events per
/// day) keeps buckets small enough to sort for pennies.
pub const DEFAULT_BUCKET_WIDTH: i64 = DAY;

/// A bucket holding more events than this triggers a width halving.
pub const MAX_BUCKET_OCCUPANCY: usize = 1_024;

/// Resizing never narrows buckets below one simulated minute: below that,
/// simultaneous-event pileups would trigger futile rebuilds forever.
pub const MIN_BUCKET_WIDTH: i64 = 60;

static WIDTH_OVERRIDE: AtomicI64 = AtomicI64::new(0);

/// Sets (or with `None` clears) a process-wide override of the bucket
/// width used by queues constructed after the call. Exists so determinism
/// tests can force non-default calendar layouts; the simulation output
/// must be byte-identical for every width.
pub fn set_bucket_width(width: Option<i64>) {
    let w = width.unwrap_or(0);
    assert!(width.is_none() || w > 0, "bucket width must be positive");
    WIDTH_OVERRIDE.store(w, Ordering::SeqCst);
}

/// The bucket width the next constructed queue will use.
pub fn current_bucket_width() -> i64 {
    match WIDTH_OVERRIDE.load(Ordering::SeqCst) {
        0 => DEFAULT_BUCKET_WIDTH,
        w => w,
    }
}

/// Lifetime traffic counters of one [`EventQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events accepted by `push` (horizon drops not counted).
    pub pushes: u64,
    /// Events returned by `pop`.
    pub pops: u64,
    /// Maximum number of simultaneously pending events.
    pub max_len: usize,
    /// Pushes that landed in the overflow (past-the-span) list.
    pub overflow_hits: u64,
    /// Bucket-width halvings triggered by occupancy skew.
    pub resizes: u64,
    /// Queue length sampled at every push: the occupancy distribution the
    /// calendar sizing fights against. Merges bit-identically across
    /// shards (elementwise u64 adds), so the aggregate is worker-count
    /// invariant like every other field here.
    pub occupancy: dynaddr_obs::Histogram,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// A time-ordered event queue with deterministic tie-breaking.
pub struct EventQueue<E> {
    /// Flat arena; `None` slots are free and their indices sit in `free`.
    slots: Vec<Option<Entry<E>>>,
    free: Vec<u32>,
    /// `buckets[b]` holds slot indices with `time in [b*width, (b+1)*width)`
    /// (bucket 0 additionally takes pre-span times), unsorted.
    buckets: Vec<Vec<u32>>,
    /// Current bucket width in seconds.
    width: i64,
    /// End of the bucketed span; times at or past it go to `overflow`.
    span_end: i64,
    /// Next bucket to activate; buckets below it are already drained into
    /// (or behind) the active run.
    cur: usize,
    /// The active run: slot indices sorted by `(time, seq)`, consumed from
    /// `run_pos`. Late pushes at or before the cursor are ordered-inserted.
    run: Vec<u32>,
    run_pos: usize,
    /// Slot indices at or past `span_end`, unsorted until activated.
    overflow: Vec<u32>,
    /// Whether `run` is the (sorted) overflow drain.
    overflow_active: bool,
    len: usize,
    seq: u64,
    /// Events at or beyond this horizon are silently dropped on push.
    horizon: Option<SimTime>,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with no horizon. The calendar still spans
    /// `[0, YEAR_END)`; anything later is overflow.
    pub fn new() -> EventQueue<E> {
        EventQueue::with_layout(None, current_bucket_width())
    }

    /// Creates a queue that drops events scheduled at or after `horizon`
    /// (the end of the measurement year).
    pub fn with_horizon(horizon: SimTime) -> EventQueue<E> {
        EventQueue::with_layout(Some(horizon), current_bucket_width())
    }

    /// Creates a queue with an explicit horizon and bucket width (tests;
    /// normal construction goes through [`with_horizon`] and the global
    /// width override).
    ///
    /// [`with_horizon`]: EventQueue::with_horizon
    pub fn with_layout(horizon: Option<SimTime>, width: i64) -> EventQueue<E> {
        assert!(width > 0, "bucket width must be positive");
        let span_end = horizon.map(|h| h.0).unwrap_or(SimTime::YEAR_END.0).max(width);
        let n_buckets = usize::try_from(span_end.div_euclid(width)
            + i64::from(span_end.rem_euclid(width) != 0))
            .expect("bucket count fits usize");
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); n_buckets],
            width,
            span_end,
            cur: 0,
            run: Vec::new(),
            run_pos: 0,
            overflow: Vec::new(),
            overflow_active: false,
            len: 0,
            seq: 0,
            horizon,
            stats: QueueStats::default(),
        }
    }

    #[inline]
    fn key(&self, idx: u32) -> (SimTime, u64) {
        let e = self.slots[idx as usize].as_ref().expect("live slot");
        (e.time, e.seq)
    }

    #[inline]
    fn bucket_of(&self, time: SimTime) -> usize {
        // Pre-span times (probes joining before the year) clamp into
        // bucket 0; the activation sort orders them correctly within it.
        let b = time.0.div_euclid(self.width).max(0) as usize;
        b.min(self.buckets.len() - 1)
    }

    /// Ordered insert into the remaining active run. The `(time, seq)` key
    /// is unique, so `partition_point` gives one deterministic position;
    /// equal times sort by push order (FIFO).
    fn insert_into_run(&mut self, idx: u32) {
        let key = self.key(idx);
        let tail = &self.run[self.run_pos..];
        let at = self.run_pos + tail.partition_point(|&i| self.key(i) < key);
        self.run.insert(at, idx);
    }

    /// Halves the bucket width and re-buckets the un-drained region. All
    /// bucketed events sit at or after the cursor boundary, and halving
    /// keeps old boundaries aligned, so the cursor maps exactly.
    fn halve_width(&mut self) {
        let new_width = self.width / 2;
        if new_width < MIN_BUCKET_WIDTH {
            return;
        }
        let n_new = usize::try_from(self.span_end.div_euclid(new_width)
            + i64::from(self.span_end.rem_euclid(new_width) != 0))
            .expect("bucket count fits usize");
        let old = std::mem::take(&mut self.buckets);
        self.width = new_width;
        // Halving keeps old boundaries aligned: old bucket b becomes new
        // buckets 2b and 2b+1, so the drain cursor maps exactly.
        self.cur *= 2;
        self.buckets = vec![Vec::new(); n_new];
        for bucket in old.into_iter() {
            for idx in bucket {
                let time = self.slots[idx as usize].as_ref().expect("live slot").time;
                let b = self.bucket_of(time);
                self.buckets[b].push(idx);
            }
        }
        self.stats.resizes += 1;
    }

    /// Schedules an event. Returns false if it fell beyond the horizon.
    pub fn push(&mut self, time: SimTime, event: E) -> bool {
        if let Some(h) = self.horizon {
            if time >= h {
                return false;
            }
        }
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, event };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(entry);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("arena fits u32");
                self.slots.push(Some(entry));
                i
            }
        };
        self.len += 1;
        self.stats.pushes += 1;
        self.stats.max_len = self.stats.max_len.max(self.len);
        self.stats.occupancy.record(self.len as u64);

        if self.overflow_active {
            // Every bucket is drained; the sorted overflow run is the only
            // pending region, so everything ordered-inserts there.
            self.insert_into_run(idx);
        } else if time.0 >= self.span_end {
            self.overflow.push(idx);
            self.stats.overflow_hits += 1;
        } else {
            let b = self.bucket_of(time);
            if b < self.cur {
                self.insert_into_run(idx);
            } else {
                self.buckets[b].push(idx);
                if self.buckets[b].len() > MAX_BUCKET_OCCUPANCY {
                    self.halve_width();
                }
            }
        }
        true
    }

    /// Sorts `indices` by `(time, seq)` and installs it as the active run.
    fn activate(&mut self, mut indices: Vec<u32>) {
        let slots = &self.slots;
        indices.sort_unstable_by_key(|&i| {
            let e = slots[i as usize].as_ref().expect("live slot");
            (e.time, e.seq)
        });
        self.run = indices;
        self.run_pos = 0;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.run_pos < self.run.len() {
                let idx = self.run[self.run_pos];
                self.run_pos += 1;
                let entry = self.slots[idx as usize].take().expect("live slot");
                self.free.push(idx);
                self.len -= 1;
                self.stats.pops += 1;
                return Some((entry.time, entry.event));
            }
            if self.len == 0 {
                return None;
            }
            // Advance the cursor to the next non-empty bucket. `cur` only
            // moves forward, so the scan is O(#buckets) per queue lifetime.
            while self.cur < self.buckets.len() && self.buckets[self.cur].is_empty() {
                self.cur += 1;
            }
            if self.cur < self.buckets.len() {
                let bucket = std::mem::take(&mut self.buckets[self.cur]);
                self.cur += 1;
                self.activate(bucket);
            } else if !self.overflow_active {
                let overflow = std::mem::take(&mut self.overflow);
                self.overflow_active = true;
                self.activate(overflow);
            } else {
                unreachable!("len > 0 with all regions drained");
            }
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.run_pos < self.run.len() {
            return Some(self.key(self.run[self.run_pos]).0);
        }
        for b in self.cur..self.buckets.len() {
            if let Some(t) = self.buckets[b].iter().map(|&i| self.key(i)).min() {
                return Some(t.0);
            }
        }
        self.overflow.iter().map(|&i| self.key(i)).min().map(|k| k.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime traffic counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// The retired `BinaryHeap` implementation, kept as the differential-test
/// oracle: randomized push/pop interleavings must produce identical
/// sequences from both queues.
#[cfg(test)]
pub(crate) mod reference {
    use dynaddr_types::SimTime;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq)]
    struct Entry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E: Eq> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.seq).cmp(&(other.time, other.seq))
        }
    }

    impl<E: Eq> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    /// The pre-calendar event queue, byte-for-byte the old semantics.
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<Entry<E>>>,
        seq: u64,
        horizon: Option<SimTime>,
    }

    impl<E: Eq> HeapQueue<E> {
        pub fn new() -> HeapQueue<E> {
            HeapQueue { heap: BinaryHeap::new(), seq: 0, horizon: None }
        }

        pub fn with_horizon(horizon: SimTime) -> HeapQueue<E> {
            HeapQueue { heap: BinaryHeap::new(), seq: 0, horizon: Some(horizon) }
        }

        pub fn push(&mut self, time: SimTime, event: E) -> bool {
            if let Some(h) = self.horizon {
                if time >= h {
                    return false;
                }
            }
            self.heap.push(Reverse(Entry { time, seq: self.seq, event }));
            self.seq += 1;
            true
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|Reverse(e)| (e.time, e.event))
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::HeapQueue;
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.push(SimTime(5), label);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn horizon_drops_late_events() {
        let mut q = EventQueue::with_horizon(SimTime(100));
        assert!(q.push(SimTime(99), "in"));
        assert!(!q.push(SimTime(100), "at"));
        assert!(!q.push(SimTime(500), "past"));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pre_span_times_pop_first() {
        // Probes joining before the measurement year push negative times.
        let mut q = EventQueue::with_horizon(SimTime::YEAR_END);
        q.push(SimTime(50), "later");
        q.push(SimTime(-1_000_000), "early");
        q.push(SimTime(-5), "less early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "less early");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn overflow_events_drain_after_span_sorted() {
        let mut q: EventQueue<&str> = EventQueue::new(); // span = YEAR_END, no horizon
        let end = SimTime::YEAR_END.0;
        q.push(SimTime(end + 500), "b");
        q.push(SimTime(end + 100), "a");
        q.push(SimTime(10), "in-span");
        assert_eq!(q.stats().overflow_hits, 2);
        assert_eq!(q.pop().unwrap().1, "in-span");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        // Pushes while the overflow run is active keep global order.
        q.push(SimTime(end + 50), "late");
        q.push(SimTime(end + 900), "later");
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop().unwrap().1, "later");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_before_cursor_pops_next() {
        let mut q = EventQueue::with_layout(Some(SimTime(1_000_000)), 100);
        q.push(SimTime(50), "a");
        q.push(SimTime(950), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        // Time 10 is in an already-drained bucket; heap semantics say it
        // must still pop before "c".
        q.push(SimTime(10), "regressed");
        assert_eq!(q.pop().unwrap().1, "regressed");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn occupancy_skew_triggers_resize() {
        let mut q = EventQueue::with_layout(Some(SimTime::YEAR_END), DAY);
        // Pile everything into one day, spread within it.
        for i in 0..(MAX_BUCKET_OCCUPANCY as i64 + 10) {
            q.push(SimTime(i * 10 % DAY), i);
        }
        assert!(q.stats().resizes >= 1, "no resize after skewed load");
        // Order must survive the rebuild.
        let mut prev = None;
        while let Some((t, seq_val)) = q.pop() {
            if let Some((pt, ps)) = prev {
                assert!((pt, ps) < (t, seq_val), "order broken after resize");
            }
            prev = Some((t, seq_val));
        }
    }

    #[test]
    fn resize_stops_at_min_width() {
        let mut q = EventQueue::with_layout(Some(SimTime::YEAR_END), MIN_BUCKET_WIDTH);
        for i in 0..(MAX_BUCKET_OCCUPANCY as i64 + 10) {
            q.push(SimTime(5), i); // all simultaneous: halving cannot help
        }
        assert_eq!(q.stats().resizes, 0);
        for i in 0..(MAX_BUCKET_OCCUPANCY as i64 + 10) {
            assert_eq!(q.pop().unwrap().1, i, "FIFO broken in pileup");
        }
    }

    #[test]
    fn stats_count_traffic() {
        let mut q = EventQueue::with_horizon(SimTime(1_000));
        q.push(SimTime(1), "a");
        q.push(SimTime(2), "b");
        q.push(SimTime(5_000), "dropped");
        q.pop();
        let s = q.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pops, 1);
        assert_eq!(s.max_len, 2);
        assert_eq!(s.overflow_hits, 0);
    }

    #[test]
    fn width_override_is_scoped() {
        set_bucket_width(Some(3_600));
        assert_eq!(current_bucket_width(), 3_600);
        set_bucket_width(None);
        assert_eq!(current_bucket_width(), DEFAULT_BUCKET_WIDTH);
    }

    /// Drives the calendar queue and the heap oracle through one seeded
    /// randomized interleaving of pushes and pops and asserts identical
    /// output sequences.
    fn differential_run(seed: u64, ops: usize, width: i64, horizon: Option<i64>) {
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let mut cal: EventQueue<u64> = EventQueue::with_layout(horizon.map(SimTime), width);
        let mut heap: HeapQueue<u64> = match horizon {
            Some(h) => HeapQueue::with_horizon(SimTime(h)),
            None => HeapQueue::new(),
        };
        let span = SimTime::YEAR_END.0;
        for op in 0..ops {
            if rng.gen::<f64>() < 0.6 {
                // Mix of in-span, pre-span, simultaneous, boundary, and
                // far-future times.
                let time = match rng.gen_range(0..10) {
                    0 => SimTime(-rng.gen_range(1..30 * DAY)),
                    1 => SimTime(span + rng.gen_range(0..100 * DAY)),
                    2 => SimTime(rng.gen_range(0..5) * width), // bucket edges
                    3 => SimTime(42), // pile up ties
                    _ => SimTime(rng.gen_range(0..span)),
                };
                let a = cal.push(time, op as u64);
                let b = heap.push(time, op as u64);
                assert_eq!(a, b, "horizon drop disagreement at {time}");
            } else {
                assert_eq!(cal.pop(), heap.pop(), "pop disagreement at op {op}");
            }
            assert_eq!(cal.len(), heap.len());
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b, "drain disagreement");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn differential_vs_heap_default_layout() {
        for seed in 0..8 {
            differential_run(seed, 2_000, DEFAULT_BUCKET_WIDTH, None);
            differential_run(seed, 2_000, DEFAULT_BUCKET_WIDTH, Some(SimTime::YEAR_END.0));
        }
    }

    #[test]
    fn differential_vs_heap_tiny_buckets_forced_resizes() {
        // Narrow span + tiny width forces dense buckets, resizes (via the
        // occupancy trigger at larger op counts), and heavy overflow use.
        for seed in 0..4 {
            differential_run(seed, 3_000, MIN_BUCKET_WIDTH, Some(7 * DAY));
        }
    }

    proptest! {
        /// Arbitrary interleavings, widths, and horizons: the calendar
        /// queue must be indistinguishable from the heap.
        #[test]
        fn calendar_equals_heap(
            seed in 0u64..1_000,
            ops in 1usize..600,
            width_exp in 6u32..18, // 64 s .. ~36 h
            horizon_sel in 0u8..2,
        ) {
            let width = 1i64 << width_exp;
            let horizon = (horizon_sel == 1).then_some(SimTime::YEAR_END.0);
            differential_run(seed, ops, width, horizon);
        }
    }
}
