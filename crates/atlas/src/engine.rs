//! Deterministic discrete-event queue.
//!
//! A minimal priority queue of `(time, sequence, event)` triples. The
//! monotone sequence number makes ordering of simultaneous events
//! deterministic (FIFO among equals), which keeps whole-world simulations
//! bit-reproducible across runs and platforms.

use dynaddr_types::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// Events at or beyond this horizon are silently dropped on push.
    horizon: Option<SimTime>,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue with no horizon.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), seq: 0, horizon: None }
    }

    /// Creates a queue that drops events scheduled at or after `horizon`
    /// (the end of the measurement year).
    pub fn with_horizon(horizon: SimTime) -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), seq: 0, horizon: Some(horizon) }
    }

    /// Schedules an event. Returns false if it fell beyond the horizon.
    pub fn push(&mut self, time: SimTime, event: E) -> bool {
        if let Some(h) = self.horizon {
            if time >= h {
                return false;
            }
        }
        self.heap.push(Reverse(Entry { time, seq: self.seq, event }));
        self.seq += 1;
        true
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.push(SimTime(5), label);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn horizon_drops_late_events() {
        let mut q = EventQueue::with_horizon(SimTime(100));
        assert!(q.push(SimTime(99), "in"));
        assert!(!q.push(SimTime(100), "at"));
        assert!(!q.push(SimTime(500), "past"));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
