//! Procedural generation of *filler* probes — the populations Table 2
//! filters away before analysis.
//!
//! These probes do not need event-level fidelity; they need connection logs
//! whose *shape* triggers the right filter:
//!
//! * **never-changed** — one IPv4 address all year;
//! * **dual-stack** — connections alternating between IPv4 and IPv6 peers;
//! * **IPv6-only** — only IPv6 peers;
//! * **tagged** — carry `multihomed`/`datacentre`/`core` tags; a fraction
//!   also behave multihomed;
//! * **alternating** — untagged but multihomed-behaving: connections
//!   alternate between one fixed address and a changing one;
//! * **testing-static** — first connection from 193.0.0.78, then one stable
//!   address (no analyzable changes remain once the testing entry is
//!   removed).

use crate::config::WorldConfig;
use crate::logs::{
    testing_address, ConnectionLogEntry, PeerAddr, ProbeMeta, SosUptimeRecord,
};
use crate::sim::SimOutput;
use dynaddr_store::{SegmentSink, StoreError};
use dynaddr_types::rng::SeedTree;
use dynaddr_types::time::DAY;
use dynaddr_types::{Country, ProbeId, ProbeTag, ProbeVersion, SimDuration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::Mutex;

/// Populations at or below this many probes generate serially: executor
/// dispatch and per-task buffers cost more than the generation itself
/// (BENCH_pipeline.json showed `sim_filler` at 0.78× under threads at the
/// 0.05-scale snapshot world, whose ~400 filler probes take only ~3 ms).
const FILLER_SERIAL_CUTOFF: usize = 512;
/// Probes per parallel task above the cutoff — large enough to amortize
/// task setup, small enough to keep the executor's chunks balanced.
const FILLER_JOB_CHUNK: usize = 64;

/// Countries filler probes are registered in, with a European bias matching
/// the real RIPE Atlas deployment.
const FILLER_COUNTRIES: &[&str] = &[
    "DE", "DE", "DE", "FR", "FR", "GB", "NL", "NL", "BE", "AT", "CH", "SE", "CZ", "PL", "IT",
    "ES", "RU", "US", "US", "CA", "JP", "IN", "SG", "ZA", "BR", "AU", "NZ",
];

/// Which filler population a probe belongs to.
#[derive(Debug, Clone, Copy)]
enum FillerKind {
    NeverChanged,
    DualStack,
    Ipv6Only,
    Tagged { alternating: bool },
    Alternating,
    TestingStatic,
}

/// Appends filler probes to a simulation output.
///
/// Each probe is generated independently from its own `("filler", id)` RNG
/// stream, so the work runs on the `dynaddr-exec` executor and the output
/// is byte-identical at any worker count. Ids are assigned in category
/// order (never-changed, dual-stack, IPv6-only, tagged, alternating,
/// testing-static), ascending, right after the highest analyzable id.
pub fn generate_filler(config: &WorldConfig, out: &mut SimOutput) {
    let next_id = out
        .dataset
        .meta
        .iter()
        .map(|m| m.probe.0)
        .max()
        .unwrap_or(0)
        + 1;
    let jobs = filler_jobs(config, next_id);
    let seeds = SeedTree::new(config.seed);
    // One task per probe made executor dispatch the dominant cost at bench
    // scale: small populations generate serially, large ones in chunks of
    // FILLER_JOB_CHUNK probes. Each probe still draws from its own
    // `("filler", id)` stream, so the bytes are identical either way.
    let pieces: Vec<SimPiece> = if jobs.len() <= FILLER_SERIAL_CUTOFF {
        vec![generate_jobs(&seeds, &jobs)]
    } else {
        let chunks: Vec<&[(u32, FillerKind)]> = jobs.chunks(FILLER_JOB_CHUNK).collect();
        dynaddr_exec::par_map(&chunks, |chunk| generate_jobs(&seeds, chunk))
    };
    for mut piece in pieces {
        out.dataset.meta.append(&mut piece.meta);
        out.dataset.connections.append(&mut piece.connections);
        out.dataset.uptime.append(&mut piece.uptime);
    }
}

/// Plans the filler population: one `(id, kind)` job per probe, ids
/// ascending in category order starting at `next_id`.
fn filler_jobs(config: &WorldConfig, next_id: u32) -> Vec<(u32, FillerKind)> {
    let f = &config.filler;
    let mut jobs: Vec<(u32, FillerKind)> = Vec::new();
    let mut id = next_id;
    let mut plan = |count: usize, kind: &mut dyn FnMut(usize) -> FillerKind| {
        for i in 0..count {
            jobs.push((id, kind(i)));
            id += 1;
        }
    };
    plan(f.never_changed, &mut |_| FillerKind::NeverChanged);
    plan(f.dual_stack, &mut |_| FillerKind::DualStack);
    plan(f.ipv6_only, &mut |_| FillerKind::Ipv6Only);
    let tagged_alternating = (f.tagged as f64 * f.tagged_alternating_frac).round() as usize;
    plan(f.tagged, &mut |i| FillerKind::Tagged { alternating: i < tagged_alternating });
    plan(f.alternating, &mut |_| FillerKind::Alternating);
    plan(f.testing_static, &mut |_| FillerKind::TestingStatic);
    jobs
}

/// Generates a slice of jobs into one piece, appending records in job
/// order (ascending ids — the order [`generate_filler`] has always used).
fn generate_jobs(seeds: &SeedTree, jobs: &[(u32, FillerKind)]) -> SimPiece {
    let mut piece = SimPiece::default();
    for &(id, kind) in jobs {
        let mut gen = FillerGen { rng: seeds.rng_for_id("filler", u64::from(id)), piece };
        gen.generate(ProbeId(id), kind);
        piece = gen.piece;
    }
    piece
}

/// Streams the filler population straight into a [`SegmentSink`], one run
/// per job chunk (runs `base_run..`), each run sorted with the canonical
/// `normalize()` keys — the out-of-core counterpart of
/// [`generate_filler`], producing the same probes byte for byte.
pub(crate) fn generate_filler_to_sink(
    config: &WorldConfig,
    next_id: u32,
    base_run: u64,
    sink: &Mutex<SegmentSink>,
) -> Result<(), StoreError> {
    let jobs = filler_jobs(config, next_id);
    let seeds = SeedTree::new(config.seed);
    let chunks: Vec<(u64, &[(u32, FillerKind)])> = jobs
        .chunks(FILLER_JOB_CHUNK)
        .enumerate()
        .map(|(i, chunk)| (base_run + i as u64, chunk))
        .collect();
    let results = dynaddr_exec::par_map(&chunks, |&(run, chunk)| {
        let mut piece = generate_jobs(&seeds, chunk);
        piece.meta.sort_by_key(|m| m.probe);
        piece.connections.sort_by_key(|c| (c.probe, c.start, c.end));
        piece.uptime.sort_by_key(|u| (u.probe, u.timestamp));
        let mut sink = sink.lock().expect("filler sink lock");
        sink.append(run, &piece.meta)
            .and_then(|_| sink.append(run, &piece.connections))
            .and_then(|_| sink.append(run, &piece.uptime))
    });
    results.into_iter().collect()
}

/// The log records one filler probe contributes.
#[derive(Default)]
struct SimPiece {
    meta: Vec<ProbeMeta>,
    connections: Vec<ConnectionLogEntry>,
    uptime: Vec<SosUptimeRecord>,
}

struct FillerGen {
    rng: ChaCha12Rng,
    piece: SimPiece,
}

impl FillerGen {
    fn generate(&mut self, id: ProbeId, kind: FillerKind) {
        match kind {
            FillerKind::NeverChanged => self.never_changed(id),
            FillerKind::DualStack => self.dual_stack(id),
            FillerKind::Ipv6Only => self.ipv6_only(id),
            FillerKind::Tagged { alternating } => self.tagged(id, alternating),
            FillerKind::Alternating => self.alternating(id),
            FillerKind::TestingStatic => self.testing_static(id),
        }
    }

    fn new_probe(&mut self, id: ProbeId, tags: Vec<ProbeTag>) -> SimTime {
        let country =
            Country::new(FILLER_COUNTRIES[self.rng.gen_range(0..FILLER_COUNTRIES.len())])
                .expect("static codes are valid");
        let version = if self.rng.gen::<f64>() < 0.8 {
            ProbeVersion::V3
        } else if self.rng.gen::<f64>() < 0.5 {
            ProbeVersion::V2
        } else {
            ProbeVersion::V1
        };
        self.piece.meta.push(ProbeMeta { probe: id, version, country, tags });
        SimTime(-self.rng.gen_range(1..(60 * DAY)))
    }

    fn rand_v4(&mut self) -> Ipv4Addr {
        // Random address avoiding reserved low/high space and the simulator's
        // scripted pools (which live in 2.0.0.0/8–100.0.0.0/8 ranges chosen
        // by the world builder; collisions would be harmless anyway).
        Ipv4Addr::new(
            self.rng.gen_range(130..190),
            self.rng.gen_range(0..=255),
            self.rng.gen_range(0..=255),
            self.rng.gen_range(1..=254),
        )
    }

    fn rand_v6(&mut self) -> Ipv6Addr {
        Ipv6Addr::new(
            0x2001,
            0x0db8,
            self.rng.gen(),
            self.rng.gen(),
            self.rng.gen(),
            self.rng.gen(),
            self.rng.gen(),
            self.rng.gen(),
        )
    }

    /// Emits a connection sequence: `peers[i]` held for a stretch, breaks in
    /// between. Also emits matching SOS-uptime records (no reboots).
    fn emit_sequence(&mut self, id: ProbeId, join: SimTime, peers: &[PeerAddr]) {
        let boot = join - SimDuration::from_days(1);
        let mut t = join;
        let mut i = 0usize;
        while t < SimTime::YEAR_END && i < peers.len() {
            let hold = self.rng.gen_range((2 * DAY)..(10 * DAY));
            let end = (t + SimDuration::from_secs(hold)).min(SimTime::YEAR_END);
            self.piece.connections.push(ConnectionLogEntry {
                probe: id,
                start: t,
                end,
                peer: peers[i],
            });
            if t >= SimTime::YEAR_START {
                self.piece.uptime.push(SosUptimeRecord {
                    probe: id,
                    timestamp: t,
                    uptime_secs: (t - boot).secs().max(0) as u64,
                });
            }
            t = end + SimDuration::from_secs(self.rng.gen_range(60..600));
            i += 1;
        }
    }

    /// Enough connection segments to span the year at 2–10 days each.
    fn segments(&mut self) -> usize {
        self.rng.gen_range(90..140)
    }

    fn never_changed(&mut self, id: ProbeId) {
        let join = self.new_probe(id, vec![ProbeTag::Home]);
        let addr = PeerAddr::V4(self.rand_v4());
        let peers = vec![addr; self.segments()];
        self.emit_sequence(id, join, &peers);
    }

    fn dual_stack(&mut self, id: ProbeId) {
        let join = self.new_probe(id, vec![ProbeTag::Home]);
        let v4 = self.rand_v4();
        let v6 = self.rand_v6();
        let n = self.segments();
        let mut peers = Vec::with_capacity(n);
        let mut cur_v4 = v4;
        for _ in 0..n {
            if self.rng.gen::<f64>() < 0.5 {
                peers.push(PeerAddr::V4(cur_v4));
            } else {
                peers.push(PeerAddr::V6(v6));
            }
            // The IPv4 address drifts occasionally; unobservable through the
            // alternation, which is the point of the dual-stack filter.
            if self.rng.gen::<f64>() < 0.1 {
                cur_v4 = self.rand_v4();
            }
        }
        self.emit_sequence(id, join, &peers);
    }

    fn ipv6_only(&mut self, id: ProbeId) {
        let join = self.new_probe(id, vec![ProbeTag::Home]);
        let v6 = PeerAddr::V6(self.rand_v6());
        let peers = vec![v6; self.segments()];
        self.emit_sequence(id, join, &peers);
    }

    fn tagged(&mut self, id: ProbeId, behaves_multihomed: bool) {
        let tag = match self.rng.gen_range(0..3) {
            0 => ProbeTag::Multihomed,
            1 => ProbeTag::Datacentre,
            _ => ProbeTag::Core,
        };
        let join = self.new_probe(id, vec![tag]);
        if behaves_multihomed {
            self.alternating_sequence(id, join);
        } else {
            let addr = PeerAddr::V4(self.rand_v4());
            let peers = vec![addr; self.segments()];
            self.emit_sequence(id, join, &peers);
        }
    }

    fn alternating(&mut self, id: ProbeId) {
        let join = self.new_probe(id, vec![ProbeTag::Home]);
        self.alternating_sequence(id, join);
    }

    /// Connections alternate between one fixed address and a changing one —
    /// the behavioural multihoming signature of §3.2.
    fn alternating_sequence(&mut self, id: ProbeId, join: SimTime) {
        let fixed = PeerAddr::V4(self.rand_v4());
        let n = self.segments();
        let mut peers = Vec::with_capacity(n);
        let mut other = self.rand_v4();
        for k in 0..n {
            if k % 2 == 0 {
                peers.push(fixed);
            } else {
                if self.rng.gen::<f64>() < 0.3 {
                    other = self.rand_v4();
                }
                peers.push(PeerAddr::V4(other));
            }
        }
        self.emit_sequence(id, join, &peers);
    }

    fn testing_static(&mut self, id: ProbeId) {
        let _ = self.new_probe(id, vec![ProbeTag::Home]);
        // First connection from the RIPE NCC testing bench, briefly into the
        // year, then one stable address at the host.
        let handover = SimTime(self.rng.gen_range(0..(20 * DAY)));
        self.piece.connections.push(ConnectionLogEntry {
            probe: id,
            start: handover - SimDuration::from_days(2),
            end: handover,
            peer: PeerAddr::V4(testing_address()),
        });
        let addr = PeerAddr::V4(self.rand_v4());
        let peers = vec![addr; self.segments()];
        let settle = SimDuration::from_secs(self.rng.gen_range(600..7200));
        self.emit_sequence(id, handover + settle, &peers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FillerSpec;
    use crate::sim::{simulate, SimOutput};
    use crate::truth::GroundTruth;
    use crate::logs::AtlasDataset;

    fn filler_only_world() -> WorldConfig {
        let mut w = WorldConfig::empty(5);
        w.filler = FillerSpec {
            never_changed: 10,
            dual_stack: 8,
            ipv6_only: 4,
            tagged: 5,
            tagged_alternating_frac: 0.4,
            alternating: 6,
            testing_static: 3,
        };
        w
    }

    fn run_filler(w: &WorldConfig) -> SimOutput {
        let mut out = SimOutput { dataset: AtlasDataset::default(), truth: GroundTruth::default() };
        generate_filler(w, &mut out);
        out.dataset.normalize();
        out
    }

    #[test]
    fn counts_match_spec() {
        let w = filler_only_world();
        let out = run_filler(&w);
        assert_eq!(out.dataset.meta.len(), 10 + 8 + 4 + 5 + 6 + 3);
    }

    #[test]
    fn never_changed_have_single_address() {
        let w = filler_only_world();
        let out = run_filler(&w);
        // First 10 probes are never-changed.
        for m in out.dataset.meta.iter().take(10) {
            let peers: std::collections::HashSet<_> = out
                .dataset
                .connections_of(m.probe)
                .iter()
                .map(|c| c.peer)
                .collect();
            assert_eq!(peers.len(), 1, "{} should hold one address", m.probe);
        }
    }

    #[test]
    fn dual_stack_mixes_families() {
        let w = filler_only_world();
        let out = run_filler(&w);
        for m in out.dataset.meta.iter().skip(10).take(8) {
            let conns = out.dataset.connections_of(m.probe);
            let v4 = conns.iter().filter(|c| c.peer.is_v4()).count();
            let v6 = conns.len() - v4;
            assert!(v4 > 0 && v6 > 0, "{} should mix families", m.probe);
        }
    }

    #[test]
    fn ipv6_only_probes_have_no_v4() {
        let w = filler_only_world();
        let out = run_filler(&w);
        for m in out.dataset.meta.iter().skip(18).take(4) {
            assert!(out.dataset.connections_of(m.probe).iter().all(|c| !c.peer.is_v4()));
        }
    }

    #[test]
    fn tagged_probes_carry_disqualifying_tags() {
        let w = filler_only_world();
        let out = run_filler(&w);
        for m in out.dataset.meta.iter().skip(22).take(5) {
            assert!(m.tags.iter().any(|t| t.disqualifies()), "{:?}", m);
        }
    }

    #[test]
    fn alternating_probes_pin_one_address() {
        let w = filler_only_world();
        let out = run_filler(&w);
        for m in out.dataset.meta.iter().skip(27).take(6) {
            let conns = out.dataset.connections_of(m.probe);
            // Even-indexed connections share one fixed address.
            let fixed = conns[0].peer;
            for (k, c) in conns.iter().enumerate() {
                if k % 2 == 0 {
                    assert_eq!(c.peer, fixed);
                }
            }
        }
    }

    #[test]
    fn testing_static_probes_start_at_ripe() {
        let w = filler_only_world();
        let out = run_filler(&w);
        for m in out.dataset.meta.iter().skip(33).take(3) {
            let conns = out.dataset.connections_of(m.probe);
            assert_eq!(conns[0].peer, PeerAddr::V4(testing_address()));
            let rest: std::collections::HashSet<_> =
                conns.iter().skip(1).map(|c| c.peer).collect();
            assert_eq!(rest.len(), 1, "only one address after the handover");
        }
    }

    #[test]
    fn filler_composes_with_simulation() {
        let mut w = filler_only_world();
        let mut isp = crate::config::IspSpec::new("Net", 64500, "DE", 3);
        isp.prefixes = vec!["10.0.0.0/20".parse().unwrap()];
        w.isps.push(isp);
        let out = simulate(&w);
        assert_eq!(out.dataset.meta.len(), 3 + 36);
        // Filler ids must not collide with analyzable ids.
        let mut ids: Vec<u32> = out.dataset.meta.iter().map(|m| m.probe.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.dataset.meta.len());
    }
}
