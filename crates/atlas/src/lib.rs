//! # dynaddr-atlas
//!
//! A deterministic discrete-event simulator of the RIPE Atlas measurement
//! plane, standing in for the proprietary 2015 connection-log, k-root-ping,
//! and SOS-uptime datasets the paper analyzes (§3).
//!
//! The simulator builds a world of ISPs (via `dynaddr-ispnet`), attaches
//! probes behind CPEs, and replays a full measurement year: address
//! assignments, session caps, scheduled reconnects, network and power
//! outages, firmware pushes, controller drops, probe moves, and one optional
//! administrative renumbering. It emits:
//!
//! * an [`logs::AtlasDataset`] — the three log datasets plus probe metadata,
//!   in exactly the shape the analysis pipeline (`dynaddr-core`) consumes,
//!   with JSON-lines (de)serialization;
//! * a [`truth::GroundTruth`] — what actually happened, for validating the
//!   pipeline's inferences.
//!
//! Worlds are described by a [`config::WorldConfig`]; [`world::paper_world`]
//! builds the scripted deployment that mirrors the paper's Tables 5–7
//! populations, scalable from unit-test size to full 10,977-probe scale.
//!
//! The simulation runs sharded: independent ISP components get their own
//! event queues and execute concurrently on the `dynaddr-exec` executor,
//! with output byte-identical at any worker count (see [`sim`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod fill;
pub mod logs;
mod shard;
pub mod sim;
pub mod store;
pub mod stream;
pub mod truth;
pub mod world;

pub use config::{FillerSpec, IspSpec, OutageSpec, WorldConfig};
pub use logs::{
    AtlasDataset, ConnectionLogEntry, KrootPingRecord, LoadError, PeerAddr, ProbeMeta,
    SosUptimeRecord, StoreFormat,
};
pub use sim::{
    simulate, simulate_instrumented, simulate_instrumented_opts, simulate_to_store,
    simulate_with_options, simulate_with_shard_cap, QueueTelemetry, SimOptions, SimOutput,
    SimStats,
};
pub use stream::DatasetStream;
pub use truth::{ChangeCause, GroundTruth, TruthOutage, TruthOutageKind};
pub use world::{paper_route_tables, paper_world};
