//! The three RIPE Atlas log datasets (§3) and their on-disk format.
//!
//! * **Connection logs** (§3.1) — one entry per TCP connection from a probe
//!   to its central controller: start, end (last receipt of data), and the
//!   publicly visible peer address.
//! * **k-root ping dataset** (§3.4) — every four minutes a probe sends three
//!   pings to the k-root DNS server and reports how many succeeded, plus the
//!   LTS ("last time synchronised") value.
//! * **SOS-uptime dataset** (§3.5) — the probe's uptime counter, reported on
//!   every new TCP connection; a counter reset reveals a reboot.
//!
//! Records have two on-disk representations, selected by [`StoreFormat`]:
//! the default segmented columnar binary (`dataset.store`, see
//! [`crate::store`]) with per-segment checksums and a parallel decoder, and
//! the legacy JSON-lines interchange (one record per line, four `.jsonl`
//! files), mirroring how the paper's authors scraped per-probe logs from
//! the RIPE Atlas API. [`AtlasDataset::load_dir`] sniffs the store magic
//! bytes and falls back to JSONL, so either layout loads transparently;
//! JSONL readers tolerate blank lines and reject malformed ones with line
//! numbers.

use dynaddr_store::{ReadMode, RecoveryReport, StoreError, MAGIC};
use dynaddr_types::{Country, ProbeId, ProbeTag, ProbeVersion, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::path::{Path, PathBuf};

/// The RIPE NCC testing address probes use before being shipped (§3.3).
pub fn testing_address() -> Ipv4Addr {
    Ipv4Addr::new(193, 0, 0, 78)
}

/// The publicly visible address a connection came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeerAddr {
    /// An IPv4 peer — the subject of the study.
    V4(Ipv4Addr),
    /// An IPv6 peer — present in the raw logs, filtered by the pipeline.
    V6(Ipv6Addr),
}

impl PeerAddr {
    /// The IPv4 address, if this is a v4 peer.
    pub fn v4(self) -> Option<Ipv4Addr> {
        match self {
            PeerAddr::V4(a) => Some(a),
            PeerAddr::V6(_) => None,
        }
    }

    /// Whether this is an IPv4 peer.
    pub fn is_v4(self) -> bool {
        matches!(self, PeerAddr::V4(_))
    }
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerAddr::V4(a) => write!(f, "{a}"),
            PeerAddr::V6(a) => write!(f, "{a}"),
        }
    }
}

impl From<Ipv4Addr> for PeerAddr {
    fn from(a: Ipv4Addr) -> PeerAddr {
        PeerAddr::V4(a)
    }
}

impl From<Ipv6Addr> for PeerAddr {
    fn from(a: Ipv6Addr) -> PeerAddr {
        PeerAddr::V6(a)
    }
}

/// One connection-log entry (§3.1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionLogEntry {
    /// The probe that made the connection.
    pub probe: ProbeId,
    /// When the TCP connection was established.
    pub start: SimTime,
    /// Last receipt of data on the connection.
    pub end: SimTime,
    /// The publicly visible peer address (the CPE's WAN address).
    pub peer: PeerAddr,
}

/// One k-root ping measurement record (§3.4, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KrootPingRecord {
    /// The measuring probe.
    pub probe: ProbeId,
    /// When the measurement ran.
    pub timestamp: SimTime,
    /// Pings sent (3 in the built-in measurement).
    pub sent: u8,
    /// Pings answered.
    pub success: u8,
    /// "Last time synchronised": seconds since the probe last synced its
    /// clock with the controller. Grows while the network is down.
    pub lts_secs: i64,
}

impl KrootPingRecord {
    /// Whether every ping in the round was lost.
    pub fn all_lost(&self) -> bool {
        self.sent > 0 && self.success == 0
    }
}

/// One SOS-uptime record (§3.5, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SosUptimeRecord {
    /// The reporting probe.
    pub probe: ProbeId,
    /// When the record was reported (at TCP connection establishment).
    pub timestamp: SimTime,
    /// Seconds since the probe booted.
    pub uptime_secs: u64,
}

impl SosUptimeRecord {
    /// The boot instant implied by this record.
    pub fn boot_time(&self) -> SimTime {
        SimTime(self.timestamp.0 - self.uptime_secs as i64)
    }
}

/// Probe metadata from the probe archive (§3.1): hardware version, country,
/// and voluntary tags.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeMeta {
    /// The probe id.
    pub probe: ProbeId,
    /// Hardware generation.
    pub version: ProbeVersion,
    /// Country the host registered the probe in.
    pub country: Country,
    /// Voluntary user-provided tags.
    pub tags: Vec<ProbeTag>,
}

/// The complete scraped dataset for one measurement year.
#[derive(Debug, Clone, Default)]
pub struct AtlasDataset {
    /// Probe metadata, one entry per active probe.
    pub meta: Vec<ProbeMeta>,
    /// Connection-log entries, sorted by (probe, start).
    pub connections: Vec<ConnectionLogEntry>,
    /// k-root ping records, sorted by (probe, timestamp).
    pub kroot: Vec<KrootPingRecord>,
    /// SOS-uptime records, sorted by (probe, timestamp).
    pub uptime: Vec<SosUptimeRecord>,
    /// Per-probe range index over the three logs, built by
    /// [`AtlasDataset::normalize`]. Derived data: excluded from equality and
    /// serialization.
    pub index: ProbeIndex,
}

/// Per-probe `(start, end)` ranges into the sorted log vectors, so the
/// `*_of` accessors cost one hash lookup instead of two binary searches.
///
/// An empty index (the state before [`AtlasDataset::normalize`] runs) makes
/// the accessors fall back to binary search over whatever order the data is
/// in, preserving the old contract for hand-assembled datasets.
#[derive(Debug, Clone, Default)]
pub struct ProbeIndex {
    connections: HashMap<u32, (usize, usize)>,
    kroot: HashMap<u32, (usize, usize)>,
    uptime: HashMap<u32, (usize, usize)>,
}

// The index is a cache over the four data vectors; two datasets with equal
// data are equal regardless of whether either has been normalized.
impl PartialEq for AtlasDataset {
    fn eq(&self, other: &AtlasDataset) -> bool {
        self.meta == other.meta
            && self.connections == other.connections
            && self.kroot == other.kroot
            && self.uptime == other.uptime
    }
}

impl Serialize for AtlasDataset {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("meta".to_string(), self.meta.to_value()),
            ("connections".to_string(), self.connections.to_value()),
            ("kroot".to_string(), self.kroot.to_value()),
            ("uptime".to_string(), self.uptime.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for AtlasDataset {
    fn deserialize(v: &serde::Value) -> Result<AtlasDataset, serde::de::Error> {
        let fields = serde::__private::expect_object(v, "AtlasDataset")?;
        let get = |name| serde::__private::field(fields, name, "AtlasDataset");
        Ok(AtlasDataset {
            meta: Deserialize::deserialize(get("meta")?)?,
            connections: Deserialize::deserialize(get("connections")?)?,
            kroot: Deserialize::deserialize(get("kroot")?)?,
            uptime: Deserialize::deserialize(get("uptime")?)?,
            // Rebuilt on the next normalize; the accessors fall back to
            // binary search until then.
            index: ProbeIndex::default(),
        })
    }
}

impl Default for ProbeMeta {
    fn default() -> ProbeMeta {
        ProbeMeta {
            probe: ProbeId(0),
            version: ProbeVersion::V3,
            country: Country::new("DE").expect("static code"),
            tags: Vec::new(),
        }
    }
}

impl AtlasDataset {
    /// Sorts every log by (probe, time) — the order the pipeline expects —
    /// and rebuilds the per-probe range index. The four sorts touch disjoint
    /// vectors, so each gets its own scoped thread when the executor allows.
    pub fn normalize(&mut self) {
        let AtlasDataset { meta, connections, kroot, uptime, index } = self;
        let sorts: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| meta.sort_by_key(|m| m.probe)),
            Box::new(|| connections.sort_by_key(|c| (c.probe, c.start, c.end))),
            Box::new(|| kroot.sort_by_key(|k| (k.probe, k.timestamp))),
            Box::new(|| uptime.sort_by_key(|u| (u.probe, u.timestamp))),
        ];
        dynaddr_exec::par_run(sorts);
        index.connections = range_index(connections, |c| c.probe);
        index.kroot = range_index(kroot, |k| k.probe);
        index.uptime = range_index(uptime, |u| u.probe);
    }

    /// Number of distinct probes with metadata.
    pub fn probe_count(&self) -> usize {
        self.meta.len()
    }

    /// All connection-log entries of one probe (requires normalized data).
    pub fn connections_of(&self, probe: ProbeId) -> &[ConnectionLogEntry] {
        indexed_slice(&self.connections, &self.index.connections, |c| c.probe, probe)
    }

    /// All k-root records of one probe (requires normalized data).
    pub fn kroot_of(&self, probe: ProbeId) -> &[KrootPingRecord] {
        indexed_slice(&self.kroot, &self.index.kroot, |k| k.probe, probe)
    }

    /// All SOS-uptime records of one probe (requires normalized data).
    pub fn uptime_of(&self, probe: ProbeId) -> &[SosUptimeRecord] {
        indexed_slice(&self.uptime, &self.index.uptime, |u| u.probe, probe)
    }

    /// Metadata for one probe.
    pub fn meta_of(&self, probe: ProbeId) -> Option<&ProbeMeta> {
        self.meta
            .binary_search_by_key(&probe, |m| m.probe)
            .ok()
            .map(|i| &self.meta[i])
    }

    /// Validates structural invariants external data must satisfy before
    /// analysis: per-probe connection entries non-overlapping with
    /// `end >= start`, k-root success counts within sent counts, and every
    /// log row belonging to a probe with metadata. Returns human-readable
    /// problems (empty = valid). Call after [`AtlasDataset::normalize`].
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let known: std::collections::HashSet<u32> =
            self.meta.iter().map(|m| m.probe.0).collect();
        for c in &self.connections {
            if c.end < c.start {
                problems.push(format!(
                    "{}: connection ends before it starts ({} > {})",
                    c.probe, c.start, c.end
                ));
            }
            if !known.contains(&c.probe.0) {
                problems.push(format!("{}: connection entry without metadata", c.probe));
            }
        }
        for pair in self.connections.windows(2) {
            if pair[0].probe == pair[1].probe && pair[1].start < pair[0].end {
                problems.push(format!(
                    "{}: overlapping connections at {}",
                    pair[0].probe, pair[1].start
                ));
            }
        }
        for k in &self.kroot {
            if k.success > k.sent {
                problems.push(format!(
                    "{}: k-root success {} exceeds sent {}",
                    k.probe, k.success, k.sent
                ));
            }
            if !known.contains(&k.probe.0) {
                problems.push(format!("{}: k-root record without metadata", k.probe));
            }
        }
        for u in &self.uptime {
            if !known.contains(&u.probe.0) {
                problems.push(format!("{}: uptime record without metadata", u.probe));
            }
        }
        problems.truncate(100);
        problems
    }

    /// Serializes the whole dataset into four JSON-lines documents.
    pub fn to_jsonl(&self) -> DatasetJsonl {
        DatasetJsonl {
            meta: to_jsonl(&self.meta),
            connections: to_jsonl(&self.connections),
            kroot: to_jsonl(&self.kroot),
            uptime: to_jsonl(&self.uptime),
        }
    }

    /// Parses a dataset back from four JSON-lines documents.
    pub fn from_jsonl(docs: &DatasetJsonl) -> Result<AtlasDataset, JsonlError> {
        let mut ds = AtlasDataset {
            meta: from_jsonl(&docs.meta)?,
            connections: from_jsonl(&docs.connections)?,
            kroot: from_jsonl(&docs.kroot)?,
            uptime: from_jsonl(&docs.uptime)?,
            index: ProbeIndex::default(),
        };
        ds.normalize();
        Ok(ds)
    }

    /// Encodes the dataset as one segmented columnar store file
    /// (see [`crate::store`]).
    pub fn to_store_bytes(&self) -> Vec<u8> {
        crate::store::dataset_to_bytes(self)
    }

    /// Decodes a dataset from store bytes, failing on the first corrupt
    /// segment. The result is normalized, like [`AtlasDataset::from_jsonl`].
    pub fn from_store_bytes(bytes: &[u8]) -> Result<AtlasDataset, StoreError> {
        crate::store::dataset_from_bytes(bytes, ReadMode::Strict).map(|(ds, _)| ds)
    }

    /// Decodes a dataset from store bytes, skipping corrupt segments and
    /// reporting what was dropped.
    pub fn from_store_bytes_recover(
        bytes: &[u8],
    ) -> Result<(AtlasDataset, RecoveryReport), StoreError> {
        crate::store::dataset_from_bytes(bytes, ReadMode::Recover)
    }

    /// Writes the dataset to a directory in the default format
    /// ([`StoreFormat::Store`], a single `dataset.store` file).
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.save_dir_format(dir, StoreFormat::default())
    }

    /// Writes the dataset to a directory in the given format, removing any
    /// stale files of the other format so the directory never holds two
    /// diverging copies.
    pub fn save_dir_format(&self, dir: &Path, format: StoreFormat) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        match format {
            StoreFormat::Store => {
                std::fs::write(dir.join("dataset.store"), self.to_store_bytes())?;
                for name in ["meta.jsonl", "connections.jsonl", "kroot.jsonl", "uptime.jsonl"] {
                    remove_if_present(&dir.join(name))?;
                }
            }
            StoreFormat::Jsonl => {
                let docs = self.to_jsonl();
                std::fs::write(dir.join("meta.jsonl"), docs.meta)?;
                std::fs::write(dir.join("connections.jsonl"), docs.connections)?;
                std::fs::write(dir.join("kroot.jsonl"), docs.kroot)?;
                std::fs::write(dir.join("uptime.jsonl"), docs.uptime)?;
                remove_if_present(&dir.join("dataset.store"))?;
            }
        }
        Ok(())
    }

    /// Loads a dataset previously written by [`AtlasDataset::save_dir`],
    /// auto-detecting the format: a `dataset.store` file that starts with
    /// the store magic bytes wins, otherwise the legacy `.jsonl` files are
    /// read. Errors name the offending file (and segment, for store files).
    pub fn load_dir(dir: &Path) -> Result<AtlasDataset, LoadError> {
        match Self::sniff_format(dir) {
            StoreFormat::Store => Self::load_dir_as(dir, StoreFormat::Store),
            StoreFormat::Jsonl => Self::load_dir_as(dir, StoreFormat::Jsonl),
        }
    }

    /// Like [`AtlasDataset::load_dir`], but a corrupt store segment is
    /// skipped instead of fatal; the report says what was dropped. JSONL
    /// directories load as-is with a clean report.
    pub fn load_dir_recover(dir: &Path) -> Result<(AtlasDataset, RecoveryReport), LoadError> {
        match Self::sniff_format(dir) {
            StoreFormat::Store => {
                let path = dir.join("dataset.store");
                let bytes = read_file(&path)?;
                AtlasDataset::from_store_bytes_recover(&bytes)
                    .map_err(|source| LoadError::Store { path, source })
            }
            StoreFormat::Jsonl => {
                Self::load_dir_as(dir, StoreFormat::Jsonl).map(|ds| (ds, RecoveryReport::default()))
            }
        }
    }

    /// Loads a dataset from a directory in one explicit format, with no
    /// sniffing — pass [`StoreFormat::Jsonl`] to insist on the legacy files
    /// even when a `dataset.store` is present.
    pub fn load_dir_as(dir: &Path, format: StoreFormat) -> Result<AtlasDataset, LoadError> {
        match format {
            StoreFormat::Store => {
                let path = dir.join("dataset.store");
                let bytes = read_file(&path)?;
                AtlasDataset::from_store_bytes(&bytes)
                    .map_err(|source| LoadError::Store { path, source })
            }
            StoreFormat::Jsonl => {
                let docs = DatasetJsonl {
                    meta: read_text(&dir.join("meta.jsonl"))?,
                    connections: read_text(&dir.join("connections.jsonl"))?,
                    kroot: read_text(&dir.join("kroot.jsonl"))?,
                    uptime: read_text(&dir.join("uptime.jsonl"))?,
                };
                // Parse document by document so a malformed line is
                // attributed to its file, not just a line number.
                let mut ds = AtlasDataset {
                    meta: parse_doc(dir, "meta.jsonl", &docs.meta)?,
                    connections: parse_doc(dir, "connections.jsonl", &docs.connections)?,
                    kroot: parse_doc(dir, "kroot.jsonl", &docs.kroot)?,
                    uptime: parse_doc(dir, "uptime.jsonl", &docs.uptime)?,
                    index: ProbeIndex::default(),
                };
                ds.normalize();
                Ok(ds)
            }
        }
    }

    /// Which format [`AtlasDataset::load_dir`] would read from `dir`: store
    /// when `dataset.store` exists and begins with the store magic bytes,
    /// JSONL otherwise. A `dataset.store` with damaged magic falls back to
    /// the legacy `.jsonl` files when those exist, but sniffs as store when
    /// they don't — so the corruption surfaces as a typed error instead of
    /// a misleading "meta.jsonl not found".
    pub fn sniff_format(dir: &Path) -> StoreFormat {
        let mut head = [0u8; MAGIC.len()];
        match std::fs::File::open(dir.join("dataset.store")) {
            Ok(mut f) => {
                use std::io::Read as _;
                let magic_ok = f.read_exact(&mut head).is_ok() && head == MAGIC;
                if magic_ok || !dir.join("meta.jsonl").exists() {
                    StoreFormat::Store
                } else {
                    StoreFormat::Jsonl
                }
            }
            Err(_) => StoreFormat::Jsonl,
        }
    }
}

/// On-disk representation of a dataset directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// Segmented columnar binary: one checksummed `dataset.store` file.
    /// The default since it decodes in parallel and is far smaller.
    #[default]
    Store,
    /// Legacy JSON-lines interchange: four `.jsonl` files.
    Jsonl,
}

impl StoreFormat {
    /// Parses a `--format` flag value (`store` or `jsonl`).
    pub fn parse(s: &str) -> Option<StoreFormat> {
        match s {
            "store" => Some(StoreFormat::Store),
            "jsonl" => Some(StoreFormat::Jsonl),
            _ => None,
        }
    }
}

impl fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreFormat::Store => "store",
            StoreFormat::Jsonl => "jsonl",
        })
    }
}

/// Error from loading a dataset directory, naming the file that failed.
#[derive(Debug)]
pub enum LoadError {
    /// A file could not be read.
    Io {
        /// The file that failed.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A JSON-lines document failed to parse.
    Jsonl {
        /// The file that failed.
        path: PathBuf,
        /// The parse error (with its line number).
        source: JsonlError,
    },
    /// A store file failed to decode.
    Store {
        /// The file that failed.
        path: PathBuf,
        /// The store error (naming the corrupt segment, if any).
        source: StoreError,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            LoadError::Jsonl { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            LoadError::Store { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io { source, .. } => Some(source),
            LoadError::Jsonl { source, .. } => Some(source),
            LoadError::Store { source, .. } => Some(source),
        }
    }
}

impl From<LoadError> for std::io::Error {
    fn from(e: LoadError) -> std::io::Error {
        match e {
            LoadError::Io { source, .. } => source,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

fn parse_doc<T: for<'de> Deserialize<'de> + Send>(
    dir: &Path,
    name: &str,
    doc: &str,
) -> Result<Vec<T>, LoadError> {
    from_jsonl(doc).map_err(|source| LoadError::Jsonl { path: dir.join(name), source })
}

fn read_file(path: &Path) -> Result<Vec<u8>, LoadError> {
    std::fs::read(path).map_err(|source| LoadError::Io { path: path.to_path_buf(), source })
}

fn read_text(path: &Path) -> Result<String, LoadError> {
    std::fs::read_to_string(path)
        .map_err(|source| LoadError::Io { path: path.to_path_buf(), source })
}

fn remove_if_present(path: &Path) -> std::io::Result<()> {
    match std::fs::remove_file(path) {
        Err(e) if e.kind() != std::io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

/// Contiguous slice of a (probe, …)-sorted log belonging to one probe.
fn slice_of<T, F: Fn(&T) -> ProbeId>(items: &[T], key: F, probe: ProbeId) -> &[T] {
    let lo = items.partition_point(|t| key(t) < probe);
    let hi = items.partition_point(|t| key(t) <= probe);
    &items[lo..hi]
}

/// One pass over a (probe, …)-sorted log, recording each probe's
/// `(start, end)` range.
fn range_index<T, F: Fn(&T) -> ProbeId>(items: &[T], key: F) -> HashMap<u32, (usize, usize)> {
    let mut map = HashMap::new();
    let mut start = 0;
    for i in 1..=items.len() {
        if i == items.len() || key(&items[i]) != key(&items[start]) {
            map.insert(key(&items[start]).0, (start, i));
            start = i;
        }
    }
    map
}

/// Index lookup with a binary-search fallback for un-indexed data.
fn indexed_slice<'a, T, F: Fn(&T) -> ProbeId>(
    items: &'a [T],
    ranges: &HashMap<u32, (usize, usize)>,
    key: F,
    probe: ProbeId,
) -> &'a [T] {
    if ranges.is_empty() && !items.is_empty() {
        return slice_of(items, key, probe);
    }
    match ranges.get(&probe.0) {
        Some(&(lo, hi)) => &items[lo..hi],
        None => &[],
    }
}

/// The four JSON-lines documents of a serialized dataset.
#[derive(Debug, Clone, Default)]
pub struct DatasetJsonl {
    /// Probe metadata document.
    pub meta: String,
    /// Connection-log document.
    pub connections: String,
    /// k-root ping document.
    pub kroot: String,
    /// SOS-uptime document.
    pub uptime: String,
}

/// Error from parsing a JSON-lines document.
#[derive(Debug)]
pub struct JsonlError {
    /// 1-based line number.
    pub line: usize,
    /// Underlying JSON error.
    pub source: serde_json::Error,
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jsonl parse error on line {}: {}", self.line, self.source)
    }
}

impl std::error::Error for JsonlError {}

/// Serializes records as one JSON object per line.
pub fn to_jsonl<T: Serialize>(items: &[T]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&serde_json::to_string(item).expect("log records serialize infallibly"));
        out.push('\n');
    }
    out
}

/// Parses one JSON object per line; blank lines are skipped.
///
/// Lines are independent, so parsing fans out across the executor's workers;
/// results come back in document order, and on malformed input the reported
/// error is the earliest bad line, exactly as the sequential loop gave.
pub fn from_jsonl<T: for<'de> Deserialize<'de> + Send>(doc: &str) -> Result<Vec<T>, JsonlError> {
    let lines: Vec<(usize, &str)> = doc
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .collect();
    dynaddr_exec::par_map(&lines, |&(idx, line)| {
        serde_json::from_str(line).map_err(|source| JsonlError { line: idx + 1, source })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_types::SimDuration;

    fn v4(s: &str) -> PeerAddr {
        PeerAddr::V4(s.parse().unwrap())
    }

    fn entry(probe: u32, start: i64, end: i64, peer: &str) -> ConnectionLogEntry {
        ConnectionLogEntry {
            probe: ProbeId(probe),
            start: SimTime(start),
            end: SimTime(end),
            peer: v4(peer),
        }
    }

    #[test]
    fn peer_addr_families() {
        let a = v4("91.55.174.103");
        assert!(a.is_v4());
        assert_eq!(a.v4(), Some("91.55.174.103".parse().unwrap()));
        let b: PeerAddr = "2001:db8::1".parse::<Ipv6Addr>().unwrap().into();
        assert!(!b.is_v4());
        assert_eq!(b.v4(), None);
        assert_eq!(b.to_string(), "2001:db8::1");
    }

    #[test]
    fn kroot_all_lost() {
        let ok = KrootPingRecord {
            probe: ProbeId(1),
            timestamp: SimTime(0),
            sent: 3,
            success: 3,
            lts_secs: 86,
        };
        assert!(!ok.all_lost());
        let lost = KrootPingRecord { success: 0, ..ok };
        assert!(lost.all_lost());
        let empty = KrootPingRecord { sent: 0, success: 0, ..ok };
        assert!(!empty.all_lost(), "no pings attempted is not loss");
    }

    #[test]
    fn sos_boot_time_matches_paper_example() {
        // Table 4: uptime 19 at 17:50:55 → boot at 17:50:36.
        let rec = SosUptimeRecord {
            probe: ProbeId(206),
            timestamp: SimTime::from_date(1, 1, 17, 50, 55),
            uptime_secs: 19,
        };
        assert_eq!(rec.boot_time(), SimTime::from_date(1, 1, 17, 50, 36));
    }

    #[test]
    fn normalize_sorts_and_slices() {
        let mut ds = AtlasDataset::default();
        ds.connections.push(entry(2, 100, 200, "10.0.0.2"));
        ds.connections.push(entry(1, 300, 400, "10.0.0.1"));
        ds.connections.push(entry(1, 0, 90, "10.0.0.1"));
        ds.meta.push(ProbeMeta { probe: ProbeId(2), ..ProbeMeta::default() });
        ds.meta.push(ProbeMeta { probe: ProbeId(1), ..ProbeMeta::default() });
        ds.normalize();
        let one = ds.connections_of(ProbeId(1));
        assert_eq!(one.len(), 2);
        assert!(one[0].start < one[1].start);
        assert_eq!(ds.connections_of(ProbeId(2)).len(), 1);
        assert_eq!(ds.connections_of(ProbeId(3)).len(), 0);
        assert!(ds.meta_of(ProbeId(2)).is_some());
        assert!(ds.meta_of(ProbeId(9)).is_none());
    }

    #[test]
    fn jsonl_roundtrip_dataset() {
        let mut ds = AtlasDataset::default();
        ds.meta.push(ProbeMeta {
            probe: ProbeId(206),
            version: ProbeVersion::V3,
            country: Country::new("DE").unwrap(),
            tags: vec![ProbeTag::Home, ProbeTag::Dsl],
        });
        ds.connections.push(entry(206, 0, 3600, "91.55.174.103"));
        ds.kroot.push(KrootPingRecord {
            probe: ProbeId(206),
            timestamp: SimTime(120),
            sent: 3,
            success: 0,
            lts_secs: 388,
        });
        ds.uptime.push(SosUptimeRecord {
            probe: ProbeId(206),
            timestamp: SimTime(0),
            uptime_secs: 262_531,
        });
        ds.normalize();
        let docs = ds.to_jsonl();
        let back = AtlasDataset::from_jsonl(&docs).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn jsonl_reports_bad_lines() {
        let doc = "{\"probe\":1,\"timestamp\":0,\"sent\":3,\"success\":3,\"lts_secs\":10}\nnot json\n";
        let err = from_jsonl::<KrootPingRecord>(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let doc = "\n{\"probe\":1,\"timestamp\":0,\"sent\":3,\"success\":3,\"lts_secs\":10}\n\n";
        let recs = from_jsonl::<KrootPingRecord>(doc).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn save_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("dynaddr-test-{}", std::process::id()));
        let mut ds = AtlasDataset::default();
        ds.meta.push(ProbeMeta::default());
        ds.connections.push(entry(0, 0, 10, "203.0.113.5"));
        ds.normalize();
        ds.save_dir(&dir).unwrap();
        let back = AtlasDataset::load_dir(&dir).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_accepts_clean_and_flags_dirty() {
        let mut ds = AtlasDataset::default();
        ds.meta.push(ProbeMeta::default());
        ds.connections.push(entry(0, 100, 200, "10.0.0.1"));
        ds.connections.push(entry(0, 300, 400, "10.0.0.1"));
        ds.kroot.push(KrootPingRecord {
            probe: ProbeId(0),
            timestamp: SimTime(50),
            sent: 3,
            success: 3,
            lts_secs: 10,
        });
        ds.normalize();
        assert!(ds.validate().is_empty());

        // Overlap.
        ds.connections.push(entry(0, 350, 500, "10.0.0.1"));
        ds.normalize();
        assert!(ds.validate().iter().any(|p| p.contains("overlapping")));

        // Negative-length entry.
        let mut bad = AtlasDataset::default();
        bad.meta.push(ProbeMeta::default());
        bad.connections.push(entry(0, 200, 100, "10.0.0.1"));
        bad.normalize();
        assert!(bad.validate().iter().any(|p| p.contains("ends before")));

        // Orphan rows and impossible ping counts.
        let mut orphan = AtlasDataset::default();
        orphan.connections.push(entry(9, 0, 10, "10.0.0.1"));
        orphan.kroot.push(KrootPingRecord {
            probe: ProbeId(9),
            timestamp: SimTime(0),
            sent: 3,
            success: 5,
            lts_secs: 1,
        });
        orphan.normalize();
        let problems = orphan.validate();
        assert!(problems.iter().any(|p| p.contains("without metadata")));
        assert!(problems.iter().any(|p| p.contains("exceeds sent")));
    }

    #[test]
    fn testing_address_is_ripe_ncc() {
        assert_eq!(testing_address().to_string(), "193.0.0.78");
    }

    #[test]
    fn durations_of_table1_shape() {
        // Jan 2 02:41:55 → Jan 3 02:18:00 is 23.6 h, matching Table 1.
        let e = entry(
            206,
            SimTime::from_date(1, 2, 2, 41, 55).0,
            SimTime::from_date(1, 3, 2, 18, 0).0,
            "91.55.141.95",
        );
        let dur: SimDuration = e.end - e.start;
        assert!((dur.as_hours() - 23.6).abs() < 0.01);
    }
}
