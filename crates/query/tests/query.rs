//! End-to-end determinism and equivalence tests for the query layer.
//!
//! The contract under test: every response is a pure function of the
//! store file — byte-identical at any thread count, any cache state
//! (cold, warm, thrashing), and whether answered by the cache-backed
//! engine, the batch-loaded oracle, or across the socket.

use dynaddr_atlas::logs::{
    AtlasDataset, ConnectionLogEntry, KrootPingRecord, PeerAddr, ProbeMeta, SosUptimeRecord,
};
use dynaddr_atlas::store::StoreIndex;
use dynaddr_atlas::truth::{ChangeCause, GroundTruth, TruthChange, TruthOutage, TruthOutageKind};
use dynaddr_ip2as::{MonthlySnapshots, RouteTable};
use dynaddr_query::proto::{self, Request};
use dynaddr_query::{
    CacheConfig, EngineOptions, LocalAnswerer, QueryClient, QueryEngine, Workload,
};
use dynaddr_store::FileWriter;
use dynaddr_types::{
    Asn, Country, Prefix, ProbeId, ProbeTag, ProbeVersion, SimDuration, SimTime,
};
use std::net::Ipv4Addr;
use std::sync::Arc;

const PROBES: u32 = 40;

fn snaps() -> MonthlySnapshots {
    let mut t = RouteTable::new();
    t.announce(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8).unwrap(), Asn(64500));
    t.announce(Prefix::new(Ipv4Addr::new(172, 16, 0, 0), 12).unwrap(), Asn(64501));
    MonthlySnapshots::uniform(t)
}

/// A synthetic dataset with per-probe variety: address changes, v6
/// entries, k-root loss runs, uptime resets, and a few recordless ids.
fn dataset() -> AtlasDataset {
    let mut ds = AtlasDataset::default();
    for p in 0..PROBES {
        if p % 7 != 6 {
            ds.meta.push(ProbeMeta {
                probe: ProbeId(p),
                version: [ProbeVersion::V1, ProbeVersion::V2, ProbeVersion::V3]
                    [p as usize % 3],
                country: Country::new(["DE", "US", "JP", "BR"][p as usize % 4]).unwrap(),
                tags: if p % 2 == 0 { vec![ProbeTag::Home, ProbeTag::Dsl] } else { vec![] },
            });
        }
        let sessions = 3 + (p % 5) as i64;
        for k in 0..sessions {
            let peer = if p % 5 == 4 && k == 1 {
                PeerAddr::V6("2001:db8::7".parse().unwrap())
            } else if p % 2 == 0 {
                PeerAddr::V4(Ipv4Addr::new(10, 1, p as u8, k as u8))
            } else {
                PeerAddr::V4(Ipv4Addr::new(172, 16, p as u8, (k / 2) as u8))
            };
            ds.connections.push(ConnectionLogEntry {
                probe: ProbeId(p),
                start: SimTime(k * 10_000 + i64::from(p)),
                end: SimTime(k * 10_000 + 6_000 + i64::from(p)),
                peer,
            });
        }
        for k in 0..20i64 {
            ds.kroot.push(KrootPingRecord {
                probe: ProbeId(p),
                timestamp: SimTime(k * 240),
                sent: 3,
                success: if (8..11).contains(&k) && p % 3 == 0 { 0 } else { 3 },
                lts_secs: 90,
            });
        }
        for k in 0..6i64 {
            let reset = p % 4 == 1 && k == 3;
            ds.uptime.push(SosUptimeRecord {
                probe: ProbeId(p),
                timestamp: SimTime(k * 3_600),
                uptime_secs: if reset { 60 } else { (k * 3_600 + 50_000) as u64 },
            });
        }
    }
    ds.normalize();
    ds
}

fn truth() -> GroundTruth {
    let mut t = GroundTruth::default();
    for p in (0..PROBES).step_by(3) {
        t.changes.push(TruthChange {
            probe: ProbeId(p),
            time: SimTime(i64::from(p) * 777),
            from: (p > 0).then(|| Ipv4Addr::new(10, 1, p as u8, 0)),
            to: Ipv4Addr::new(10, 1, p as u8, 1),
            cause: [ChangeCause::PeriodicCap, ChangeCause::NetworkOutage, ChangeCause::Moved]
                [p as usize % 3],
        });
        t.outages.push(TruthOutage {
            probe: ProbeId(p),
            kind: [TruthOutageKind::Network, TruthOutageKind::Power][p as usize % 2],
            start: SimTime(i64::from(p) * 555),
            duration: SimDuration::from_mins(i64::from(p) + 5),
            address_changed: p % 2 == 0,
        });
    }
    t.normalize();
    t
}

/// Encodes the dataset with tiny segments so every table spans many —
/// the geometry that actually exercises the segment cache and the
/// footer binary search.
fn store_bytes(ds: &AtlasDataset) -> Vec<u8> {
    let mut w = FileWriter::with_segment_rows(16);
    w.write_table(&ds.meta);
    w.write_table(&ds.connections);
    w.write_table(&ds.kroot);
    w.write_table(&ds.uptime);
    w.finish()
}

fn engine_with(budget: usize) -> QueryEngine {
    let ds = dataset();
    let snaps = snaps();
    let t = truth();
    QueryEngine::from_parts(
        store_bytes(&ds),
        &snaps,
        Some(&t),
        &EngineOptions { cache: CacheConfig { shards: 4, budget_bytes: budget, ..Default::default() } },
    )
    .expect("engine opens")
}

fn workload_for(engine: &QueryEngine) -> Workload {
    let stats = engine.stats();
    Workload::new(
        0xFEED_F00D,
        stats.probes(),
        stats.asns(),
        stats.countries(),
        engine.truth_available(),
    )
}

/// Single-threaded reference answers for the first `n` workload requests.
fn reference(engine: &QueryEngine, w: &Workload, n: u64) -> Vec<Vec<u8>> {
    (0..n).map(|i| proto::to_bytes(&engine.query(&w.request(i)))).collect()
}

#[test]
fn engine_matches_local_oracle_and_dataset() {
    let ds = dataset();
    let snaps = snaps();
    let t = truth();
    let bytes = store_bytes(&ds);
    let engine = QueryEngine::from_parts(
        bytes.clone(),
        &snaps,
        Some(&t),
        &EngineOptions::default(),
    )
    .unwrap();
    let local = LocalAnswerer::from_parts(ds.clone(), &snaps, Some(&t));

    // Universe agreement first: same probes/ASes/countries on both sides.
    assert_eq!(engine.stats().probes(), local.stats().probes());
    assert_eq!(engine.stats().asns(), local.stats().asns());
    assert_eq!(engine.stats().countries(), local.stats().countries());

    let mut requests = vec![
        Request::Ping,
        Request::TopMovers(0),
        Request::TopMovers(5),
        Request::TopMovers(1000),
        Request::AsSummary(Asn(1)),
        Request::CountrySummary("XX".into()),
        Request::ProbeRecords(ProbeId(99_999)),
        Request::ProbeSeries(ProbeId(99_999)),
        Request::ProbeTruth(ProbeId(99_999)),
    ];
    for p in 0..PROBES {
        requests.push(Request::ProbeRecords(ProbeId(p)));
        requests.push(Request::ProbeSeries(ProbeId(p)));
        requests.push(Request::ProbeTruth(ProbeId(p)));
    }
    for a in engine.stats().asns() {
        requests.push(Request::AsSummary(Asn(a)));
    }
    for cc in engine.stats().countries() {
        requests.push(Request::CountrySummary(cc));
    }
    for req in &requests {
        let from_engine = engine.query(req);
        let from_local = local.answer(req);
        assert_eq!(from_engine, from_local, "diverged on {req:?}");
        assert_eq!(proto::to_bytes(&from_engine), proto::to_bytes(&from_local));
    }

    // Spot-check the records path against the dataset accessors and the
    // open-once store index (satellite: read_probe_indexed).
    let index = StoreIndex::open(&bytes).unwrap();
    for p in [ProbeId(0), ProbeId(17), ProbeId(PROBES - 1), ProbeId(4242)] {
        let records = engine.records(p).unwrap();
        assert_eq!(records.connections.len(), ds.connections_of(p).len());
        assert_eq!(records.kroot.len(), ds.kroot_of(p).len());
        assert_eq!(records.meta.is_some(), ds.meta_of(p).is_some());
        let via_index = index.read_probe_indexed(p).unwrap();
        assert_eq!(via_index.connections, ds.connections_of(p));
        assert_eq!(via_index.uptime, ds.uptime_of(p));
    }
}

#[test]
fn responses_byte_identical_across_thread_counts() {
    const N: u64 = 2_000;
    let reference_engine = engine_with(256 << 20);
    let w = workload_for(&reference_engine);
    let expect = reference(&reference_engine, &w, N);

    for threads in [2usize, 8, 64] {
        // Fresh engine per thread count: each run starts cache-cold and
        // interleaves its own warming with serving.
        let engine = engine_with(256 << 20);
        let w = workload_for(&engine);
        let mut answers: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let engine = &engine;
                    let w = &w;
                    scope.spawn(move || {
                        (worker as u64..N)
                            .step_by(threads)
                            .map(|i| (i, proto::to_bytes(&engine.query(&w.request(i)))))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                answers.push(h.join().expect("worker panicked"));
            }
        });
        let mut merged: Vec<Option<Vec<u8>>> = vec![None; N as usize];
        for chunk in answers {
            for (i, bytes) in chunk {
                merged[i as usize] = Some(bytes);
            }
        }
        for (i, got) in merged.into_iter().enumerate() {
            assert_eq!(
                got.as_ref(),
                Some(&expect[i]),
                "request {i} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn responses_survive_cache_state_changes() {
    const N: u64 = 1_500;
    let engine = engine_with(256 << 20);
    let w = workload_for(&engine);
    let cold = reference(&engine, &w, N);
    let hits_after_cold = engine.cache_stats().hits;
    // Warm pass: same engine, cache now populated.
    let warm = reference(&engine, &w, N);
    assert_eq!(cold, warm, "warm cache changed an answer");
    assert!(
        engine.cache_stats().hits > hits_after_cold,
        "warm pass should hit the cache"
    );
    // Cleared cache: decode everything again.
    engine.clear_cache();
    assert_eq!(cold, reference(&engine, &w, N), "cleared cache changed an answer");
    // Thrashing: a budget too small to hold the working set forces
    // constant eviction; answers must not move.
    let tiny = engine_with(4 << 10);
    assert_eq!(cold, reference(&tiny, &workload_for(&tiny), N), "tiny cache changed an answer");
    let stats = tiny.cache_stats();
    assert!(stats.evictions > 0, "tiny budget never evicted (budget not enforced?)");
}

#[cfg(unix)]
#[test]
fn socket_serving_matches_in_process_answers() {
    const N: u64 = 300;
    let engine = Arc::new(engine_with(256 << 20));
    let w = workload_for(&engine);
    let path = std::env::temp_dir().join(format!("dynaddr-query-test-{}.sock", std::process::id()));
    let server = dynaddr_query::serve(Arc::clone(&engine), &path).expect("bind");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    {
        let mut clients: Vec<QueryClient> = (0..3)
            .map(|_| {
                QueryClient::connect_retry(&path, std::time::Duration::from_secs(5))
                    .expect("connect")
            })
            .collect();
        for i in 0..N {
            let req = w.request(i);
            let expected = proto::to_bytes(&engine.query(&req));
            let got = clients[(i % 3) as usize].request_bytes(&req).expect("request");
            assert_eq!(got, expected, "request {i} diverged over the socket");
        }
        // A malformed frame gets an Error response, not a hangup for
        // the well-formed requests that follow.
        let resp = clients[0].request(&Request::Ping).expect("ping");
        assert_eq!(resp, dynaddr_query::Response::Pong);
    }

    handle.stop();
    server_thread.join().expect("server thread").expect("server run");
    assert!(!path.exists(), "socket file should be removed on shutdown");
}
