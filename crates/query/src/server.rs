//! Unix-socket serving: accept loop, per-connection threads, client half.
//!
//! The process model is the classic one: [`serve`] binds the socket, the
//! accept loop hands each connection to its own thread, and every thread
//! answers frames against the same shared [`Answerer`] — the answerer's
//! `&self` query path does all the concurrency work. Both daemons reuse
//! this front-end: `queryd` serves a [`QueryEngine`], `dynaddrd` serves
//! its live ingest state; neither reimplements socket cleanup, the stop
//! handle, or worker reaping.
//!
//! The server front-end answers [`Request::ServerStats`] itself from its
//! own atomics (uptime, connection and per-tag request counts, plus the
//! answerer's cache counters), so every backend gets process
//! introspection for free. Per-request latency is recorded into the
//! `query.latency_us` histogram and [`Answerer::on_connection_close`]
//! fires when a connection ends, so a `--trace` sidecar captures the
//! serving metrics without any per-request registry locking beyond the
//! one histogram record.
//!
//! Shutdown is cooperative: [`ServerHandle::stop`] sets a flag and pokes
//! the listener with a dummy connect so `accept` wakes up; the accept
//! loop then joins its connection threads. The CI smoke instead just
//! kills the daemon process — both paths leave the store file untouched
//! because serving never writes.

use crate::cache::CacheStats;
use crate::engine::QueryEngine;
use crate::proto::{self, Request, Response, ServerStatsReply};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A request backend the server front-end can serve.
///
/// `answer` must be callable from many connection threads at once; the
/// server never serializes requests.
pub trait Answerer: Send + Sync + 'static {
    /// Answers one request. Unsupported requests should return
    /// [`Response::Error`], not panic.
    fn answer(&self, req: &Request) -> Response;

    /// Called when a connection closes; a natural point to publish
    /// accumulated metrics.
    fn on_connection_close(&self) {}

    /// Result-cache counters for [`Request::ServerStats`], when the
    /// backend has a cache.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

impl Answerer for QueryEngine {
    fn answer(&self, req: &Request) -> Response {
        self.query(req)
    }
    fn on_connection_close(&self) {
        self.publish_metrics();
    }
    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache_stats())
    }
}

/// Wire tags a request can carry, for the per-tag counters.
const REQUEST_TAGS: usize = 11;

fn request_tag(req: &Request) -> usize {
    match req {
        Request::Ping => 0,
        Request::ProbeRecords(_) => 1,
        Request::ProbeSeries(_) => 2,
        Request::AsSummary(_) => 3,
        Request::CountrySummary(_) => 4,
        Request::TopMovers(_) => 5,
        Request::ProbeTruth(_) => 6,
        Request::ServerStats => 7,
        Request::DaemonSnapshot => 8,
        Request::DaemonProbe(_) => 9,
        Request::IngestStats => 10,
    }
}

/// The server front-end's own counters, shared across connection threads.
struct FrontStats {
    started: Instant,
    connections: AtomicU64,
    by_tag: [AtomicU64; REQUEST_TAGS],
}

impl FrontStats {
    fn new() -> FrontStats {
        FrontStats {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            by_tag: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn snapshot(&self, cache: Option<CacheStats>) -> ServerStatsReply {
        let mut requests_total = 0;
        let mut requests_by_tag = Vec::new();
        for (tag, n) in self.by_tag.iter().enumerate() {
            let n = n.load(Ordering::Relaxed);
            requests_total += n;
            if n > 0 {
                requests_by_tag.push((tag as u32, n));
            }
        }
        let cache = cache.unwrap_or_default();
        ServerStatsReply {
            uptime_secs: self.started.elapsed().as_secs(),
            connections_total: self.connections.load(Ordering::Relaxed),
            requests_total,
            requests_by_tag,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
        }
    }
}

/// A bound, not-yet-running server. Call [`Server::run`] to serve.
pub struct Server<A: Answerer> {
    listener: UnixListener,
    answerer: Arc<A>,
    stop: Arc<AtomicBool>,
    path: PathBuf,
    stats: Arc<FrontStats>,
}

/// Stop control for a running [`Server`], usable from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    path: PathBuf,
}

impl ServerHandle {
    /// Asks the accept loop to exit and wakes it up.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection; if the listener
        // is already gone there is nothing to wake.
        let _ = UnixStream::connect(&self.path);
    }
}

/// Binds `path` (replacing a stale socket file) for `answerer`.
pub fn serve<A: Answerer>(answerer: Arc<A>, path: &Path) -> io::Result<Server<A>> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    Ok(Server {
        listener,
        answerer,
        stop: Arc::new(AtomicBool::new(false)),
        path: path.to_path_buf(),
        stats: Arc::new(FrontStats::new()),
    })
}

impl<A: Answerer> Server<A> {
    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A stop control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { stop: Arc::clone(&self.stop), path: self.path.clone() }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] is called.
    /// Connection threads are joined before returning; the socket file is
    /// removed on exit.
    pub fn run(self) -> io::Result<()> {
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            self.stats.connections.fetch_add(1, Ordering::Relaxed);
            let answerer = Arc::clone(&self.answerer);
            let stats = Arc::clone(&self.stats);
            workers.push(thread::spawn(move || {
                // A peer dropping mid-frame is normal churn, not a server
                // error; just close our end.
                let _ = handle_connection(&*answerer, &stats, stream);
                answerer.on_connection_close();
            }));
            // Reap finished workers so a long-lived daemon doesn't
            // accumulate handles.
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

fn handle_connection<A: Answerer>(
    answerer: &A,
    stats: &FrontStats,
    stream: UnixStream,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(body) = proto::read_frame(&mut reader)? {
        let started = Instant::now();
        let response = match proto::from_bytes::<Request>(&body) {
            Ok(req) => {
                stats.by_tag[request_tag(&req)].fetch_add(1, Ordering::Relaxed);
                match req {
                    Request::ServerStats => {
                        Response::ServerStats(stats.snapshot(answerer.cache_stats()))
                    }
                    req => answerer.answer(&req),
                }
            }
            Err(e) => Response::Error(e.to_string()),
        };
        let reply = proto::to_bytes(&response);
        proto::write_frame(&mut writer, &reply)?;
        writer.flush()?;
        dynaddr_obs::hist_record("query.latency_us", started.elapsed().as_micros() as u64);
    }
    Ok(())
}

/// The client half: one connection, synchronous request/response.
pub struct QueryClient {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl QueryClient {
    /// Connects to a serving socket.
    pub fn connect(path: &Path) -> io::Result<QueryClient> {
        let stream = UnixStream::connect(path)?;
        Ok(QueryClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects, retrying while the daemon is still starting up.
    pub fn connect_retry(path: &Path, timeout: Duration) -> io::Result<QueryClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match QueryClient::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Sends one request and returns the raw response frame — the bytes
    /// the determinism checks compare. Clean EOF is an error here: a
    /// request was outstanding.
    pub fn request_bytes(&mut self, req: &Request) -> io::Result<Vec<u8>> {
        let body = proto::to_bytes(req);
        proto::write_frame(&mut self.writer, &body)?;
        self.writer.flush()?;
        proto::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    }

    /// Sends one request and decodes the typed response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let bytes = self.request_bytes(req)?;
        proto::from_bytes::<Response>(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
