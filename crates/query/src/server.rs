//! Unix-socket serving: accept loop, per-connection threads, client half.
//!
//! The process model is the classic one: [`serve`] binds the socket, the
//! accept loop hands each connection to its own thread, and every thread
//! answers frames against the same shared [`QueryEngine`] — the engine's
//! `&self` query path and the sharded cache do all the concurrency work.
//! Per-request latency is recorded into the `query.latency_us` histogram
//! and cache counter deltas are published when a connection closes, so a
//! `--trace` sidecar on the daemon captures the serving metrics without
//! any per-request registry locking beyond the one histogram record.
//!
//! Shutdown is cooperative: [`ServerHandle::stop`] sets a flag and pokes
//! the listener with a dummy connect so `accept` wakes up; the accept
//! loop then joins its connection threads. The CI smoke instead just
//! kills the `queryd` process — both paths leave the store file untouched
//! because serving never writes.

use crate::engine::QueryEngine;
use crate::proto::{self, Request, Response};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A bound, not-yet-running server. Call [`Server::run`] to serve.
pub struct Server {
    listener: UnixListener,
    engine: Arc<QueryEngine>,
    stop: Arc<AtomicBool>,
    path: PathBuf,
}

/// Stop control for a running [`Server`], usable from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    path: PathBuf,
}

impl ServerHandle {
    /// Asks the accept loop to exit and wakes it up.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection; if the listener
        // is already gone there is nothing to wake.
        let _ = UnixStream::connect(&self.path);
    }
}

/// Binds `path` (replacing a stale socket file) for `engine`.
pub fn serve(engine: Arc<QueryEngine>, path: &Path) -> io::Result<Server> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    Ok(Server {
        listener,
        engine,
        stop: Arc::new(AtomicBool::new(false)),
        path: path.to_path_buf(),
    })
}

impl Server {
    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A stop control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { stop: Arc::clone(&self.stop), path: self.path.clone() }
    }

    /// Runs the accept loop until [`ServerHandle::stop`] is called.
    /// Connection threads are joined before returning; the socket file is
    /// removed on exit.
    pub fn run(self) -> io::Result<()> {
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let engine = Arc::clone(&self.engine);
            workers.push(thread::spawn(move || {
                // A peer dropping mid-frame is normal churn, not a server
                // error; just close our end.
                let _ = handle_connection(&engine, stream);
                engine.publish_metrics();
            }));
            // Reap finished workers so a long-lived daemon doesn't
            // accumulate handles.
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

fn handle_connection(engine: &QueryEngine, stream: UnixStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(body) = proto::read_frame(&mut reader)? {
        let started = Instant::now();
        let response = match proto::from_bytes::<Request>(&body) {
            Ok(req) => engine.query(&req),
            Err(e) => Response::Error(e.to_string()),
        };
        let reply = proto::to_bytes(&response);
        proto::write_frame(&mut writer, &reply)?;
        writer.flush()?;
        dynaddr_obs::hist_record("query.latency_us", started.elapsed().as_micros() as u64);
    }
    Ok(())
}

/// The client half: one connection, synchronous request/response.
pub struct QueryClient {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl QueryClient {
    /// Connects to a serving socket.
    pub fn connect(path: &Path) -> io::Result<QueryClient> {
        let stream = UnixStream::connect(path)?;
        Ok(QueryClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects, retrying while the daemon is still starting up.
    pub fn connect_retry(path: &Path, timeout: Duration) -> io::Result<QueryClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match QueryClient::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Sends one request and returns the raw response frame — the bytes
    /// the determinism checks compare. Clean EOF is an error here: a
    /// request was outstanding.
    pub fn request_bytes(&mut self, req: &Request) -> io::Result<Vec<u8>> {
        let body = proto::to_bytes(req);
        proto::write_frame(&mut self.writer, &body)?;
        self.writer.flush()?;
        proto::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    }

    /// Sends one request and decodes the typed response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let bytes = self.request_bytes(req)?;
        proto::from_bytes::<Response>(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
