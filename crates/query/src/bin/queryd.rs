//! `queryd` — serve typed queries over a dataset store on a Unix socket.
//!
//! ```text
//! queryd --data DIR --socket PATH [--cache-mb N] [--shards N] [--trace FILE]
//! ```
//!
//! Opens `DIR/dataset.store` (plus `truth.store` and `ip2as/` when
//! present) once, binds `PATH`, and serves until killed. `--trace` writes
//! the obs JSONL sidecar (query latency histogram, cache counters).

#[cfg(unix)]
fn main() {
    if let Err(e) = run() {
        eprintln!("queryd: {e}");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("queryd: unix sockets are not available on this platform");
    std::process::exit(1);
}

#[cfg(unix)]
fn run() -> Result<(), String> {
    use dynaddr_query::{serve, CacheConfig, EngineOptions, QueryEngine};
    use std::path::PathBuf;
    use std::sync::Arc;

    let mut data: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut cache = CacheConfig::default();
    let mut trace: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--data" => data = Some(PathBuf::from(value("--data")?)),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--cache-mb" => {
                cache.budget_bytes = value("--cache-mb")?
                    .parse::<usize>()
                    .map_err(|e| format!("--cache-mb: {e}"))?
                    .saturating_mul(1 << 20)
            }
            "--shards" => {
                cache.shards =
                    value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--help" | "-h" => {
                println!(
                    "usage: queryd --data DIR --socket PATH \
                     [--cache-mb N] [--shards N] [--trace FILE]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let data = data.ok_or("--data is required")?;
    let socket = socket.ok_or("--socket is required")?;
    if let Some(path) = &trace {
        dynaddr_obs::init_trace(path).map_err(|e| format!("--trace: {e}"))?;
    }

    let engine = QueryEngine::open_dir(&data, &EngineOptions { cache })
        .map_err(|e| e.to_string())?;
    let engine = Arc::new(engine);
    let stats = engine.stats();
    eprintln!(
        "queryd: {} probes, {} ASes, {} countries, truth={} — listening on {}",
        stats.probes().len(),
        stats.asns().len(),
        stats.countries().len(),
        engine.truth_available(),
        socket.display()
    );
    let server = serve(Arc::clone(&engine), &socket).map_err(|e| e.to_string())?;
    let result = server.run().map_err(|e| e.to_string());
    engine.publish_metrics();
    dynaddr_obs::flush_trace();
    result
}
