//! `queryc` — replay a seeded workload against `queryd` or locally.
//!
//! ```text
//! queryc --data DIR [--socket PATH] [--count N] [--seed S] [--out FILE]
//!        [--stats]
//! ```
//!
//! Builds the workload operand universe from `DIR` (so the request
//! sequence is identical however it is answered), then answers each
//! request remotely (`--socket`) or from the batch-loaded dataset.
//! Output is one line per request — `<index> <hex of response bytes>` —
//! which makes runs diffable: remote vs local, cold vs warm. That diff is
//! the CI query smoke.
//!
//! `--stats` asks the server for its own counters (uptime, request
//! counts, cache hits/misses) after the workload and prints them to
//! stderr, human-readably — deliberately outside the diffable hex stream,
//! since server counters differ between runs by construction.

#[cfg(unix)]
fn main() {
    if let Err(e) = run() {
        eprintln!("queryc: {e}");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("queryc: unix sockets are not available on this platform");
    std::process::exit(1);
}

#[cfg(unix)]
fn run() -> Result<(), String> {
    use dynaddr_query::proto::{Request, Response};
    use dynaddr_query::{proto, LocalAnswerer, QueryClient, Workload};
    use std::io::Write;
    use std::path::PathBuf;
    use std::time::Duration;

    let mut data: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut count: u64 = 100;
    let mut seed: u64 = 0xD15EA5E;
    let mut out: Option<PathBuf> = None;
    let mut want_stats = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--data" => data = Some(PathBuf::from(value("--data")?)),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--count" => {
                count = value("--count")?.parse().map_err(|e| format!("--count: {e}"))?
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--stats" => want_stats = true,
            "--help" | "-h" => {
                println!(
                    "usage: queryc --data DIR [--socket PATH] [--count N] \
                     [--seed S] [--out FILE] [--stats]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let data = data.ok_or("--data is required")?;

    let local = LocalAnswerer::open_dir(&data).map_err(|e| e.to_string())?;
    let stats = local.stats();
    let workload = Workload::new(
        seed,
        stats.probes(),
        stats.asns(),
        stats.countries(),
        local.truth_available(),
    );

    let mut client = match &socket {
        Some(path) => Some(
            QueryClient::connect_retry(path, Duration::from_secs(10))
                .map_err(|e| format!("{}: {e}", path.display()))?,
        ),
        None => None,
    };

    let mut sink: Box<dyn Write> = match &out {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    for i in 0..count {
        let req = workload.request(i);
        let bytes = match &mut client {
            Some(c) => c.request_bytes(&req).map_err(|e| format!("request {i}: {e}"))?,
            None => proto::to_bytes(&local.answer(&req)),
        };
        let mut line = String::with_capacity(bytes.len() * 2 + 24);
        line.push_str(&i.to_string());
        line.push(' ');
        for b in bytes {
            line.push_str(&format!("{b:02x}"));
        }
        line.push('\n');
        sink.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
    }
    sink.flush().map_err(|e| e.to_string())?;

    if want_stats {
        let Some(c) = &mut client else {
            return Err("--stats needs --socket (server counters live in the server)".into());
        };
        match c.request(&Request::ServerStats).map_err(|e| format!("--stats: {e}"))? {
            Response::ServerStats(s) => {
                eprintln!("server: up {}s, {} connections, {} requests", s.uptime_secs, s.connections_total, s.requests_total);
                for (tag, n) in &s.requests_by_tag {
                    eprintln!("  tag {tag}: {n}");
                }
                eprintln!(
                    "  cache: {} hits, {} misses, {} evictions",
                    s.cache_hits, s.cache_misses, s.cache_evictions
                );
            }
            Response::Error(e) => return Err(format!("--stats: server said: {e}")),
            other => return Err(format!("--stats: unexpected response {other:?}")),
        }
    }
    Ok(())
}
