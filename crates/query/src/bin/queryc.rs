//! `queryc` — replay a seeded workload against `queryd` or locally.
//!
//! ```text
//! queryc --data DIR [--socket PATH] [--count N] [--seed S] [--out FILE]
//! ```
//!
//! Builds the workload operand universe from `DIR` (so the request
//! sequence is identical however it is answered), then answers each
//! request remotely (`--socket`) or from the batch-loaded dataset.
//! Output is one line per request — `<index> <hex of response bytes>` —
//! which makes runs diffable: remote vs local, cold vs warm. That diff is
//! the CI query smoke.

#[cfg(unix)]
fn main() {
    if let Err(e) = run() {
        eprintln!("queryc: {e}");
        std::process::exit(1);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("queryc: unix sockets are not available on this platform");
    std::process::exit(1);
}

#[cfg(unix)]
fn run() -> Result<(), String> {
    use dynaddr_query::{proto, LocalAnswerer, QueryClient, Workload};
    use std::io::Write;
    use std::path::PathBuf;
    use std::time::Duration;

    let mut data: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut count: u64 = 100;
    let mut seed: u64 = 0xD15EA5E;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--data" => data = Some(PathBuf::from(value("--data")?)),
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--count" => {
                count = value("--count")?.parse().map_err(|e| format!("--count: {e}"))?
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                println!(
                    "usage: queryc --data DIR [--socket PATH] [--count N] \
                     [--seed S] [--out FILE]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let data = data.ok_or("--data is required")?;

    let local = LocalAnswerer::open_dir(&data).map_err(|e| e.to_string())?;
    let stats = local.stats();
    let workload = Workload::new(
        seed,
        stats.probes(),
        stats.asns(),
        stats.countries(),
        local.truth_available(),
    );

    let mut client = match &socket {
        Some(path) => Some(
            QueryClient::connect_retry(path, Duration::from_secs(10))
                .map_err(|e| format!("{}: {e}", path.display()))?,
        ),
        None => None,
    };

    let mut sink: Box<dyn Write> = match &out {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    for i in 0..count {
        let req = workload.request(i);
        let bytes = match &mut client {
            Some(c) => c.request_bytes(&req).map_err(|e| format!("request {i}: {e}"))?,
            None => proto::to_bytes(&local.answer(&req)),
        };
        let mut line = String::with_capacity(bytes.len() * 2 + 24);
        line.push_str(&i.to_string());
        line.push(' ');
        for b in bytes {
            line.push_str(&format!("{b:02x}"));
        }
        line.push('\n');
        sink.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
    }
    sink.flush().map_err(|e| e.to_string())?;
    Ok(())
}
