//! Seeded randomized query workloads with zipf-skewed probe ids.
//!
//! A [`Workload`] is a pure function `(seed, index) → Request`: request
//! `i` is derived from `splitmix64(seed, i)` alone, so any number of
//! worker threads can partition the index space (`i % threads == worker`)
//! and every partitioning replays the exact same request sequence. Probe
//! picks are zipf(s=1.0)-skewed over the probe list — a heavy head of hot
//! probes and a long cold tail, the shape that actually exercises an LRU —
//! while AS/country picks are uniform over the observed universes.

use crate::proto::Request;
use dynaddr_types::{Asn, ProbeId};

/// One round of the splitmix64 output function — the same mixer the
/// simulator's hash pools use; good 64-bit avalanche, no state.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic query workload over a fixed operand universe.
pub struct Workload {
    seed: u64,
    probes: Vec<u32>,
    /// Zipf cumulative weights over `probes` (same length), normalized to
    /// end at 1.0.
    cum: Vec<f64>,
    asns: Vec<u32>,
    countries: Vec<String>,
    /// Whether ProbeTruth requests are worth issuing (a truth.store is
    /// loaded on the answering side). When false that mix share falls
    /// back to ProbeRecords so local and remote workloads stay aligned.
    truth_available: bool,
}

impl Workload {
    /// Builds the workload universe. `probes`/`asns`/`countries` must be
    /// identical on every side that replays the workload (derive them from
    /// the same [`crate::index::StatsIndex`]).
    pub fn new(
        seed: u64,
        probes: Vec<u32>,
        asns: Vec<u32>,
        countries: Vec<String>,
        truth_available: bool,
    ) -> Workload {
        // Zipf s=1.0 over list position: rank r gets weight 1/(r+1).
        let mut cum = Vec::with_capacity(probes.len());
        let mut total = 0.0f64;
        for r in 0..probes.len() {
            total += 1.0 / (r as f64 + 1.0);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Workload { seed, probes, cum, asns, countries, truth_available }
    }

    /// A zipf-skewed probe pick from a uniform `u64` draw.
    fn zipf_probe(&self, draw: u64) -> u32 {
        // 53 uniform bits → [0, 1); binary search the cumulative weights.
        let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
        let i = self.cum.partition_point(|&c| c <= u).min(self.probes.len() - 1);
        self.probes[i]
    }

    /// The `i`-th request of the workload. Pure in `(seed, i)`.
    pub fn request(&self, i: u64) -> Request {
        if self.probes.is_empty() {
            return Request::Ping;
        }
        let r0 = splitmix64(self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let r1 = splitmix64(r0);
        let pick = r0 % 100;
        if pick < 55 {
            Request::ProbeSeries(ProbeId(self.zipf_probe(r1)))
        } else if pick < 80 {
            Request::ProbeRecords(ProbeId(self.zipf_probe(r1)))
        } else if pick < 88 && !self.asns.is_empty() {
            Request::AsSummary(Asn(self.asns[(r1 % self.asns.len() as u64) as usize]))
        } else if pick < 94 && !self.countries.is_empty() {
            Request::CountrySummary(
                self.countries[(r1 % self.countries.len() as u64) as usize].clone(),
            )
        } else if pick < 97 {
            Request::TopMovers(1 + (r1 % 25) as u32)
        } else if self.truth_available {
            Request::ProbeTruth(ProbeId(self.zipf_probe(r1)))
        } else {
            Request::ProbeRecords(ProbeId(self.zipf_probe(r1)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        Workload::new(
            42,
            (0..100).collect(),
            vec![64500, 64501],
            vec!["DE".into(), "US".into()],
            true,
        )
    }

    #[test]
    fn requests_are_pure_in_seed_and_index() {
        let a = sample();
        let b = sample();
        for i in 0..500 {
            assert_eq!(a.request(i), b.request(i));
        }
        let c = Workload::new(
            43,
            (0..100).collect(),
            vec![64500, 64501],
            vec!["DE".into(), "US".into()],
            true,
        );
        assert!((0..500).any(|i| a.request(i) != c.request(i)), "seed must matter");
    }

    #[test]
    fn zipf_head_is_hot() {
        let w = sample();
        let mut head = 0usize;
        let mut total = 0usize;
        for i in 0..20_000 {
            if let Request::ProbeSeries(p) | Request::ProbeRecords(p) = w.request(i) {
                total += 1;
                if p.0 < 10 {
                    head += 1;
                }
            }
        }
        // Under zipf(1.0) over 100 ranks the top-10 mass is ~56%; uniform
        // would be 10%. Assert it is clearly skewed.
        assert!(total > 10_000);
        assert!(
            head as f64 / total as f64 > 0.4,
            "top-10 probes got only {head}/{total} of probe picks"
        );
    }

    #[test]
    fn empty_universe_degrades_to_ping() {
        let w = Workload::new(1, Vec::new(), Vec::new(), Vec::new(), false);
        assert_eq!(w.request(0), Request::Ping);
    }
}
