//! Secondary indexes built in one pass at engine open.
//!
//! The store file is keyed by probe id; AS and country queries need the
//! reverse maps. [`StatsBuilder`] folds the meta table and the connection
//! table — in file order, batch by batch, so the engine can feed it
//! straight from decoded segments without materializing the whole table —
//! into one [`ProbeStat`] per probe, then [`StatsBuilder::finish`] freezes
//! the per-AS / per-country groupings and the global mover ranking. The
//! same builder consumes a batch-loaded [`AtlasDataset`]
//! ([`StatsIndex::from_dataset`]), which is what lets the tests assert the
//! streamed build and the in-memory build agree exactly.
//!
//! `changes` here is the *raw* count of adjacent v4 address transitions in
//! the connection log — testing-address entries included, no probe
//! filtering — a serving-layer activity measure, deliberately simpler than
//! the paper pipeline's filtered event extraction (which
//! [`crate::engine::series_reply`] exposes per probe).

use crate::proto::{AsSummaryReply, CountrySummaryReply, MoverReply};
use dynaddr_atlas::{AtlasDataset, ConnectionLogEntry, ProbeMeta};
use dynaddr_ip2as::MonthlySnapshots;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Movers listed inside an AS/country summary.
const SUMMARY_MOVERS: usize = 5;

/// Per-probe activity statistics, the row type of [`StatsIndex`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeStat {
    /// The probe.
    pub probe: u32,
    /// AS of its first observed v4 address (0 = none mapped).
    pub asn: u32,
    /// Registered country code ("" without a meta row).
    pub country: String,
    /// Connection-log rows.
    pub connections: u64,
    /// Of those, IPv6 rows.
    pub v6_connections: u64,
    /// Raw adjacent v4 address transitions.
    pub changes: u64,
    /// Summed v4 connection time, seconds (negative spans clamped to 0).
    pub online_secs: u64,
}

#[derive(Default)]
struct Accum {
    stat: ProbeStat,
    last_v4: Option<Ipv4Addr>,
    has_asn: bool,
}

/// Incremental builder: meta rows, then connection rows in file order.
pub struct StatsBuilder<'s> {
    snaps: &'s MonthlySnapshots,
    probes: BTreeMap<u32, Accum>,
}

impl<'s> StatsBuilder<'s> {
    /// Starts an empty fold; `snaps` resolves first-address AS mappings.
    pub fn new(snaps: &'s MonthlySnapshots) -> StatsBuilder<'s> {
        StatsBuilder { snaps, probes: BTreeMap::new() }
    }

    fn accum(&mut self, probe: u32) -> &mut Accum {
        let a = self.probes.entry(probe).or_default();
        a.stat.probe = probe;
        a
    }

    /// Folds a batch of meta rows (any order).
    pub fn add_meta(&mut self, rows: &[ProbeMeta]) {
        for m in rows {
            self.accum(m.probe.0).stat.country = m.country.to_string();
        }
    }

    /// Folds a batch of connection rows. Batches must arrive in file
    /// order (normalized files sort by probe then start time) so the
    /// adjacent-transition count carries correctly across batch seams.
    pub fn add_connections(&mut self, rows: &[ConnectionLogEntry]) {
        for e in rows {
            let snaps = self.snaps;
            let a = self.accum(e.probe.0);
            a.stat.connections += 1;
            match e.peer.v4() {
                None => a.stat.v6_connections += 1,
                Some(addr) => {
                    if !a.has_asn {
                        a.has_asn = true;
                        a.stat.asn = snaps.asn_at(e.start, addr).0;
                    }
                    a.stat.online_secs += (e.end.0 - e.start.0).max(0) as u64;
                    if a.last_v4.is_some_and(|prev| prev != addr) {
                        a.stat.changes += 1;
                    }
                    a.last_v4 = Some(addr);
                }
            }
        }
    }

    /// Freezes the fold into a queryable index.
    pub fn finish(self) -> StatsIndex {
        let stats: Vec<ProbeStat> = self.probes.into_values().map(|a| a.stat).collect();
        let mut by_as: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        let mut by_country: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, s) in stats.iter().enumerate() {
            if s.asn != 0 {
                by_as.entry(s.asn).or_default().push(i);
            }
            if !s.country.is_empty() {
                by_country.entry(s.country.clone()).or_default().push(i);
            }
        }
        let mut movers: Vec<usize> = (0..stats.len()).collect();
        movers.sort_by(|&a, &b| {
            stats[b].changes.cmp(&stats[a].changes).then(stats[a].probe.cmp(&stats[b].probe))
        });
        StatsIndex { stats, by_as, by_country, movers }
    }
}

/// Frozen secondary indexes: probe stats plus AS/country groupings and the
/// global mover ranking. Built once at open, read-only afterwards — shared
/// freely across query threads.
pub struct StatsIndex {
    /// One row per probe, sorted by probe id.
    stats: Vec<ProbeStat>,
    by_as: BTreeMap<u32, Vec<usize>>,
    by_country: BTreeMap<String, Vec<usize>>,
    /// All probe indices, sorted by (changes desc, probe asc).
    movers: Vec<usize>,
}

impl StatsIndex {
    /// Builds the index from a batch-loaded dataset — the reference
    /// construction the streamed (segment-fed) build must match.
    pub fn from_dataset(ds: &AtlasDataset, snaps: &MonthlySnapshots) -> StatsIndex {
        let mut b = StatsBuilder::new(snaps);
        b.add_meta(&ds.meta);
        b.add_connections(&ds.connections);
        b.finish()
    }

    /// Per-probe rows, sorted by probe id.
    pub fn stats(&self) -> &[ProbeStat] {
        &self.stats
    }

    /// One probe's row.
    pub fn stat_of(&self, probe: u32) -> Option<&ProbeStat> {
        self.stats.binary_search_by_key(&probe, |s| s.probe).ok().map(|i| &self.stats[i])
    }

    /// Every probe id, ascending — the workload universe.
    pub fn probes(&self) -> Vec<u32> {
        self.stats.iter().map(|s| s.probe).collect()
    }

    /// Every mapped AS, ascending.
    pub fn asns(&self) -> Vec<u32> {
        self.by_as.keys().copied().collect()
    }

    /// Every registered country code, ascending.
    pub fn countries(&self) -> Vec<String> {
        self.by_country.keys().cloned().collect()
    }

    fn mover_of(&self, s: &ProbeStat) -> MoverReply {
        MoverReply {
            probe: s.probe,
            changes: s.changes,
            asn: s.asn,
            country: s.country.clone(),
        }
    }

    fn group_movers(&self, members: &[usize]) -> Vec<MoverReply> {
        let mut idx = members.to_vec();
        idx.sort_by(|&a, &b| {
            self.stats[b]
                .changes
                .cmp(&self.stats[a].changes)
                .then(self.stats[a].probe.cmp(&self.stats[b].probe))
        });
        idx.truncate(SUMMARY_MOVERS);
        idx.into_iter().map(|i| self.mover_of(&self.stats[i])).collect()
    }

    /// Aggregate over one AS; `None` for an AS no probe mapped to.
    pub fn as_summary(&self, asn: u32) -> Option<AsSummaryReply> {
        let members = self.by_as.get(&asn)?;
        let mut reply = AsSummaryReply {
            asn,
            probes: members.len() as u64,
            connections: 0,
            v6_connections: 0,
            changes: 0,
            online_secs: 0,
            countries: Vec::new(),
            top_movers: self.group_movers(members),
        };
        let mut countries: BTreeMap<&str, u64> = BTreeMap::new();
        for &i in members {
            let s = &self.stats[i];
            reply.connections += s.connections;
            reply.v6_connections += s.v6_connections;
            reply.changes += s.changes;
            reply.online_secs += s.online_secs;
            if !s.country.is_empty() {
                *countries.entry(&s.country).or_default() += 1;
            }
        }
        reply.countries = countries.into_iter().map(|(c, n)| (c.to_string(), n)).collect();
        Some(reply)
    }

    /// Aggregate over one country; `None` for a code no probe registered.
    pub fn country_summary(&self, cc: &str) -> Option<CountrySummaryReply> {
        let members = self.by_country.get(cc)?;
        let mut reply = CountrySummaryReply {
            country: cc.to_string(),
            probes: members.len() as u64,
            connections: 0,
            v6_connections: 0,
            changes: 0,
            online_secs: 0,
            asns: Vec::new(),
            top_movers: self.group_movers(members),
        };
        let mut asns: BTreeMap<u32, u64> = BTreeMap::new();
        for &i in members {
            let s = &self.stats[i];
            reply.connections += s.connections;
            reply.v6_connections += s.v6_connections;
            reply.changes += s.changes;
            reply.online_secs += s.online_secs;
            if s.asn != 0 {
                *asns.entry(s.asn).or_default() += 1;
            }
        }
        reply.asns = asns.into_iter().collect();
        Some(reply)
    }

    /// The `n` highest-churn probes, globally.
    pub fn top_movers(&self, n: u32) -> Vec<MoverReply> {
        self.movers
            .iter()
            .take(n as usize)
            .map(|&i| self.mover_of(&self.stats[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::PeerAddr;
    use dynaddr_ip2as::RouteTable;
    use dynaddr_types::{Country, Prefix, ProbeId, ProbeVersion, SimTime};

    fn snaps() -> MonthlySnapshots {
        let mut t = RouteTable::new();
        t.announce(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8).unwrap(), dynaddr_types::Asn(64500));
        MonthlySnapshots::uniform(t)
    }

    fn conn(probe: u32, start: i64, end: i64, last: u8) -> ConnectionLogEntry {
        ConnectionLogEntry {
            probe: ProbeId(probe),
            start: SimTime(start),
            end: SimTime(end),
            peer: PeerAddr::V4(Ipv4Addr::new(10, 0, 0, last)),
        }
    }

    fn meta(probe: u32, cc: &str) -> ProbeMeta {
        ProbeMeta {
            probe: ProbeId(probe),
            version: ProbeVersion::V3,
            country: Country::new(cc).unwrap(),
            tags: vec![],
        }
    }

    #[test]
    fn batched_fold_matches_single_batch() {
        let snaps = snaps();
        let rows = vec![
            conn(1, 0, 10, 1),
            conn(1, 20, 30, 2),
            conn(1, 40, 50, 2),
            conn(2, 0, 5, 9),
            conn(2, 6, 7, 8),
        ];
        let metas = vec![meta(1, "DE"), meta(2, "US")];
        let mut one = StatsBuilder::new(&snaps);
        one.add_meta(&metas);
        one.add_connections(&rows);
        let one = one.finish();
        let mut split = StatsBuilder::new(&snaps);
        split.add_meta(&metas[..1]);
        split.add_meta(&metas[1..]);
        for chunk in rows.chunks(2) {
            split.add_connections(chunk);
        }
        let split = split.finish();
        assert_eq!(one.stats(), split.stats());
        let s1 = one.stat_of(1).unwrap();
        assert_eq!((s1.changes, s1.connections, s1.online_secs), (1, 3, 30));
        assert_eq!(s1.asn, 64500);
        assert_eq!(one.stat_of(2).unwrap().changes, 1);
    }

    #[test]
    fn summaries_group_and_rank() {
        let snaps = snaps();
        let mut b = StatsBuilder::new(&snaps);
        b.add_meta(&[meta(1, "DE"), meta(2, "DE"), meta(3, "US")]);
        b.add_connections(&[
            conn(1, 0, 10, 1),
            conn(1, 11, 20, 2),
            conn(1, 21, 30, 3),
            conn(2, 0, 10, 1),
            conn(3, 0, 10, 1),
            conn(3, 11, 20, 2),
        ]);
        let idx = b.finish();
        let de = idx.country_summary("DE").unwrap();
        assert_eq!(de.probes, 2);
        assert_eq!(de.changes, 2);
        assert_eq!(de.top_movers[0].probe, 1);
        assert!(idx.country_summary("JP").is_none());
        let asn = idx.as_summary(64500).unwrap();
        assert_eq!(asn.probes, 3);
        assert_eq!(asn.countries, vec![("DE".to_string(), 2), ("US".to_string(), 1)]);
        assert!(idx.as_summary(1).is_none());
        let movers = idx.top_movers(2);
        assert_eq!(movers[0].probe, 1);
        assert_eq!(movers[1].probe, 3);
        assert_eq!(idx.top_movers(0).len(), 0);
    }
}
