//! Typed request/response protocol and its wire codec.
//!
//! The protocol surface is one enum pair — [`Request`] in, [`Response`]
//! out — usable directly in-process (the engine's `query` method) and
//! across a socket. On the wire each message is a **frame**:
//!
//! ```text
//! +----------------+----------------------------+
//! | u32 LE length  | body (length bytes)        |
//! +----------------+----------------------------+
//! ```
//!
//! The body is the message encoded bincode-style by hand: a leading tag
//! byte selects the variant, integers travel as LEB128 varints (signed
//! values zigzag first — the same `dynaddr_store::varint` primitives the
//! store format uses), byte strings and sequences are length-prefixed,
//! `Option` is a presence byte. There is no self-description: both ends
//! share this module, exactly like the store's column codecs share
//! theirs. Encoding is deterministic — equal values produce equal bytes —
//! which is what lets the determinism tests compare responses byte for
//! byte across thread counts and cache states.
//!
//! Frames are capped at [`MAX_FRAME`] on read so a corrupt or hostile
//! length prefix cannot ask the peer to allocate gigabytes.

use dynaddr_store::varint;
use dynaddr_types::{Asn, ProbeId};
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame body accepted from the wire (64 MiB).
pub const MAX_FRAME: usize = 64 << 20;

/// A query, as issued by clients and answered by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`].
    Ping,
    /// Everything one probe contributed to the dataset, row for row.
    ProbeRecords(ProbeId),
    /// One probe's decoded series: address changes/spans/gaps, detected
    /// network outages, detected reboots.
    ProbeSeries(ProbeId),
    /// Aggregate over every probe mapped to an AS.
    AsSummary(Asn),
    /// Aggregate over every probe registered in a country (ISO alpha-2).
    CountrySummary(String),
    /// The `n` probes with the most observed address changes.
    TopMovers(u32),
    /// One probe's ground-truth changes and outages (requires a
    /// `truth.store` beside the dataset; answered `None` otherwise).
    ProbeTruth(ProbeId),
    /// The serving process's own statistics: uptime, request counts, cache
    /// counters. Answered by the server itself, not the data backend.
    ServerStats,
    /// A daemon's rolling Table 2 funnel over the records ingested so far
    /// (`dynaddrd` only; batch backends answer [`Response::Error`]).
    DaemonSnapshot,
    /// One probe's rolling state in a daemon (`dynaddrd` only).
    DaemonProbe(ProbeId),
    /// A daemon's ingest counters and replay progress (`dynaddrd` only).
    IngestStats,
}

/// The answer to a [`Request`], variant for variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::ProbeRecords`].
    ProbeRecords(ProbeRecordsReply),
    /// Answer to [`Request::ProbeSeries`].
    ProbeSeries(ProbeSeriesReply),
    /// Answer to [`Request::AsSummary`]; `None` for an unknown AS.
    AsSummary(Option<AsSummaryReply>),
    /// Answer to [`Request::CountrySummary`]; `None` for an unknown code.
    CountrySummary(Option<CountrySummaryReply>),
    /// Answer to [`Request::TopMovers`].
    TopMovers(Vec<MoverReply>),
    /// Answer to [`Request::ProbeTruth`]; `None` when no truth is loaded.
    ProbeTruth(Option<ProbeTruthReply>),
    /// The query failed (e.g. a corrupt segment); the message names why.
    Error(String),
    /// Answer to [`Request::ServerStats`].
    ServerStats(ServerStatsReply),
    /// Answer to [`Request::DaemonSnapshot`].
    DaemonSnapshot(DaemonSnapshotReply),
    /// Answer to [`Request::DaemonProbe`]; `None` for an untracked probe.
    DaemonProbe(Option<DaemonProbeReply>),
    /// Answer to [`Request::IngestStats`].
    IngestStats(IngestStatsReply),
}

/// Probe metadata on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaReply {
    /// Hardware generation code (1, 2, 3).
    pub version: u8,
    /// ISO alpha-2 country code.
    pub country: String,
    /// Tag codes (the store's fixed numbering).
    pub tags: Vec<u8>,
}

/// One connection-log row on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnReply {
    /// Connection establishment time (seconds).
    pub start: i64,
    /// Last data receipt time (seconds).
    pub end: i64,
    /// Peer address octets: 4 bytes for IPv4, 16 for IPv6.
    pub peer: Vec<u8>,
}

/// One k-root ping row on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KrootReply {
    /// Measurement time.
    pub timestamp: i64,
    /// Pings sent.
    pub sent: u8,
    /// Pings answered.
    pub success: u8,
    /// Seconds since last clock sync.
    pub lts_secs: i64,
}

/// One SOS-uptime row on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UptimeReply {
    /// Report time.
    pub timestamp: i64,
    /// Seconds since boot.
    pub uptime_secs: u64,
}

/// Answer payload for [`Request::ProbeRecords`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeRecordsReply {
    /// The probe asked about.
    pub probe: u32,
    /// Metadata row, if present.
    pub meta: Option<MetaReply>,
    /// Connection-log rows, in store order.
    pub connections: Vec<ConnReply>,
    /// K-root ping rows, in store order.
    pub kroot: Vec<KrootReply>,
    /// SOS-uptime rows, in store order.
    pub uptime: Vec<UptimeReply>,
}

/// One observed address change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeReply {
    /// End of the last connection on the old address.
    pub gap_start: i64,
    /// Start of the first connection on the new address.
    pub gap_end: i64,
    /// Old IPv4 address octets.
    pub from: [u8; 4],
    /// New IPv4 address octets.
    pub to: [u8; 4],
}

/// One address span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReply {
    /// The address held.
    pub addr: [u8; 4],
    /// First connection start with this address.
    pub start: i64,
    /// Last connection end with this address.
    pub end: i64,
    /// Whether both ends are bounded by observed changes.
    pub complete: bool,
}

/// One inter-connection gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapReply {
    /// End of the earlier connection.
    pub start: i64,
    /// Start of the later connection.
    pub end: i64,
    /// Whether the address differed across the gap.
    pub address_changed: bool,
}

/// One detected network outage (k-root silence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageReply {
    /// First all-lost measurement.
    pub start: i64,
    /// Last all-lost measurement.
    pub end: i64,
}

/// One detected reboot (uptime counter reset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebootReply {
    /// Boot instant implied by the counter.
    pub boot_time: i64,
    /// When the post-reboot record was reported.
    pub report_time: i64,
}

/// Answer payload for [`Request::ProbeSeries`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeSeriesReply {
    /// The probe asked about.
    pub probe: u32,
    /// Metadata row, if present.
    pub meta: Option<MetaReply>,
    /// Observed address changes, in time order.
    pub changes: Vec<ChangeReply>,
    /// Address spans, in time order.
    pub spans: Vec<SpanReply>,
    /// Inter-connection gaps, in time order.
    pub gaps: Vec<GapReply>,
    /// Detected network outages, in time order.
    pub outages: Vec<OutageReply>,
    /// Detected reboots, in time order.
    pub reboots: Vec<RebootReply>,
    /// Whether a leading RIPE-testing-address entry was stripped.
    pub had_testing_entry: bool,
    /// IPv6 connection entries excluded from event extraction.
    pub v6_entries: u64,
}

/// One high-churn probe in a mover list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoverReply {
    /// The probe.
    pub probe: u32,
    /// Raw observed address transitions (v4, testing entries included).
    pub changes: u64,
    /// The AS its first observed v4 address mapped to (0 = unmapped).
    pub asn: u32,
    /// Registered country code.
    pub country: String,
}

/// Answer payload for [`Request::AsSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct AsSummaryReply {
    /// The AS.
    pub asn: u32,
    /// Probes mapped to it.
    pub probes: u64,
    /// Their connection rows.
    pub connections: u64,
    /// Of those, IPv6 rows.
    pub v6_connections: u64,
    /// Raw observed address transitions across all its probes.
    pub changes: u64,
    /// Summed v4 connection time, seconds.
    pub online_secs: u64,
    /// Probe count per registered country, sorted by code.
    pub countries: Vec<(String, u64)>,
    /// Its top 5 probes by change count.
    pub top_movers: Vec<MoverReply>,
}

/// Answer payload for [`Request::CountrySummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct CountrySummaryReply {
    /// ISO alpha-2 code.
    pub country: String,
    /// Probes registered there.
    pub probes: u64,
    /// Their connection rows.
    pub connections: u64,
    /// Of those, IPv6 rows.
    pub v6_connections: u64,
    /// Raw observed address transitions across its probes.
    pub changes: u64,
    /// Summed v4 connection time, seconds.
    pub online_secs: u64,
    /// Probe count per AS, sorted by ASN.
    pub asns: Vec<(u32, u64)>,
    /// Its top 5 probes by change count.
    pub top_movers: Vec<MoverReply>,
}

/// One ground-truth change on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthChangeReply {
    /// When the new address took effect.
    pub time: i64,
    /// Address before the change (absent at first assignment).
    pub from: Option<[u8; 4]>,
    /// Address after the change.
    pub to: [u8; 4],
    /// Cause code (the store's fixed `ChangeCause` numbering).
    pub cause: u8,
}

/// One ground-truth outage on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthOutageReply {
    /// Kind code (the store's fixed `TruthOutageKind` numbering).
    pub kind: u8,
    /// When connectivity/power was lost.
    pub start: i64,
    /// Duration, seconds.
    pub duration: i64,
    /// Whether recovery came with a new address.
    pub address_changed: bool,
}

/// Answer payload for [`Request::ProbeTruth`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeTruthReply {
    /// The probe asked about.
    pub probe: u32,
    /// Its ground-truth changes, in time order.
    pub changes: Vec<TruthChangeReply>,
    /// Its ground-truth outages, in time order.
    pub outages: Vec<TruthOutageReply>,
}

/// Answer payload for [`Request::ServerStats`]: the serving process's own
/// counters. Filled in by the server front-end, never by a data backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStatsReply {
    /// Seconds since the server started accepting connections.
    pub uptime_secs: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Requests answered since start (all kinds, including this one).
    pub requests_total: u64,
    /// Per-request-kind counts as `(wire tag, count)` pairs, ascending by
    /// tag; tags with a zero count are omitted.
    pub requests_by_tag: Vec<(u32, u64)>,
    /// Result-cache hits, when the backend has a cache (zeros otherwise).
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
}

/// Answer payload for [`Request::DaemonSnapshot`]: the rolling Table 2
/// funnel over everything ingested so far. Provisional by construction —
/// classes can still migrate until the stream is sealed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonSnapshotReply {
    /// Probes with metadata pushed so far.
    pub total: u64,
    /// Currently classed IPv6-only.
    pub ipv6_only: u64,
    /// Currently classed dual-stack.
    pub dual_stack: u64,
    /// Disqualified by tags.
    pub tagged: u64,
    /// Behaviourally multihomed.
    pub multihomed: u64,
    /// Only testing-address entries so far.
    pub testing_only: u64,
    /// Connected but never changed address.
    pub never_changed: u64,
    /// Analyzable for geographic analyses.
    pub analyzable_geo: u64,
    /// Analyzable probes that crossed AS boundaries.
    pub multi_as: u64,
    /// Analyzable for AS-level analyses (`analyzable_geo - multi_as`).
    pub analyzable_as: u64,
    /// Address changes observed so far.
    pub changes: u64,
    /// Connection gaps observed so far.
    pub gaps: u64,
    /// Network outages detected so far.
    pub network_outages: u64,
    /// Reboots detected so far (before firmware filtering, which is a
    /// seal-time global pass).
    pub reboots: u64,
    /// Latest event time pushed (seconds), 0 before any row.
    pub frontier_secs: i64,
    /// Probes with at least one record or metadata row.
    pub probes_tracked: u64,
    /// True once the stream has been sealed into a final report.
    pub sealed: bool,
}

/// Answer payload for [`Request::DaemonProbe`]: one probe's rolling state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonProbeReply {
    /// The probe asked about.
    pub probe: u32,
    /// Provisional funnel class, in `dynaddr_core::ProbeClass` declaration
    /// order: 0 Ipv6Only, 1 DualStack, 2 Tagged, 3 Multihomed,
    /// 4 TestingOnly, 5 NeverChanged, 6 Analyzable.
    pub class: u8,
    /// Whether its changes crossed AS boundaries.
    pub multi_as: bool,
    /// IPv4 connection entries retained.
    pub entries: u64,
    /// Address changes so far.
    pub changes: u64,
    /// Connection gaps so far.
    pub gaps: u64,
    /// Network outages so far.
    pub network_outages: u64,
    /// Reboots so far.
    pub reboots: u64,
    /// Whether a testing-address entry was ever seen.
    pub had_testing: bool,
}

/// Answer payload for [`Request::IngestStats`]: raw ingest counters and
/// replay progress. All integers — rates are derived client-side from
/// `rows_ingested` and `elapsed_ms` so the wire stays float-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStatsReply {
    /// Probe-metadata rows ingested.
    pub meta_rows: u64,
    /// Connection-log rows ingested.
    pub connection_rows: u64,
    /// K-root ping rows ingested.
    pub kroot_rows: u64,
    /// SOS uptime rows ingested.
    pub uptime_rows: u64,
    /// Rows dropped because their probe had no metadata yet.
    pub unknown_probe_rows: u64,
    /// Latest event time pushed (seconds), 0 before any row.
    pub frontier_secs: i64,
    /// Record rows ingested so far (connection + kroot + uptime).
    pub rows_ingested: u64,
    /// Total record rows in the replay plan; zero for live ingestion.
    pub rows_planned: u64,
    /// Wall-clock milliseconds since ingestion started.
    pub elapsed_ms: u64,
    /// True once the stream has been sealed.
    pub sealed: bool,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// A malformed message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Cursor over a message body.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        varint::read_u64(self.buf, &mut self.pos).map_err(|e| WireError(e.reason))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        varint::read_i64(self.buf, &mut self.pos).map_err(|e| WireError(e.reason))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.u64()?).map_err(|_| WireError("u32 out of range".into()))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| WireError("truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(WireError(format!("bool byte {n}"))),
        }
    }

    fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or_else(|| WireError("length overflow".into()))?;
        if end > self.buf.len() {
            return Err(WireError("truncated".into()));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u64()? as usize;
        Ok(self.raw(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError("string is not UTF-8".into()))
    }

    fn octets4(&mut self) -> Result<[u8; 4], WireError> {
        Ok(self.raw(4)?.try_into().expect("4 bytes"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    varint::write_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// A value with a deterministic binary form.
pub trait Wire: Sized {
    /// Appends the encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one value at the reader's cursor.
    fn take(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl Wire for u64 {
    fn put(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, *self);
    }
    fn take(r: &mut WireReader<'_>) -> Result<u64, WireError> {
        r.u64()
    }
}

impl Wire for u32 {
    fn put(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, u64::from(*self));
    }
    fn take(r: &mut WireReader<'_>) -> Result<u32, WireError> {
        r.u32()
    }
}

impl Wire for i64 {
    fn put(&self, out: &mut Vec<u8>) {
        varint::write_i64(out, *self);
    }
    fn take(r: &mut WireReader<'_>) -> Result<i64, WireError> {
        r.i64()
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        put_bytes(out, self.as_bytes());
    }
    fn take(r: &mut WireReader<'_>) -> Result<String, WireError> {
        r.string()
    }
}

impl Wire for [u8; 4] {
    fn put(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn take(r: &mut WireReader<'_>) -> Result<[u8; 4], WireError> {
        r.octets4()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn take(r: &mut WireReader<'_>) -> Result<Option<T>, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::take(r)?)),
            n => Err(WireError(format!("option byte {n}"))),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        for v in self {
            v.put(out);
        }
    }
    fn take(r: &mut WireReader<'_>) -> Result<Vec<T>, WireError> {
        let n = r.u64()? as usize;
        // Guard against a hostile count: cap the pre-allocation, let the
        // truncation check catch the lie.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::take(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<(A, B), WireError> {
        Ok((A::take(r)?, B::take(r)?))
    }
}

impl Wire for MetaReply {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(self.version);
        self.country.put(out);
        put_bytes(out, &self.tags);
    }
    fn take(r: &mut WireReader<'_>) -> Result<MetaReply, WireError> {
        Ok(MetaReply { version: r.u8()?, country: r.string()?, tags: r.bytes()? })
    }
}

impl Wire for ConnReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.start.put(out);
        self.end.put(out);
        put_bytes(out, &self.peer);
    }
    fn take(r: &mut WireReader<'_>) -> Result<ConnReply, WireError> {
        Ok(ConnReply { start: r.i64()?, end: r.i64()?, peer: r.bytes()? })
    }
}

impl Wire for KrootReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.timestamp.put(out);
        out.push(self.sent);
        out.push(self.success);
        self.lts_secs.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<KrootReply, WireError> {
        Ok(KrootReply {
            timestamp: r.i64()?,
            sent: r.u8()?,
            success: r.u8()?,
            lts_secs: r.i64()?,
        })
    }
}

impl Wire for UptimeReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.timestamp.put(out);
        self.uptime_secs.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<UptimeReply, WireError> {
        Ok(UptimeReply { timestamp: r.i64()?, uptime_secs: r.u64()? })
    }
}

impl Wire for ProbeRecordsReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.probe.put(out);
        self.meta.put(out);
        self.connections.put(out);
        self.kroot.put(out);
        self.uptime.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<ProbeRecordsReply, WireError> {
        Ok(ProbeRecordsReply {
            probe: r.u32()?,
            meta: <Option<_> as Wire>::take(r)?,
            connections: <Vec<_> as Wire>::take(r)?,
            kroot: <Vec<_> as Wire>::take(r)?,
            uptime: <Vec<_> as Wire>::take(r)?,
        })
    }
}

impl Wire for ChangeReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.gap_start.put(out);
        self.gap_end.put(out);
        self.from.put(out);
        self.to.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<ChangeReply, WireError> {
        Ok(ChangeReply {
            gap_start: r.i64()?,
            gap_end: r.i64()?,
            from: r.octets4()?,
            to: r.octets4()?,
        })
    }
}

impl Wire for SpanReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.addr.put(out);
        self.start.put(out);
        self.end.put(out);
        out.push(u8::from(self.complete));
    }
    fn take(r: &mut WireReader<'_>) -> Result<SpanReply, WireError> {
        Ok(SpanReply { addr: r.octets4()?, start: r.i64()?, end: r.i64()?, complete: r.bool()? })
    }
}

impl Wire for GapReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.start.put(out);
        self.end.put(out);
        out.push(u8::from(self.address_changed));
    }
    fn take(r: &mut WireReader<'_>) -> Result<GapReply, WireError> {
        Ok(GapReply { start: r.i64()?, end: r.i64()?, address_changed: r.bool()? })
    }
}

impl Wire for OutageReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.start.put(out);
        self.end.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<OutageReply, WireError> {
        Ok(OutageReply { start: r.i64()?, end: r.i64()? })
    }
}

impl Wire for RebootReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.boot_time.put(out);
        self.report_time.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<RebootReply, WireError> {
        Ok(RebootReply { boot_time: r.i64()?, report_time: r.i64()? })
    }
}

impl Wire for ProbeSeriesReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.probe.put(out);
        self.meta.put(out);
        self.changes.put(out);
        self.spans.put(out);
        self.gaps.put(out);
        self.outages.put(out);
        self.reboots.put(out);
        out.push(u8::from(self.had_testing_entry));
        self.v6_entries.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<ProbeSeriesReply, WireError> {
        Ok(ProbeSeriesReply {
            probe: r.u32()?,
            meta: <Option<_> as Wire>::take(r)?,
            changes: <Vec<_> as Wire>::take(r)?,
            spans: <Vec<_> as Wire>::take(r)?,
            gaps: <Vec<_> as Wire>::take(r)?,
            outages: <Vec<_> as Wire>::take(r)?,
            reboots: <Vec<_> as Wire>::take(r)?,
            had_testing_entry: r.bool()?,
            v6_entries: r.u64()?,
        })
    }
}

impl Wire for MoverReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.probe.put(out);
        self.changes.put(out);
        self.asn.put(out);
        self.country.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<MoverReply, WireError> {
        Ok(MoverReply {
            probe: r.u32()?,
            changes: r.u64()?,
            asn: r.u32()?,
            country: r.string()?,
        })
    }
}

impl Wire for AsSummaryReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.asn.put(out);
        self.probes.put(out);
        self.connections.put(out);
        self.v6_connections.put(out);
        self.changes.put(out);
        self.online_secs.put(out);
        self.countries.put(out);
        self.top_movers.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<AsSummaryReply, WireError> {
        Ok(AsSummaryReply {
            asn: r.u32()?,
            probes: r.u64()?,
            connections: r.u64()?,
            v6_connections: r.u64()?,
            changes: r.u64()?,
            online_secs: r.u64()?,
            countries: <Vec<_> as Wire>::take(r)?,
            top_movers: <Vec<_> as Wire>::take(r)?,
        })
    }
}

impl Wire for CountrySummaryReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.country.put(out);
        self.probes.put(out);
        self.connections.put(out);
        self.v6_connections.put(out);
        self.changes.put(out);
        self.online_secs.put(out);
        self.asns.put(out);
        self.top_movers.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<CountrySummaryReply, WireError> {
        Ok(CountrySummaryReply {
            country: r.string()?,
            probes: r.u64()?,
            connections: r.u64()?,
            v6_connections: r.u64()?,
            changes: r.u64()?,
            online_secs: r.u64()?,
            asns: <Vec<_> as Wire>::take(r)?,
            top_movers: <Vec<_> as Wire>::take(r)?,
        })
    }
}

impl Wire for TruthChangeReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.time.put(out);
        self.from.put(out);
        self.to.put(out);
        out.push(self.cause);
    }
    fn take(r: &mut WireReader<'_>) -> Result<TruthChangeReply, WireError> {
        Ok(TruthChangeReply {
            time: r.i64()?,
            from: <Option<_> as Wire>::take(r)?,
            to: r.octets4()?,
            cause: r.u8()?,
        })
    }
}

impl Wire for TruthOutageReply {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        self.start.put(out);
        self.duration.put(out);
        out.push(u8::from(self.address_changed));
    }
    fn take(r: &mut WireReader<'_>) -> Result<TruthOutageReply, WireError> {
        Ok(TruthOutageReply {
            kind: r.u8()?,
            start: r.i64()?,
            duration: r.i64()?,
            address_changed: r.bool()?,
        })
    }
}

impl Wire for ProbeTruthReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.probe.put(out);
        self.changes.put(out);
        self.outages.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<ProbeTruthReply, WireError> {
        Ok(ProbeTruthReply { probe: r.u32()?, changes: <Vec<_> as Wire>::take(r)?, outages: <Vec<_> as Wire>::take(r)? })
    }
}

impl Wire for ServerStatsReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.uptime_secs.put(out);
        self.connections_total.put(out);
        self.requests_total.put(out);
        self.requests_by_tag.put(out);
        self.cache_hits.put(out);
        self.cache_misses.put(out);
        self.cache_evictions.put(out);
    }
    fn take(r: &mut WireReader<'_>) -> Result<ServerStatsReply, WireError> {
        Ok(ServerStatsReply {
            uptime_secs: r.u64()?,
            connections_total: r.u64()?,
            requests_total: r.u64()?,
            requests_by_tag: <Vec<_> as Wire>::take(r)?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            cache_evictions: r.u64()?,
        })
    }
}

impl Wire for DaemonSnapshotReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.total.put(out);
        self.ipv6_only.put(out);
        self.dual_stack.put(out);
        self.tagged.put(out);
        self.multihomed.put(out);
        self.testing_only.put(out);
        self.never_changed.put(out);
        self.analyzable_geo.put(out);
        self.multi_as.put(out);
        self.analyzable_as.put(out);
        self.changes.put(out);
        self.gaps.put(out);
        self.network_outages.put(out);
        self.reboots.put(out);
        self.frontier_secs.put(out);
        self.probes_tracked.put(out);
        out.push(u8::from(self.sealed));
    }
    fn take(r: &mut WireReader<'_>) -> Result<DaemonSnapshotReply, WireError> {
        Ok(DaemonSnapshotReply {
            total: r.u64()?,
            ipv6_only: r.u64()?,
            dual_stack: r.u64()?,
            tagged: r.u64()?,
            multihomed: r.u64()?,
            testing_only: r.u64()?,
            never_changed: r.u64()?,
            analyzable_geo: r.u64()?,
            multi_as: r.u64()?,
            analyzable_as: r.u64()?,
            changes: r.u64()?,
            gaps: r.u64()?,
            network_outages: r.u64()?,
            reboots: r.u64()?,
            frontier_secs: r.i64()?,
            probes_tracked: r.u64()?,
            sealed: r.bool()?,
        })
    }
}

impl Wire for DaemonProbeReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.probe.put(out);
        out.push(self.class);
        out.push(u8::from(self.multi_as));
        self.entries.put(out);
        self.changes.put(out);
        self.gaps.put(out);
        self.network_outages.put(out);
        self.reboots.put(out);
        out.push(u8::from(self.had_testing));
    }
    fn take(r: &mut WireReader<'_>) -> Result<DaemonProbeReply, WireError> {
        Ok(DaemonProbeReply {
            probe: r.u32()?,
            class: r.u8()?,
            multi_as: r.bool()?,
            entries: r.u64()?,
            changes: r.u64()?,
            gaps: r.u64()?,
            network_outages: r.u64()?,
            reboots: r.u64()?,
            had_testing: r.bool()?,
        })
    }
}

impl Wire for IngestStatsReply {
    fn put(&self, out: &mut Vec<u8>) {
        self.meta_rows.put(out);
        self.connection_rows.put(out);
        self.kroot_rows.put(out);
        self.uptime_rows.put(out);
        self.unknown_probe_rows.put(out);
        self.frontier_secs.put(out);
        self.rows_ingested.put(out);
        self.rows_planned.put(out);
        self.elapsed_ms.put(out);
        out.push(u8::from(self.sealed));
    }
    fn take(r: &mut WireReader<'_>) -> Result<IngestStatsReply, WireError> {
        Ok(IngestStatsReply {
            meta_rows: r.u64()?,
            connection_rows: r.u64()?,
            kroot_rows: r.u64()?,
            uptime_rows: r.u64()?,
            unknown_probe_rows: r.u64()?,
            frontier_secs: r.i64()?,
            rows_ingested: r.u64()?,
            rows_planned: r.u64()?,
            elapsed_ms: r.u64()?,
            sealed: r.bool()?,
        })
    }
}

impl Wire for Request {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(0),
            Request::ProbeRecords(p) => {
                out.push(1);
                p.0.put(out);
            }
            Request::ProbeSeries(p) => {
                out.push(2);
                p.0.put(out);
            }
            Request::AsSummary(a) => {
                out.push(3);
                a.0.put(out);
            }
            Request::CountrySummary(cc) => {
                out.push(4);
                cc.put(out);
            }
            Request::TopMovers(n) => {
                out.push(5);
                n.put(out);
            }
            Request::ProbeTruth(p) => {
                out.push(6);
                p.0.put(out);
            }
            Request::ServerStats => out.push(7),
            Request::DaemonSnapshot => out.push(8),
            Request::DaemonProbe(p) => {
                out.push(9);
                p.0.put(out);
            }
            Request::IngestStats => out.push(10),
        }
    }
    fn take(r: &mut WireReader<'_>) -> Result<Request, WireError> {
        Ok(match r.u8()? {
            0 => Request::Ping,
            1 => Request::ProbeRecords(ProbeId(r.u32()?)),
            2 => Request::ProbeSeries(ProbeId(r.u32()?)),
            3 => Request::AsSummary(Asn(r.u32()?)),
            4 => Request::CountrySummary(r.string()?),
            5 => Request::TopMovers(r.u32()?),
            6 => Request::ProbeTruth(ProbeId(r.u32()?)),
            7 => Request::ServerStats,
            8 => Request::DaemonSnapshot,
            9 => Request::DaemonProbe(ProbeId(r.u32()?)),
            10 => Request::IngestStats,
            n => return Err(WireError(format!("unknown request tag {n}"))),
        })
    }
}

impl Wire for Response {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Response::Pong => out.push(0),
            Response::ProbeRecords(v) => {
                out.push(1);
                v.put(out);
            }
            Response::ProbeSeries(v) => {
                out.push(2);
                v.put(out);
            }
            Response::AsSummary(v) => {
                out.push(3);
                v.put(out);
            }
            Response::CountrySummary(v) => {
                out.push(4);
                v.put(out);
            }
            Response::TopMovers(v) => {
                out.push(5);
                v.put(out);
            }
            Response::ProbeTruth(v) => {
                out.push(6);
                v.put(out);
            }
            Response::Error(msg) => {
                out.push(7);
                msg.put(out);
            }
            Response::ServerStats(v) => {
                out.push(8);
                v.put(out);
            }
            Response::DaemonSnapshot(v) => {
                out.push(9);
                v.put(out);
            }
            Response::DaemonProbe(v) => {
                out.push(10);
                v.put(out);
            }
            Response::IngestStats(v) => {
                out.push(11);
                v.put(out);
            }
        }
    }
    fn take(r: &mut WireReader<'_>) -> Result<Response, WireError> {
        Ok(match r.u8()? {
            0 => Response::Pong,
            1 => Response::ProbeRecords(Wire::take(r)?),
            2 => Response::ProbeSeries(Wire::take(r)?),
            3 => Response::AsSummary(Wire::take(r)?),
            4 => Response::CountrySummary(Wire::take(r)?),
            5 => Response::TopMovers(Wire::take(r)?),
            6 => Response::ProbeTruth(Wire::take(r)?),
            7 => Response::Error(r.string()?),
            8 => Response::ServerStats(Wire::take(r)?),
            9 => Response::DaemonSnapshot(Wire::take(r)?),
            10 => Response::DaemonProbe(Wire::take(r)?),
            11 => Response::IngestStats(Wire::take(r)?),
            n => return Err(WireError(format!("unknown response tag {n}"))),
        })
    }
}

/// Encodes any wire value as a standalone message body.
pub fn to_bytes<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.put(&mut out);
    out
}

/// Decodes a standalone message body; trailing bytes are an error.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let v = T::take(&mut r)?;
    r.finish()?;
    Ok(v)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame. `Ok(None)` is a clean EOF before the first length
/// byte; anything else short is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame length"));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, v);
        // Determinism: re-encoding yields the same bytes.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Ping,
            Request::ProbeRecords(ProbeId(0)),
            Request::ProbeSeries(ProbeId(u32::MAX)),
            Request::AsSummary(Asn(64512)),
            Request::CountrySummary("DE".into()),
            Request::TopMovers(25),
            Request::ProbeTruth(ProbeId(7)),
            Request::ServerStats,
            Request::DaemonSnapshot,
            Request::DaemonProbe(ProbeId(31)),
            Request::IngestStats,
        ] {
            roundtrip(&req);
        }
    }

    #[test]
    fn daemon_responses_roundtrip() {
        roundtrip(&Response::ServerStats(ServerStatsReply {
            uptime_secs: 90,
            connections_total: 4,
            requests_total: 1000,
            requests_by_tag: vec![(0, 1), (2, 998), (7, 1)],
            cache_hits: 600,
            cache_misses: 400,
            cache_evictions: 17,
        }));
        roundtrip(&Response::DaemonSnapshot(DaemonSnapshotReply {
            total: 100,
            ipv6_only: 3,
            dual_stack: 5,
            tagged: 2,
            multihomed: 1,
            testing_only: 4,
            never_changed: 40,
            analyzable_geo: 45,
            multi_as: 5,
            analyzable_as: 40,
            changes: 1234,
            gaps: 2345,
            network_outages: 17,
            reboots: 9,
            frontier_secs: -1,
            probes_tracked: 100,
            sealed: false,
        }));
        roundtrip(&Response::DaemonProbe(None));
        roundtrip(&Response::DaemonProbe(Some(DaemonProbeReply {
            probe: 31,
            class: 6,
            multi_as: true,
            entries: 50,
            changes: 7,
            gaps: 8,
            network_outages: 2,
            reboots: 1,
            had_testing: false,
        })));
        roundtrip(&Response::IngestStats(IngestStatsReply {
            meta_rows: 100,
            connection_rows: 5000,
            kroot_rows: 40000,
            uptime_rows: 900,
            unknown_probe_rows: 3,
            frontier_secs: i64::MIN,
            rows_ingested: 45900,
            rows_planned: 45903,
            elapsed_ms: 1500,
            sealed: true,
        }));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip(&Response::Pong);
        roundtrip(&Response::Error("segment 3 corrupt".into()));
        roundtrip(&Response::AsSummary(None));
        roundtrip(&Response::ProbeRecords(ProbeRecordsReply {
            probe: 9,
            meta: Some(MetaReply { version: 3, country: "JP".into(), tags: vec![3, 7] }),
            connections: vec![
                ConnReply { start: -5, end: 100, peer: vec![10, 0, 0, 1] },
                ConnReply { start: 50, end: 60, peer: vec![0; 16] },
            ],
            kroot: vec![KrootReply { timestamp: 1, sent: 3, success: 0, lts_secs: 900 }],
            uptime: vec![UptimeReply { timestamp: 2, uptime_secs: 3600 }],
        }));
        roundtrip(&Response::ProbeSeries(ProbeSeriesReply {
            probe: 4,
            meta: None,
            changes: vec![ChangeReply {
                gap_start: 10,
                gap_end: 20,
                from: [10, 0, 0, 1],
                to: [10, 0, 0, 2],
            }],
            spans: vec![SpanReply { addr: [10, 0, 0, 1], start: 0, end: 10, complete: false }],
            gaps: vec![GapReply { start: 10, end: 20, address_changed: true }],
            outages: vec![OutageReply { start: 5, end: 6 }],
            reboots: vec![RebootReply { boot_time: 1, report_time: 2 }],
            had_testing_entry: true,
            v6_entries: 3,
        }));
        roundtrip(&Response::TopMovers(vec![MoverReply {
            probe: 1,
            changes: 44,
            asn: 64512,
            country: "BR".into(),
        }]));
        roundtrip(&Response::ProbeTruth(Some(ProbeTruthReply {
            probe: 2,
            changes: vec![TruthChangeReply {
                time: 77,
                from: None,
                to: [192, 0, 2, 1],
                cause: 5,
            }],
            outages: vec![TruthOutageReply {
                kind: 1,
                start: 9,
                duration: 1200,
                address_changed: false,
            }],
        })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&Request::Ping);
        bytes.push(0);
        assert!(from_bytes::<Request>(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(from_bytes::<Request>(&[200]).is_err());
        assert!(from_bytes::<Response>(&[200]).is_err());
    }

    #[test]
    fn frames_roundtrip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
