//! The query engine: open once, answer from any thread.
//!
//! [`QueryEngine::open_dir`] does all per-file work up front — reads
//! `dataset.store` into memory, parses the footer into per-table segment
//! maps, streams the connection table once through [`StatsBuilder`] to
//! build the probe→AS/country indexes, and loads `truth.store` plus the
//! `ip2as/` snapshots when present. After that every query runs through
//! `&self`: segment decodes go through the sharded LRU
//! ([`crate::cache::ShardedLru`]) keyed by the segment's footer position,
//! so a hot segment is decoded once and shared as an `Arc` by every
//! thread that touches it.
//!
//! Responses are pure functions of the file contents. Nothing in the
//! answer path reads the cache state, the thread count, or any clock —
//! which is the whole determinism argument: cold, warm, and thrashing
//! caches produce byte-identical responses, pinned by the crate tests.
//!
//! The reply builders ([`records_reply`], [`series_reply`],
//! [`truth_reply`]) are free functions shared with
//! [`crate::local::LocalAnswerer`], so the engine and the batch-loaded
//! oracle cannot drift apart structurally — any divergence is a real
//! indexing or caching bug, exactly what the diff tests are for.

use crate::cache::{CacheConfig, CacheStats, ShardedLru};
use crate::index::{StatsBuilder, StatsIndex};
use crate::proto::{
    ChangeReply, ConnReply, GapReply, KrootReply, MetaReply, OutageReply, ProbeRecordsReply,
    ProbeSeriesReply, ProbeTruthReply, RebootReply, Request, Response, SpanReply,
    TruthChangeReply, TruthOutageReply, UptimeReply,
};
use dynaddr_atlas::truth::{ChangeCause, TruthChange, TruthOutage};
use dynaddr_atlas::{
    logs::{ConnectionLogEntry, KrootPingRecord, PeerAddr, ProbeMeta, SosUptimeRecord},
    store as atlas_store, GroundTruth, TruthOutageKind,
};
use dynaddr_core::changes::{extract_events, strip_testing_entries};
use dynaddr_core::outages::{detect_network_outages, detect_reboots};
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_store::{decode_segment_at, ColumnarRecord, FileReader, ReadMode, SegmentInfo, StoreError};
use dynaddr_types::{Asn, ProbeId, ProbeTag, ProbeVersion};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Tuning knobs for [`QueryEngine`] construction.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Segment-cache geometry (shards, byte budget).
    pub cache: CacheConfig,
}

/// Failure opening an engine.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem error, with the path that failed.
    Io(String, std::io::Error),
    /// Malformed store file.
    Store(StoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(path, e) => write!(f, "{path}: {e}"),
            EngineError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> EngineError {
        EngineError::Store(e)
    }
}

/// One decoded segment, the cache value type. The variant always matches
/// the segment's table; a mismatch would mean a cache-key collision and
/// panics in tests via [`CachedTable::rows`].
pub(crate) enum Decoded {
    /// Meta-table rows.
    Meta(Vec<ProbeMeta>),
    /// Connection-table rows.
    Connections(Vec<ConnectionLogEntry>),
    /// K-root-table rows.
    Kroot(Vec<KrootPingRecord>),
    /// Uptime-table rows.
    Uptime(Vec<SosUptimeRecord>),
}

impl Decoded {
    /// Approximate resident bytes, the cache accounting unit.
    fn cost(&self) -> usize {
        const BASE: usize = 64;
        match self {
            Decoded::Meta(v) => {
                BASE + v.iter()
                    .map(|m| std::mem::size_of::<ProbeMeta>() + m.tags.len())
                    .sum::<usize>()
            }
            Decoded::Connections(v) => {
                BASE + v.len() * std::mem::size_of::<ConnectionLogEntry>()
            }
            Decoded::Kroot(v) => BASE + v.len() * std::mem::size_of::<KrootPingRecord>(),
            Decoded::Uptime(v) => BASE + v.len() * std::mem::size_of::<SosUptimeRecord>(),
        }
    }
}

/// Glue between a row type and the type-erased cache value.
trait CachedTable: ColumnarRecord + Clone {
    fn wrap(rows: Vec<Self>) -> Decoded;
    fn rows(d: &Decoded) -> &[Self];
}

macro_rules! cached_table {
    ($ty:ty, $variant:ident) => {
        impl CachedTable for $ty {
            fn wrap(rows: Vec<Self>) -> Decoded {
                Decoded::$variant(rows)
            }
            fn rows(d: &Decoded) -> &[Self] {
                match d {
                    Decoded::$variant(v) => v,
                    _ => unreachable!("cache key collision across tables"),
                }
            }
        }
    };
}

cached_table!(ProbeMeta, Meta);
cached_table!(ConnectionLogEntry, Connections);
cached_table!(KrootPingRecord, Kroot);
cached_table!(SosUptimeRecord, Uptime);

/// One dataset table's footer slice: `(cache key = footer position,
/// per-table ordinal, segment info)` in file order.
struct TableMap {
    segs: Vec<(usize, usize, SegmentInfo)>,
    sorted: bool,
}

/// Ground truth regrouped per probe for O(log n) serving.
pub struct TruthIndex {
    by_probe: BTreeMap<u32, ProbeTruthReply>,
}

impl TruthIndex {
    /// Groups a loaded ground truth by probe.
    pub fn new(truth: &GroundTruth) -> TruthIndex {
        let mut by_probe: BTreeMap<u32, ProbeTruthReply> = BTreeMap::new();
        for c in &truth.changes {
            let e = by_probe.entry(c.probe.0).or_default();
            e.probe = c.probe.0;
            e.changes.push(truth_change_reply(c));
        }
        for o in &truth.outages {
            let e = by_probe.entry(o.probe.0).or_default();
            e.probe = o.probe.0;
            e.outages.push(truth_outage_reply(o));
        }
        TruthIndex { by_probe }
    }

    /// One probe's truth; `None` for a probe with no recorded events.
    pub fn probe(&self, probe: u32) -> Option<&ProbeTruthReply> {
        self.by_probe.get(&probe)
    }
}

/// A store file opened for concurrent query serving. See the module docs
/// for the open/serve split; all query methods take `&self` and are safe
/// to call from any number of threads.
pub struct QueryEngine {
    bytes: Vec<u8>,
    tables: [TableMap; 4],
    cache: ShardedLru<Decoded>,
    stats: StatsIndex,
    truth: Option<TruthIndex>,
}

impl QueryEngine {
    /// Opens `dir/dataset.store` plus, when present, `dir/truth.store`
    /// and the `dir/ip2as/` snapshots (absent snapshots mean AS lookups
    /// resolve to 0, same as unannounced space).
    pub fn open_dir(dir: &Path, opts: &EngineOptions) -> Result<QueryEngine, EngineError> {
        let store_path = dir.join("dataset.store");
        let bytes = std::fs::read(&store_path)
            .map_err(|e| EngineError::Io(store_path.display().to_string(), e))?;
        let ip2as = dir.join("ip2as");
        let snaps = if ip2as.is_dir() {
            MonthlySnapshots::load_dir(&ip2as)
                .map_err(|e| EngineError::Io(ip2as.display().to_string(), e))?
        } else {
            MonthlySnapshots::uniform(dynaddr_ip2as::RouteTable::new())
        };
        let truth_path = dir.join("truth.store");
        let truth = if truth_path.is_file() {
            let truth_bytes = std::fs::read(&truth_path)
                .map_err(|e| EngineError::Io(truth_path.display().to_string(), e))?;
            let (truth, _) = atlas_store::truth_from_bytes(&truth_bytes, ReadMode::Strict)?;
            Some(truth)
        } else {
            None
        };
        QueryEngine::from_parts(bytes, &snaps, truth.as_ref(), opts)
    }

    /// Builds an engine from in-memory parts. `bytes` is a dataset store
    /// file; the footer is parsed and the secondary indexes built here —
    /// the single pass the module docs describe.
    pub fn from_parts(
        bytes: Vec<u8>,
        snaps: &MonthlySnapshots,
        truth: Option<&GroundTruth>,
        opts: &EngineOptions,
    ) -> Result<QueryEngine, EngineError> {
        let mut tables: [TableMap; 4] =
            std::array::from_fn(|_| TableMap { segs: Vec::new(), sorted: true });
        {
            let reader = FileReader::open(&bytes)?;
            for (pos, info) in reader.segments().iter().enumerate() {
                let Some(slot) =
                    (1..=4).contains(&info.table).then(|| (info.table - 1) as usize)
                else {
                    continue;
                };
                let t = &mut tables[slot];
                if let Some(&(_, _, prev)) = t.segs.last() {
                    if prev.key_lo > info.key_lo || prev.key_hi > info.key_hi {
                        t.sorted = false;
                    }
                }
                let ordinal = t.segs.len();
                t.segs.push((pos, ordinal, *info));
            }
        }
        // One streaming pass for the secondary indexes: decode the meta
        // and connection tables segment by segment (parallel decode,
        // sequential fold — the fold order is file order regardless of
        // worker count, so the index is thread-count invariant).
        let mut builder = StatsBuilder::new(snaps);
        let meta_slot = (ProbeMeta::TABLE_ID - 1) as usize;
        let conn_slot = (ConnectionLogEntry::TABLE_ID - 1) as usize;
        for batch in dynaddr_exec::par_map(&tables[meta_slot].segs, |&(_, ordinal, info)| {
            decode_segment_at::<ProbeMeta>(&bytes, ordinal, info)
        }) {
            builder.add_meta(&batch?);
        }
        for batch in dynaddr_exec::par_map(&tables[conn_slot].segs, |&(_, ordinal, info)| {
            decode_segment_at::<ConnectionLogEntry>(&bytes, ordinal, info)
        }) {
            builder.add_connections(&batch?);
        }
        Ok(QueryEngine {
            bytes,
            tables,
            cache: ShardedLru::new(opts.cache.clone()),
            stats: builder.finish(),
            truth: truth.map(TruthIndex::new),
        })
    }

    /// The secondary indexes (also the workload operand universe).
    pub fn stats(&self) -> &StatsIndex {
        &self.stats
    }

    /// Whether a ground truth is loaded ([`Request::ProbeTruth`] answers
    /// `None` otherwise).
    pub fn truth_available(&self) -> bool {
        self.truth.is_some()
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Publishes cache counter deltas into the obs metrics registry.
    pub fn publish_metrics(&self) {
        self.cache.publish_obs();
    }

    /// Empties the cache (counters keep accumulating). Answers are
    /// cache-state independent; this exists for cold/warm testing.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// One table's rows for one key, through the cache.
    fn rows_for<R: CachedTable>(&self, key: u32) -> Result<Vec<R>, StoreError> {
        let t = &self.tables[(R::TABLE_ID - 1) as usize];
        let candidates = if t.sorted {
            &t.segs[t.segs.partition_point(|&(_, _, info)| info.key_hi < key)..]
        } else {
            &t.segs[..]
        };
        let mut rows = Vec::new();
        for &(pos, ordinal, info) in candidates {
            if t.sorted && info.key_lo > key {
                break;
            }
            if !(info.key_lo..=info.key_hi).contains(&key) {
                continue;
            }
            let decoded = self.cache.get_or_try_insert(pos, || {
                let batch = decode_segment_at::<R>(&self.bytes, ordinal, info)?;
                let wrapped = R::wrap(batch);
                let cost = wrapped.cost();
                Ok::<_, StoreError>((wrapped, cost))
            })?;
            rows.extend(R::rows(&decoded).iter().filter(|r| r.key() == key).cloned());
        }
        Ok(rows)
    }

    /// Raw rows for one probe (the [`Request::ProbeRecords`] payload).
    pub fn records(&self, probe: ProbeId) -> Result<ProbeRecordsReply, StoreError> {
        let meta = self.rows_for::<ProbeMeta>(probe.0)?.into_iter().next();
        let connections = self.rows_for::<ConnectionLogEntry>(probe.0)?;
        let kroot = self.rows_for::<KrootPingRecord>(probe.0)?;
        let uptime = self.rows_for::<SosUptimeRecord>(probe.0)?;
        Ok(records_reply(probe.0, meta.as_ref(), &connections, &kroot, &uptime))
    }

    /// Decoded series for one probe (the [`Request::ProbeSeries`] payload).
    pub fn series(&self, probe: ProbeId) -> Result<ProbeSeriesReply, StoreError> {
        let meta = self.rows_for::<ProbeMeta>(probe.0)?.into_iter().next();
        let connections = self.rows_for::<ConnectionLogEntry>(probe.0)?;
        let kroot = self.rows_for::<KrootPingRecord>(probe.0)?;
        let uptime = self.rows_for::<SosUptimeRecord>(probe.0)?;
        Ok(series_reply(probe.0, meta.as_ref(), &connections, &kroot, &uptime))
    }

    /// Answers one request. Store-level failures become
    /// [`Response::Error`] so one corrupt segment cannot kill a serving
    /// connection.
    pub fn query(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::ProbeRecords(p) => match self.records(*p) {
                Ok(r) => Response::ProbeRecords(r),
                Err(e) => Response::Error(e.to_string()),
            },
            Request::ProbeSeries(p) => match self.series(*p) {
                Ok(r) => Response::ProbeSeries(r),
                Err(e) => Response::Error(e.to_string()),
            },
            Request::AsSummary(Asn(a)) => Response::AsSummary(self.stats.as_summary(*a)),
            Request::CountrySummary(cc) => {
                Response::CountrySummary(self.stats.country_summary(cc))
            }
            Request::TopMovers(n) => Response::TopMovers(self.stats.top_movers(*n)),
            Request::ProbeTruth(p) => Response::ProbeTruth(
                self.truth.as_ref().and_then(|t| t.probe(p.0)).cloned(),
            ),
            // The server front-end answers this itself; reaching the
            // engine means the caller went around the server.
            Request::ServerStats => {
                Response::Error("ServerStats is answered by the serving front-end".into())
            }
            Request::DaemonSnapshot | Request::DaemonProbe(_) | Request::IngestStats => {
                Response::Error("daemon-only request; this is a batch query backend".into())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared reply builders (engine and LocalAnswerer)
// ---------------------------------------------------------------------------

// The wire enum codes are the store format's fixed numbering
// (crates/atlas/src/store.rs); restated here because the store keeps its
// maps private and the wire must stay stable independently.

fn version_code(v: ProbeVersion) -> u8 {
    match v {
        ProbeVersion::V1 => 1,
        ProbeVersion::V2 => 2,
        ProbeVersion::V3 => 3,
    }
}

fn tag_code(t: ProbeTag) -> u8 {
    match t {
        ProbeTag::Multihomed => 0,
        ProbeTag::Datacentre => 1,
        ProbeTag::Core => 2,
        ProbeTag::Dsl => 3,
        ProbeTag::Cable => 4,
        ProbeTag::Fibre => 5,
        ProbeTag::Nat => 6,
        ProbeTag::Home => 7,
    }
}

fn cause_code(c: ChangeCause) -> u8 {
    match c {
        ChangeCause::PeriodicCap => 0,
        ChangeCause::PoolRotation => 1,
        ChangeCause::ScheduledReconnect => 2,
        ChangeCause::NetworkOutage => 3,
        ChangeCause::PowerOutage => 4,
        ChangeCause::AdminRenumber => 5,
        ChangeCause::Moved => 6,
    }
}

fn outage_kind_code(k: TruthOutageKind) -> u8 {
    match k {
        TruthOutageKind::Network => 0,
        TruthOutageKind::Power => 1,
        TruthOutageKind::CpeOnlyPower => 2,
        TruthOutageKind::ProbeOnlyReboot => 3,
    }
}

fn meta_reply(m: &ProbeMeta) -> MetaReply {
    MetaReply {
        version: version_code(m.version),
        country: m.country.to_string(),
        tags: m.tags.iter().map(|&t| tag_code(t)).collect(),
    }
}

fn peer_bytes(p: PeerAddr) -> Vec<u8> {
    match p {
        PeerAddr::V4(a) => a.octets().to_vec(),
        PeerAddr::V6(a) => a.octets().to_vec(),
    }
}

fn truth_change_reply(c: &TruthChange) -> TruthChangeReply {
    TruthChangeReply {
        time: c.time.0,
        from: c.from.map(|a| a.octets()),
        to: c.to.octets(),
        cause: cause_code(c.cause),
    }
}

fn truth_outage_reply(o: &TruthOutage) -> TruthOutageReply {
    TruthOutageReply {
        kind: outage_kind_code(o.kind),
        start: o.start.0,
        duration: o.duration.0,
        address_changed: o.address_changed,
    }
}

/// Builds a [`Request::ProbeRecords`] payload from raw rows.
pub fn records_reply(
    probe: u32,
    meta: Option<&ProbeMeta>,
    connections: &[ConnectionLogEntry],
    kroot: &[KrootPingRecord],
    uptime: &[SosUptimeRecord],
) -> ProbeRecordsReply {
    ProbeRecordsReply {
        probe,
        meta: meta.map(meta_reply),
        connections: connections
            .iter()
            .map(|c| ConnReply { start: c.start.0, end: c.end.0, peer: peer_bytes(c.peer) })
            .collect(),
        kroot: kroot
            .iter()
            .map(|k| KrootReply {
                timestamp: k.timestamp.0,
                sent: k.sent,
                success: k.success,
                lts_secs: k.lts_secs,
            })
            .collect(),
        uptime: uptime
            .iter()
            .map(|u| UptimeReply { timestamp: u.timestamp.0, uptime_secs: u.uptime_secs })
            .collect(),
    }
}

/// Builds a [`Request::ProbeSeries`] payload from raw rows: v4-only event
/// extraction after testing-entry stripping (the paper pipeline's §3.1
/// treatment), outages from k-root, reboots from uptime.
pub fn series_reply(
    probe: u32,
    meta: Option<&ProbeMeta>,
    connections: &[ConnectionLogEntry],
    kroot: &[KrootPingRecord],
    uptime: &[SosUptimeRecord],
) -> ProbeSeriesReply {
    let mut v4: Vec<ConnectionLogEntry> =
        connections.iter().filter(|c| c.peer.v4().is_some()).cloned().collect();
    let v6_entries = (connections.len() - v4.len()) as u64;
    let had_testing_entry = strip_testing_entries(&mut v4);
    let events = extract_events(&v4);
    ProbeSeriesReply {
        probe,
        meta: meta.map(meta_reply),
        changes: events
            .changes
            .iter()
            .map(|c| ChangeReply {
                gap_start: c.gap_start.0,
                gap_end: c.gap_end.0,
                from: c.from.octets(),
                to: c.to.octets(),
            })
            .collect(),
        spans: events
            .spans
            .iter()
            .map(|s| SpanReply {
                addr: s.addr.octets(),
                start: s.start.0,
                end: s.end.0,
                complete: s.complete,
            })
            .collect(),
        gaps: events
            .gaps
            .iter()
            .map(|g| GapReply { start: g.start.0, end: g.end.0, address_changed: g.address_changed })
            .collect(),
        outages: detect_network_outages(kroot)
            .iter()
            .map(|o| OutageReply { start: o.start.0, end: o.end.0 })
            .collect(),
        reboots: detect_reboots(uptime)
            .iter()
            .map(|r| RebootReply { boot_time: r.boot_time.0, report_time: r.report_time.0 })
            .collect(),
        had_testing_entry,
        v6_entries,
    }
}

/// Builds a [`Request::ProbeTruth`] payload from raw truth rows (assumed
/// already filtered to the probe, in time order).
pub fn truth_reply(
    probe: u32,
    changes: &[TruthChange],
    outages: &[TruthOutage],
) -> ProbeTruthReply {
    ProbeTruthReply {
        probe,
        changes: changes.iter().map(truth_change_reply).collect(),
        outages: outages.iter().map(truth_outage_reply).collect(),
    }
}

/// Shared handle alias used by the server layer.
pub type SharedEngine = Arc<QueryEngine>;
