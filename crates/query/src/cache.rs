//! Sharded LRU cache of decoded segments.
//!
//! Keys are footer positions (segment ordinals), values are `Arc`s of
//! whatever the caller decodes — the engine stores [`crate::engine::Decoded`]
//! row vectors. The key space is spread over a power-of-two number of
//! shards by a splitmix hash, each shard behind its own mutex, so readers
//! on different segments never contend. Each shard holds its slice of the
//! byte budget and evicts least-recently-used entries when an insert
//! pushes it over — except the entry just inserted, which always survives
//! long enough to be returned (a segment larger than a whole shard budget
//! is still served, it just won't keep neighbours).
//!
//! The cache only ever affects *when* a segment is decoded, never *what*
//! the decode produces: a fill is a pure function of the file bytes, and a
//! racing fill on two threads yields the same rows, so query responses are
//! byte-identical at any cache state.
//!
//! Hit/miss/eviction counts accumulate in local atomics on the hot path
//! (one shared-registry lock per lookup would serialize exactly the
//! workload this cache exists to parallelize) and are published to the
//! `dynaddr-obs` registry in deltas via [`ShardedLru::publish_obs`]:
//! `query.cache.hits` / `query.cache.misses` / `query.cache.evictions`
//! counters and the `query.cache.bytes` gauge.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache geometry: shard count (rounded up to a power of two) and the
/// total decoded-byte budget split evenly across shards.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of shards; rounded up to the next power of two, min 1.
    pub shards: usize,
    /// Total budget in decoded bytes across all shards.
    pub budget_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig { shards: 16, budget_bytes: 256 << 20 }
    }
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Decoded bytes currently resident.
    pub bytes: u64,
}

impl CacheStats {
    /// hits / (hits + misses); 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: Arc<V>,
    cost: usize,
    stamp: u64,
}

struct Shard<V> {
    map: HashMap<usize, Entry<V>>,
    /// LRU order: recency stamp → key. Stamps are unique per shard.
    order: BTreeMap<u64, usize>,
    clock: u64,
    bytes: usize,
}

impl<V> Shard<V> {
    fn new() -> Shard<V> {
        Shard { map: HashMap::new(), order: BTreeMap::new(), clock: 0, bytes: 0 }
    }

    /// Moves `key`'s entry to most-recently-used and returns its value.
    fn touch(&mut self, key: usize) -> Option<Arc<V>> {
        let old_stamp = self.map.get(&key)?.stamp;
        self.order.remove(&old_stamp);
        self.clock += 1;
        let stamp = self.clock;
        self.order.insert(stamp, key);
        let e = self.map.get_mut(&key).expect("entry present");
        e.stamp = stamp;
        Some(e.value.clone())
    }
}

/// The sharded LRU. See the module docs for the contract.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    mask: usize,
    budget_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    // Last values published to the obs registry (counters are cumulative
    // there, so only deltas are added).
    published_hits: AtomicU64,
    published_misses: AtomicU64,
    published_evictions: AtomicU64,
}

impl<V> ShardedLru<V> {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> ShardedLru<V> {
        let shards = cfg.shards.max(1).next_power_of_two();
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            mask: shards - 1,
            budget_per_shard: cfg.budget_bytes / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            published_hits: AtomicU64::new(0),
            published_misses: AtomicU64::new(0),
            published_evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: usize) -> &Mutex<Shard<V>> {
        // Sequential segment ordinals must spread over shards, not stripe
        // into one; splitmix is the same mixer the workload generator uses.
        &self.shards[(crate::workload::splitmix64(key as u64) as usize) & self.mask]
    }

    /// Returns `key`'s entry, filling it with `fill` on miss. `fill`
    /// returns the value and its byte cost; it runs outside the shard lock
    /// so a slow decode doesn't serialize the shard, and if two threads
    /// race the same key the first insert wins (both decodes are pure, so
    /// both values are identical).
    pub fn get_or_try_insert<E>(
        &self,
        key: usize,
        fill: impl FnOnce() -> Result<(V, usize), E>,
    ) -> Result<Arc<V>, E> {
        let shard = self.shard_of(key);
        if let Some(v) = shard.lock().expect("cache shard poisoned").touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (value, cost) = fill()?;
        let value = Arc::new(value);
        let mut g = shard.lock().expect("cache shard poisoned");
        if let Some(v) = g.touch(key) {
            // Lost the race: keep the resident entry so both callers see
            // the same Arc.
            return Ok(v);
        }
        g.clock += 1;
        let stamp = g.clock;
        g.map.insert(key, Entry { value: value.clone(), cost, stamp });
        g.order.insert(stamp, key);
        g.bytes += cost;
        while g.bytes > self.budget_per_shard && g.map.len() > 1 {
            let (&oldest, &victim) = g.order.iter().next().expect("order non-empty");
            if victim == key {
                break;
            }
            g.order.remove(&oldest);
            let dropped = g.map.remove(&victim).expect("victim resident");
            g.bytes -= dropped.cost;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(value)
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut g = shard.lock().expect("cache shard poisoned");
            g.map.clear();
            g.order.clear();
            g.bytes = 0;
        }
    }

    /// Snapshot of the counters and residency.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let g = shard.lock().expect("cache shard poisoned");
            entries += g.map.len() as u64;
            bytes += g.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Publishes counter deltas since the last publish into the obs
    /// registry (`query.cache.*`) and sets the residency gauge. Callers
    /// batch this (per connection, per benchmark run) to keep registry
    /// locking off the per-lookup path.
    pub fn publish_obs(&self) {
        let stats = self.stats();
        for (counter, published, name) in [
            (stats.hits, &self.published_hits, "query.cache.hits"),
            (stats.misses, &self.published_misses, "query.cache.misses"),
            (stats.evictions, &self.published_evictions, "query.cache.evictions"),
        ] {
            let prev = published.swap(counter, Ordering::Relaxed);
            if counter > prev {
                dynaddr_obs::counter_add(name, counter - prev);
            }
        }
        dynaddr_obs::gauge_set("query.cache.bytes", stats.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(v: u32, cost: usize) -> impl FnOnce() -> Result<(u32, usize), ()> {
        move || Ok((v, cost))
    }

    #[test]
    fn hit_after_miss_returns_same_value() {
        let c: ShardedLru<u32> = ShardedLru::new(CacheConfig { shards: 4, budget_bytes: 1024 });
        let a = c.get_or_try_insert(7, fill(70, 10)).unwrap();
        let b = c.get_or_try_insert(7, fill(999, 10)).unwrap();
        assert_eq!(*a, 70);
        assert_eq!(*b, 70, "second lookup must hit, not re-fill");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 10));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // One shard so the eviction order is fully observable.
        let c: ShardedLru<u32> = ShardedLru::new(CacheConfig { shards: 1, budget_bytes: 30 });
        c.get_or_try_insert(1, fill(1, 10)).unwrap();
        c.get_or_try_insert(2, fill(2, 10)).unwrap();
        c.get_or_try_insert(3, fill(3, 10)).unwrap();
        // Touch 1 so 2 becomes the LRU, then overflow.
        c.get_or_try_insert(1, fill(0, 10)).unwrap();
        c.get_or_try_insert(4, fill(4, 10)).unwrap();
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes, 30);
        // 2 was evicted; 1, 3, 4 are resident.
        assert_eq!(c.stats().hits, 1);
        c.get_or_try_insert(2, fill(2, 10)).unwrap();
        assert_eq!(c.stats().misses, 5, "2 must have been the evicted entry");
    }

    #[test]
    fn oversized_entry_is_still_served_and_kept() {
        let c: ShardedLru<u32> = ShardedLru::new(CacheConfig { shards: 1, budget_bytes: 8 });
        let v = c.get_or_try_insert(5, fill(50, 100)).unwrap();
        assert_eq!(*v, 50);
        let s = c.stats();
        assert_eq!(s.entries, 1, "the just-inserted entry is never its own victim");
        // The next insert evicts it.
        c.get_or_try_insert(6, fill(60, 100)).unwrap();
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn budget_holds_across_shards() {
        let c: ShardedLru<u32> = ShardedLru::new(CacheConfig { shards: 4, budget_bytes: 400 });
        for k in 0..1000usize {
            c.get_or_try_insert(k, fill(k as u32, 10)).unwrap();
        }
        let s = c.stats();
        assert!(s.bytes <= 400, "resident {} bytes exceeds the 400-byte budget", s.bytes);
        assert_eq!(s.misses - s.evictions, s.entries);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let c: ShardedLru<u32> = ShardedLru::new(CacheConfig::default());
        c.get_or_try_insert(1, fill(1, 10)).unwrap();
        c.clear();
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn fill_error_is_propagated_and_nothing_is_cached() {
        let c: ShardedLru<u32> = ShardedLru::new(CacheConfig::default());
        let r: Result<Arc<u32>, &str> = c.get_or_try_insert(9, || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(c.stats().entries, 0);
        // A later successful fill works.
        let v: Result<Arc<u32>, &str> = c.get_or_try_insert(9, || Ok((90, 4)));
        assert_eq!(*v.unwrap(), 90);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedLru<u32> = ShardedLru::new(CacheConfig { shards: 5, budget_bytes: 800 });
        assert_eq!(c.shards.len(), 8);
        assert_eq!(c.budget_per_shard, 100);
    }
}
