//! # dynaddr-query
//!
//! Concurrent, cache-backed query serving over a `dataset.store` file —
//! the serving layer between the batch reproduction and the future
//! `dynaddrd` daemon.
//!
//! A [`QueryEngine`] opens a store file **once**: the footer index is
//! parsed into per-table segment maps, secondary indexes (probe → AS,
//! probe → country, per-probe activity stats) are built in one streaming
//! pass over the connection table, and an optional `truth.store` is loaded
//! beside it. After open, every query is answered without re-reading the
//! footer; row access goes through a sharded LRU cache of *decoded
//! segments* ([`cache::ShardedLru`]), so hot segments decode once and stay
//! resident under a configurable byte budget.
//!
//! Queries are typed ([`Request`]/[`Response`]) and answered from any
//! number of threads concurrently through `&self`. Every query is a pure
//! function of the file contents: responses are **byte-identical at any
//! thread count and any cache state** (cold, warm, or thrashing under a
//! tiny budget) — pinned by the crate's determinism tests.
//!
//! The same enum pair crosses process boundaries as a length-prefixed
//! binary codec (see [`proto`]) over a Unix socket: `queryd` is the
//! accept-loop server binary, `queryc` the batch client, and
//! [`server::QueryClient`] the in-process client half. A
//! [`local::LocalAnswerer`] answers the same requests from a batch-loaded
//! [`dynaddr_atlas::AtlasDataset`] without touching the store reader or the
//! cache — the independent oracle the tests and the CI smoke diff against.
//!
//! Cache hits/misses/evictions and per-query latency flow into the
//! `dynaddr-obs` metrics registry (`query.cache.*`, `query.latency_us`)
//! and from there into the `--trace` JSONL sidecar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod index;
pub mod local;
pub mod proto;
#[cfg(unix)]
pub mod server;
pub mod workload;

pub use cache::{CacheConfig, CacheStats, ShardedLru};
pub use engine::{records_reply, series_reply, truth_reply, EngineOptions, QueryEngine, TruthIndex};
pub use index::StatsIndex;
pub use local::LocalAnswerer;
pub use proto::{Request, Response};
#[cfg(unix)]
pub use server::{serve, Answerer, QueryClient, Server, ServerHandle};
pub use workload::Workload;
