//! The independent oracle: answers queries from a batch-loaded dataset.
//!
//! [`LocalAnswerer`] holds a fully-decoded [`AtlasDataset`] and answers the
//! same [`Request`]s the engine does — through the dataset's own per-probe
//! slices, never the store reader, the segment cache, or the footer index.
//! The only shared code is the reply builders in [`crate::engine`], which
//! turn rows into wire structs; everything upstream of them (decode path,
//! row lookup, aggregation source) is disjoint. That makes
//! `engine bytes == local bytes` a meaningful end-to-end check, and it is
//! exactly the diff the CI query smoke and the crate tests run.

use crate::engine::{records_reply, series_reply, TruthIndex};
use crate::index::StatsIndex;
use crate::proto::{Request, Response};
use dynaddr_atlas::{store as atlas_store, AtlasDataset, GroundTruth};
use dynaddr_ip2as::MonthlySnapshots;
use dynaddr_store::ReadMode;
use dynaddr_types::Asn;
use std::path::Path;

/// Failure opening a local answerer.
#[derive(Debug)]
pub enum LocalError {
    /// Filesystem error, with the path that failed.
    Io(String, std::io::Error),
    /// Dataset failed to load or parse.
    Load(String),
}

impl std::fmt::Display for LocalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalError::Io(path, e) => write!(f, "{path}: {e}"),
            LocalError::Load(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for LocalError {}

/// Batch-loaded query answerer; see the module docs.
pub struct LocalAnswerer {
    ds: AtlasDataset,
    stats: StatsIndex,
    truth: Option<TruthIndex>,
}

impl LocalAnswerer {
    /// Loads a dataset directory the batch way ([`AtlasDataset::load_dir`])
    /// plus optional `truth.store` and `ip2as/` snapshots, mirroring
    /// [`crate::engine::QueryEngine::open_dir`]'s inputs.
    pub fn open_dir(dir: &Path) -> Result<LocalAnswerer, LocalError> {
        let ds = AtlasDataset::load_dir(dir)
            .map_err(|e| LocalError::Load(format!("{}: {e:?}", dir.display())))?;
        let ip2as = dir.join("ip2as");
        let snaps = if ip2as.is_dir() {
            MonthlySnapshots::load_dir(&ip2as)
                .map_err(|e| LocalError::Io(ip2as.display().to_string(), e))?
        } else {
            MonthlySnapshots::uniform(dynaddr_ip2as::RouteTable::new())
        };
        let truth_path = dir.join("truth.store");
        let truth = if truth_path.is_file() {
            let bytes = std::fs::read(&truth_path)
                .map_err(|e| LocalError::Io(truth_path.display().to_string(), e))?;
            let (truth, _) = atlas_store::truth_from_bytes(&bytes, ReadMode::Strict)
                .map_err(|e| LocalError::Load(format!("truth.store: {e}")))?;
            Some(truth)
        } else {
            None
        };
        Ok(LocalAnswerer::from_parts(ds, &snaps, truth.as_ref()))
    }

    /// Builds the answerer from in-memory parts.
    pub fn from_parts(
        ds: AtlasDataset,
        snaps: &MonthlySnapshots,
        truth: Option<&GroundTruth>,
    ) -> LocalAnswerer {
        let stats = StatsIndex::from_dataset(&ds, snaps);
        LocalAnswerer { ds, stats, truth: truth.map(TruthIndex::new) }
    }

    /// The secondary indexes (also the workload operand universe).
    pub fn stats(&self) -> &StatsIndex {
        &self.stats
    }

    /// Whether a ground truth is loaded.
    pub fn truth_available(&self) -> bool {
        self.truth.is_some()
    }

    /// The loaded dataset.
    pub fn dataset(&self) -> &AtlasDataset {
        &self.ds
    }

    /// Answers one request from the batch-loaded rows.
    pub fn answer(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::ProbeRecords(p) => Response::ProbeRecords(records_reply(
                p.0,
                self.ds.meta_of(*p),
                self.ds.connections_of(*p),
                self.ds.kroot_of(*p),
                self.ds.uptime_of(*p),
            )),
            Request::ProbeSeries(p) => Response::ProbeSeries(series_reply(
                p.0,
                self.ds.meta_of(*p),
                self.ds.connections_of(*p),
                self.ds.kroot_of(*p),
                self.ds.uptime_of(*p),
            )),
            Request::AsSummary(Asn(a)) => Response::AsSummary(self.stats.as_summary(*a)),
            Request::CountrySummary(cc) => {
                Response::CountrySummary(self.stats.country_summary(cc))
            }
            Request::TopMovers(n) => Response::TopMovers(self.stats.top_movers(*n)),
            Request::ProbeTruth(p) => Response::ProbeTruth(
                self.truth.as_ref().and_then(|t| t.probe(p.0)).cloned(),
            ),
            Request::ServerStats => {
                Response::Error("ServerStats is answered by the serving front-end".into())
            }
            Request::DaemonSnapshot | Request::DaemonProbe(_) | Request::IngestStats => {
                Response::Error("daemon-only request; this is a batch query backend".into())
            }
        }
    }
}
