//! Deterministic data-parallel execution on scoped threads.
//!
//! The analysis pipeline is embarrassingly parallel per probe, per AS, and
//! per panel, but its outputs must be byte-identical regardless of how many
//! workers run. This crate provides chunked [`par_map`]/[`par_map_flat`]
//! built on [`std::thread::scope`] — no external dependencies — that always
//! reassemble results in input order, so any pure per-item function
//! produces exactly the same output at any thread count.
//!
//! Worker count resolution, highest priority first:
//! 1. a process-wide override set with [`set_threads`] (used by the
//!    `--threads` CLI flags),
//! 2. the `DYNADDR_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker every combinator degrades to a plain sequential loop on
//! the calling thread — no scope, no spawns — so single-threaded runs have
//! zero threading overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cumulative executor telemetry: how parallel regions actually ran.
///
/// Strictly observational — nothing in the executor branches on it, so it
/// cannot affect chunking or output bytes. `tasks_per_worker[i]` counts the
/// items handled by chunk slot `i` (slot, not OS thread: slot 0 is also the
/// calling thread on sequential fast-paths). `spawn_wait_ns` accumulates
/// spawn-to-first-instruction latency — the closest thing a scoped-thread
/// pool has to queue wait. `utilization()` near `1/workers` is the
/// signature of a serialized "parallel" region; near 1.0 means the chunks
/// genuinely overlapped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Parallel regions executed (every par_map/par_fold/par_run call).
    pub regions: u64,
    /// Regions that took the sequential fast-path (threads <= 1 or tiny input).
    pub sequential_regions: u64,
    /// Total items processed across all regions.
    pub tasks: u64,
    /// Items handled per worker slot, summed over regions.
    pub tasks_per_worker: Vec<u64>,
    /// Busy time per worker slot, summed over regions.
    pub busy_ns_per_worker: Vec<u64>,
    /// Wall-clock time summed over regions.
    pub wall_ns: u64,
    /// Total spawn-to-start latency across all spawned workers.
    pub spawn_wait_ns: u64,
    /// Workers actually spawned (0 for sequential fast-path regions).
    pub spawned_workers: u64,
}

impl ExecStats {
    /// Busy time across all workers divided by `wall_ns × slots`; 1.0 means
    /// every slot was busy for the whole region time.
    pub fn utilization(&self) -> f64 {
        let slots = self.busy_ns_per_worker.len().max(1) as f64;
        let busy: u64 = self.busy_ns_per_worker.iter().sum();
        if self.wall_ns == 0 {
            return 0.0;
        }
        busy as f64 / (self.wall_ns as f64 * slots)
    }

    /// Mean spawn-to-start latency per spawned worker, in milliseconds.
    pub fn queue_wait_ms(&self) -> f64 {
        if self.spawned_workers == 0 {
            return 0.0;
        }
        self.spawn_wait_ns as f64 / 1e6 / self.spawned_workers as f64
    }

    fn slot(&mut self, i: usize) -> (&mut u64, &mut u64) {
        if self.tasks_per_worker.len() <= i {
            self.tasks_per_worker.resize(i + 1, 0);
            self.busy_ns_per_worker.resize(i + 1, 0);
        }
        (&mut self.tasks_per_worker[i], &mut self.busy_ns_per_worker[i])
    }
}

static EXEC_STATS: Mutex<ExecStats> = Mutex::new(ExecStats {
    regions: 0,
    sequential_regions: 0,
    tasks: 0,
    tasks_per_worker: Vec::new(),
    busy_ns_per_worker: Vec::new(),
    wall_ns: 0,
    spawn_wait_ns: 0,
    spawned_workers: 0,
});

/// Snapshot of the cumulative executor telemetry.
pub fn exec_stats() -> ExecStats {
    EXEC_STATS.lock().unwrap().clone()
}

/// Reset the cumulative executor telemetry (benchmark iterations, tests).
pub fn reset_exec_stats() {
    *EXEC_STATS.lock().unwrap() = ExecStats::default();
}

/// Fold one region's per-slot measurements into the global stats. One lock
/// acquisition per region, after workers have joined — never on the item
/// path.
fn record_region(per_slot: &[(u64, u64, u64)], wall_ns: u64, sequential: bool) {
    let mut s = EXEC_STATS.lock().unwrap();
    s.regions += 1;
    if sequential {
        s.sequential_regions += 1;
    } else {
        s.spawned_workers += per_slot.len() as u64;
    }
    s.wall_ns += wall_ns;
    for (i, &(tasks, busy_ns, wait_ns)) in per_slot.iter().enumerate() {
        s.tasks += tasks;
        s.spawn_wait_ns += wait_ns;
        let (t, b) = s.slot(i);
        *t += tasks;
        *b += busy_ns;
    }
}

/// Sets (or with `None` clears) the process-wide worker-count override.
/// Takes precedence over `DYNADDR_THREADS` and the detected parallelism.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count the next parallel call will use.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(var) = std::env::var("DYNADDR_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items`, in parallel over contiguous chunks, returning
/// results in input order. Deterministic for pure `f`: the output is
/// identical at any worker count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = current_threads().min(items.len().max(1));
    let region_start = Instant::now();
    if threads <= 1 {
        let out: Vec<R> = items.iter().map(f).collect();
        let busy = region_start.elapsed().as_nanos() as u64;
        record_region(&[(items.len() as u64, busy, 0)], busy, true);
        return out;
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut measured: Vec<(Vec<R>, u64, u64, u64)> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                let spawned_at = Instant::now();
                scope.spawn(move || {
                    let wait_ns = spawned_at.elapsed().as_nanos() as u64;
                    let t0 = Instant::now();
                    let out: Vec<R> = chunk.iter().map(f).collect();
                    (out, chunk.len() as u64, t0.elapsed().as_nanos() as u64, wait_ns)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });
    let wall_ns = region_start.elapsed().as_nanos() as u64;
    let per_slot: Vec<(u64, u64, u64)> =
        measured.iter().map(|&(_, tasks, busy, wait)| (tasks, busy, wait)).collect();
    record_region(&per_slot, wall_ns, false);
    let mut out = Vec::with_capacity(items.len());
    for (chunk, ..) in &mut measured {
        out.append(chunk);
    }
    out
}

/// Like [`par_map`] but flattens per-item result vectors, preserving input
/// order: the output equals `items.iter().flat_map(f).collect()`.
pub fn par_map_flat<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Vec<R> + Sync,
{
    let per_item = par_map(items, f);
    let mut out = Vec::with_capacity(per_item.iter().map(Vec::len).sum());
    for mut v in per_item {
        out.append(&mut v);
    }
    out
}

/// Chunked parallel reduction: folds `items` into per-chunk accumulators
/// (each starting from `init()`), then merges the accumulators left to
/// right in chunk order.
///
/// Chunk boundaries depend on the worker count, so the result is identical
/// at any thread count **iff** `(init, merge)` form a monoid and `fold` is
/// compatible with it: `merge` associative, `init()` its identity, and
/// `fold(merge(a, init()), x) == merge(a, fold(init(), x))`. Every
/// concatenation- or counter-shaped reduction (Vec append, sums, per-key
/// map merges) satisfies this; a unit test pins the property for those
/// shapes. With one worker this degrades to a plain sequential fold.
pub fn par_fold<T, A, I, F, M>(items: Vec<T>, init: I, fold: F, merge: M) -> A
where
    T: Send,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let threads = current_threads().min(items.len().max(1));
    let region_start = Instant::now();
    if threads <= 1 {
        let n = items.len() as u64;
        let out = items.into_iter().fold(init(), fold);
        let busy = region_start.elapsed().as_nanos() as u64;
        record_region(&[(n, busy, 0)], busy, true);
        return out;
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items.into_iter();
    loop {
        let chunk: Vec<T> = rest.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let measured: Vec<(A, u64, u64, u64)> = std::thread::scope(|scope| {
        let (init, fold) = (&init, &fold);
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let spawned_at = Instant::now();
                scope.spawn(move || {
                    let wait_ns = spawned_at.elapsed().as_nanos() as u64;
                    let t0 = Instant::now();
                    let n = chunk.len() as u64;
                    let acc = chunk.into_iter().fold(init(), fold);
                    (acc, n, t0.elapsed().as_nanos() as u64, wait_ns)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_fold worker panicked")).collect()
    });
    let wall_ns = region_start.elapsed().as_nanos() as u64;
    let per_slot: Vec<(u64, u64, u64)> =
        measured.iter().map(|&(_, tasks, busy, wait)| (tasks, busy, wait)).collect();
    record_region(&per_slot, wall_ns, false);
    measured
        .into_iter()
        .map(|(acc, ..)| acc)
        .reduce(merge)
        .expect("at least one chunk")
}

/// Runs a set of heterogeneous tasks, one scoped thread each, returning
/// their results in task order. With one worker the tasks run sequentially
/// on the calling thread. Use for a handful of coarse independent jobs
/// (e.g. the pipeline's figure panels), not for fine-grained items.
pub fn par_run<'env, R: Send>(tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>) -> Vec<R> {
    let region_start = Instant::now();
    if current_threads() <= 1 || tasks.len() <= 1 {
        let n = tasks.len() as u64;
        let out: Vec<R> = tasks.into_iter().map(|t| t()).collect();
        let busy = region_start.elapsed().as_nanos() as u64;
        record_region(&[(n, busy, 0)], busy, true);
        return out;
    }
    let measured: Vec<(R, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|t| {
                let spawned_at = Instant::now();
                scope.spawn(move || {
                    let wait_ns = spawned_at.elapsed().as_nanos() as u64;
                    let t0 = Instant::now();
                    let out = t();
                    (out, t0.elapsed().as_nanos() as u64, wait_ns)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_run task panicked")).collect()
    });
    let wall_ns = region_start.elapsed().as_nanos() as u64;
    let per_slot: Vec<(u64, u64, u64)> =
        measured.iter().map(|&(_, busy, wait)| (1, busy, wait)).collect();
    record_region(&per_slot, wall_ns, false);
    measured.into_iter().map(|(out, ..)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Serializes tests that toggle the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_map_matches_sequential_at_every_thread_count() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 7, 64] {
            set_threads(Some(threads));
            assert_eq!(par_map(&items, |x| x * x + 1), expected, "threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn par_map_flat_preserves_order_and_handles_empty_outputs() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(3));
        let items: Vec<u32> = (0..100).collect();
        let flat = par_map_flat(&items, |&x| {
            if x % 3 == 0 {
                vec![]
            } else {
                vec![x * 10, x * 10 + 1]
            }
        });
        let expected: Vec<u32> = items
            .iter()
            .flat_map(|&x| if x % 3 == 0 { vec![] } else { vec![x * 10, x * 10 + 1] })
            .collect();
        assert_eq!(flat, expected);
        set_threads(None);
    }

    #[test]
    fn par_fold_matches_sequential_at_every_thread_count() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let expected_sum: u64 = items.iter().sum();
        // Concatenation is the order-sensitive case: any chunk reassembly
        // mistake shows up as a permuted vector.
        let expected_cat: Vec<u64> = items.clone();
        for threads in [1, 2, 3, 4, 7, 64] {
            set_threads(Some(threads));
            let sum = par_fold(items.clone(), || 0u64, |a, x| a + x, |a, b| a + b);
            assert_eq!(sum, expected_sum, "sum at threads={threads}");
            let cat = par_fold(
                items.clone(),
                Vec::new,
                |mut a, x| {
                    a.push(x);
                    a
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            assert_eq!(cat, expected_cat, "concat at threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn par_fold_merges_per_key_maps_deterministically() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u32> = (0..500).collect();
        let count = |items: Vec<u32>| -> std::collections::BTreeMap<u32, usize> {
            par_fold(
                items,
                std::collections::BTreeMap::new,
                |mut m, x| {
                    *m.entry(x % 7).or_insert(0) += 1;
                    m
                },
                |mut a, b| {
                    for (k, v) in b {
                        *a.entry(k).or_insert(0) += v;
                    }
                    a
                },
            )
        };
        set_threads(Some(1));
        let seq = count(items.clone());
        for threads in [2, 5, 64] {
            set_threads(Some(threads));
            assert_eq!(count(items.clone()), seq, "threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn par_fold_empty_input_returns_init() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(8));
        let empty: Vec<u8> = Vec::new();
        assert_eq!(par_fold(empty, || 41, |a, _| a, |a, _| a), 41);
        set_threads(None);
    }

    #[test]
    fn par_run_returns_results_in_task_order() {
        let _guard = LOCK.lock().unwrap();
        for threads in [1, 4] {
            set_threads(Some(threads));
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            assert_eq!(par_run(tasks), vec![0, 2, 4, 6, 8, 10, 12, 14]);
        }
        set_threads(None);
    }

    #[test]
    fn empty_and_single_inputs() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(8));
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[5], |x| x + 1), vec![6]);
        set_threads(None);
    }

    #[test]
    fn override_beats_env() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(current_threads(), 3);
        set_threads(None);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn exec_stats_counts_tasks_and_workers() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(4));
        reset_exec_stats();
        let items: Vec<u64> = (0..100).collect();
        let _ = par_map(&items, |x| x + 1);
        let s = exec_stats();
        assert_eq!(s.regions, 1);
        assert_eq!(s.sequential_regions, 0);
        assert_eq!(s.tasks, 100);
        assert_eq!(s.tasks_per_worker.iter().sum::<u64>(), 100);
        assert_eq!(s.tasks_per_worker, vec![25, 25, 25, 25]);
        assert_eq!(s.spawned_workers, 4);
        assert!(s.wall_ns > 0);
        assert!(s.utilization() >= 0.0 && s.utilization() <= 1.5);

        set_threads(Some(1));
        let _ = par_map(&items, |x| x + 1);
        let s = exec_stats();
        assert_eq!(s.regions, 2);
        assert_eq!(s.sequential_regions, 1);
        assert_eq!(s.tasks, 200);
        assert_eq!(s.tasks_per_worker[0], 125);

        reset_exec_stats();
        assert_eq!(exec_stats(), ExecStats::default());
        set_threads(None);
    }

    #[test]
    fn exec_stats_does_not_change_results() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..777).collect();
        set_threads(Some(1));
        let seq = par_fold(items.clone(), || 0u64, |a, x| a ^ x.rotate_left(7), |a, b| a ^ b);
        set_threads(Some(6));
        let par = par_fold(items, || 0u64, |a, x| a ^ x.rotate_left(7), |a, b| a ^ b);
        assert_eq!(seq, par);
        set_threads(None);
    }

    proptest! {
        /// par_map must agree with the sequential map for arbitrary inputs
        /// and worker counts, in content and in order.
        #[test]
        fn par_map_equals_vec_map(
            items in proptest::collection::vec(any::<u32>(), 0..300),
            threads in 1usize..9,
        ) {
            let _guard = LOCK.lock().unwrap();
            set_threads(Some(threads));
            let par: Vec<u64> = par_map(&items, |&x| x as u64 * 3 + 7);
            set_threads(None);
            let seq: Vec<u64> = items.iter().map(|&x| x as u64 * 3 + 7).collect();
            prop_assert_eq!(par, seq);
        }
    }
}
