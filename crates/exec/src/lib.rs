//! Deterministic data-parallel execution on scoped threads.
//!
//! The analysis pipeline is embarrassingly parallel per probe, per AS, and
//! per panel, but its outputs must be byte-identical regardless of how many
//! workers run. This crate provides chunked [`par_map`]/[`par_map_flat`]
//! built on [`std::thread::scope`] — no external dependencies — that always
//! reassemble results in input order, so any pure per-item function
//! produces exactly the same output at any thread count.
//!
//! Worker count resolution, highest priority first:
//! 1. a process-wide override set with [`set_threads`] (used by the
//!    `--threads` CLI flags),
//! 2. the `DYNADDR_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one worker every combinator degrades to a plain sequential loop on
//! the calling thread — no scope, no spawns — so single-threaded runs have
//! zero threading overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide worker-count override.
/// Takes precedence over `DYNADDR_THREADS` and the detected parallelism.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count the next parallel call will use.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(var) = std::env::var("DYNADDR_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items`, in parallel over contiguous chunks, returning
/// results in input order. Deterministic for pure `f`: the output is
/// identical at any worker count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = current_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in &mut chunks {
        out.append(chunk);
    }
    out
}

/// Like [`par_map`] but flattens per-item result vectors, preserving input
/// order: the output equals `items.iter().flat_map(f).collect()`.
pub fn par_map_flat<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Vec<R> + Sync,
{
    let per_item = par_map(items, f);
    let mut out = Vec::with_capacity(per_item.iter().map(Vec::len).sum());
    for mut v in per_item {
        out.append(&mut v);
    }
    out
}

/// Chunked parallel reduction: folds `items` into per-chunk accumulators
/// (each starting from `init()`), then merges the accumulators left to
/// right in chunk order.
///
/// Chunk boundaries depend on the worker count, so the result is identical
/// at any thread count **iff** `(init, merge)` form a monoid and `fold` is
/// compatible with it: `merge` associative, `init()` its identity, and
/// `fold(merge(a, init()), x) == merge(a, fold(init(), x))`. Every
/// concatenation- or counter-shaped reduction (Vec append, sums, per-key
/// map merges) satisfies this; a unit test pins the property for those
/// shapes. With one worker this degrades to a plain sequential fold.
pub fn par_fold<T, A, I, F, M>(items: Vec<T>, init: I, fold: F, merge: M) -> A
where
    T: Send,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let threads = current_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().fold(init(), fold);
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items.into_iter();
    loop {
        let chunk: Vec<T> = rest.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let accs: Vec<A> = std::thread::scope(|scope| {
        let (init, fold) = (&init, &fold);
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().fold(init(), fold)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_fold worker panicked")).collect()
    });
    accs.into_iter().reduce(merge).expect("at least one chunk")
}

/// Runs a set of heterogeneous tasks, one scoped thread each, returning
/// their results in task order. With one worker the tasks run sequentially
/// on the calling thread. Use for a handful of coarse independent jobs
/// (e.g. the pipeline's figure panels), not for fine-grained items.
pub fn par_run<'env, R: Send>(tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>) -> Vec<R> {
    if current_threads() <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks.into_iter().map(|t| scope.spawn(t)).collect();
        handles.into_iter().map(|h| h.join().expect("par_run task panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Serializes tests that toggle the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_map_matches_sequential_at_every_thread_count() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 7, 64] {
            set_threads(Some(threads));
            assert_eq!(par_map(&items, |x| x * x + 1), expected, "threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn par_map_flat_preserves_order_and_handles_empty_outputs() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(3));
        let items: Vec<u32> = (0..100).collect();
        let flat = par_map_flat(&items, |&x| {
            if x % 3 == 0 {
                vec![]
            } else {
                vec![x * 10, x * 10 + 1]
            }
        });
        let expected: Vec<u32> = items
            .iter()
            .flat_map(|&x| if x % 3 == 0 { vec![] } else { vec![x * 10, x * 10 + 1] })
            .collect();
        assert_eq!(flat, expected);
        set_threads(None);
    }

    #[test]
    fn par_fold_matches_sequential_at_every_thread_count() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..1000).collect();
        let expected_sum: u64 = items.iter().sum();
        // Concatenation is the order-sensitive case: any chunk reassembly
        // mistake shows up as a permuted vector.
        let expected_cat: Vec<u64> = items.clone();
        for threads in [1, 2, 3, 4, 7, 64] {
            set_threads(Some(threads));
            let sum = par_fold(items.clone(), || 0u64, |a, x| a + x, |a, b| a + b);
            assert_eq!(sum, expected_sum, "sum at threads={threads}");
            let cat = par_fold(
                items.clone(),
                Vec::new,
                |mut a, x| {
                    a.push(x);
                    a
                },
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            assert_eq!(cat, expected_cat, "concat at threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn par_fold_merges_per_key_maps_deterministically() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u32> = (0..500).collect();
        let count = |items: Vec<u32>| -> std::collections::BTreeMap<u32, usize> {
            par_fold(
                items,
                std::collections::BTreeMap::new,
                |mut m, x| {
                    *m.entry(x % 7).or_insert(0) += 1;
                    m
                },
                |mut a, b| {
                    for (k, v) in b {
                        *a.entry(k).or_insert(0) += v;
                    }
                    a
                },
            )
        };
        set_threads(Some(1));
        let seq = count(items.clone());
        for threads in [2, 5, 64] {
            set_threads(Some(threads));
            assert_eq!(count(items.clone()), seq, "threads={threads}");
        }
        set_threads(None);
    }

    #[test]
    fn par_fold_empty_input_returns_init() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(8));
        let empty: Vec<u8> = Vec::new();
        assert_eq!(par_fold(empty, || 41, |a, _| a, |a, _| a), 41);
        set_threads(None);
    }

    #[test]
    fn par_run_returns_results_in_task_order() {
        let _guard = LOCK.lock().unwrap();
        for threads in [1, 4] {
            set_threads(Some(threads));
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            assert_eq!(par_run(tasks), vec![0, 2, 4, 6, 8, 10, 12, 14]);
        }
        set_threads(None);
    }

    #[test]
    fn empty_and_single_inputs() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(8));
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[5], |x| x + 1), vec![6]);
        set_threads(None);
    }

    #[test]
    fn override_beats_env() {
        let _guard = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(current_threads(), 3);
        set_threads(None);
        assert!(current_threads() >= 1);
    }

    proptest! {
        /// par_map must agree with the sequential map for arbitrary inputs
        /// and worker counts, in content and in order.
        #[test]
        fn par_map_equals_vec_map(
            items in proptest::collection::vec(any::<u32>(), 0..300),
            threads in 1usize..9,
        ) {
            let _guard = LOCK.lock().unwrap();
            set_threads(Some(threads));
            let par: Vec<u64> = par_map(&items, |&x| x as u64 * 3 + 7);
            set_threads(None);
            let seq: Vec<u64> = items.iter().map(|&x| x as u64 * 3 + 7).collect();
            prop_assert_eq!(par, seq);
        }
    }
}
