//! Small statistics toolkit: weighted CDFs, percentiles, medians.

/// A weighted empirical distribution over `f64` values.
///
/// Used for the cumulative total-time-fraction curves of Figs. 1–3 (values
/// are address durations in hours, weights are the durations themselves) and
/// for the per-probe probability CDFs of Figs. 7–8 (unit weights).
#[derive(Debug, Clone, Default)]
pub struct WeightedCdf {
    /// `(value, weight)` pairs, sorted by value after `finalize`.
    points: Vec<(f64, f64)>,
    total_weight: f64,
    sorted: bool,
}

impl WeightedCdf {
    /// Creates an empty distribution.
    pub fn new() -> WeightedCdf {
        WeightedCdf::default()
    }

    /// Adds a value with a weight.
    pub fn push(&mut self, value: f64, weight: f64) {
        assert!(weight >= 0.0, "negative weight");
        self.points.push((value, weight));
        self.total_weight += weight;
        self.sorted = false;
    }

    /// Adds a value with unit weight.
    pub fn push_unit(&mut self, value: f64) {
        self.push(value, 1.0);
    }

    /// Appends all of `other`'s points after this distribution's own.
    ///
    /// Built for `par_fold` merges, which must be byte-deterministic: the
    /// points concatenate in chunk order (so a later stable sort sees the
    /// same tie order as a sequential build), and the total weight is
    /// **recomputed** as one left-to-right sum over the concatenation —
    /// float addition is not associative, so summing partial chunk totals
    /// would drift from what sequential `push` accumulation produces.
    pub fn merge(&mut self, mut other: WeightedCdf) {
        self.points.append(&mut other.points);
        // `+ 0.0` normalizes the `-0.0` an empty f64 sum produces.
        self.total_weight = self.points.iter().map(|(_, w)| w).sum::<f64>() + 0.0;
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.points
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN values"));
            self.sorted = true;
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Cumulative fraction of weight at values `<= x`.
    pub fn fraction_le(&mut self, x: f64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.points.partition_point(|(v, _)| *v <= x);
        // `+ 0.0` normalizes the `-0.0` an empty f64 sum produces.
        let sum: f64 = self.points[..idx].iter().map(|(_, w)| w).sum::<f64>() + 0.0;
        sum / self.total_weight
    }

    /// Fraction of weight within `[x(1-tol), x(1+tol)]` — the "mode mass"
    /// readout used to quantify periodic spikes.
    pub fn fraction_near(&mut self, x: f64, tol: f64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        self.ensure_sorted();
        let lo = x * (1.0 - tol);
        let hi = x * (1.0 + tol);
        let a = self.points.partition_point(|(v, _)| *v < lo);
        let b = self.points.partition_point(|(v, _)| *v <= hi);
        let sum: f64 = self.points[a..b].iter().map(|(_, w)| w).sum::<f64>() + 0.0;
        sum / self.total_weight
    }

    /// The full CDF as `(value, cumulative fraction)` steps.
    pub fn curve(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let mut out = Vec::with_capacity(self.points.len());
        let mut acc = 0.0;
        for (v, w) in &self.points {
            acc += w;
            out.push((*v, acc / self.total_weight.max(f64::MIN_POSITIVE)));
        }
        out
    }

    /// Consumes the distribution, returning its points sorted by value plus
    /// the total weight — the raw material of a finalized curve.
    pub fn into_sorted_points(mut self) -> (Vec<(f64, f64)>, f64) {
        self.ensure_sorted();
        (self.points, self.total_weight)
    }

    /// The value at a cumulative fraction `q` in `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let target = q.clamp(0.0, 1.0) * self.total_weight;
        let mut acc = 0.0;
        for (v, w) in &self.points {
            acc += w;
            if acc >= target {
                return Some(*v);
            }
        }
        self.points.last().map(|(v, _)| *v)
    }
}

/// Median of a slice (not necessarily sorted). `None` when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN values"));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Median of integer counts.
pub fn median_usize(values: &[usize]) -> Option<f64> {
    let as_f: Vec<f64> = values.iter().map(|v| *v as f64).collect();
    median(&as_f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let mut c = WeightedCdf::new();
        assert!(c.is_empty());
        assert_eq!(c.fraction_le(10.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }

    #[test]
    fn unit_weights_behave_like_ecdf() {
        let mut c = WeightedCdf::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            c.push_unit(v);
        }
        assert_eq!(c.fraction_le(2.0), 0.5);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(4.0), 1.0);
        assert_eq!(c.quantile(0.5), Some(2.0));
    }

    #[test]
    fn weights_shift_mass() {
        let mut c = WeightedCdf::new();
        c.push(1.0, 1.0);
        c.push(24.0, 9.0);
        assert!((c.fraction_le(1.0) - 0.1).abs() < 1e-12);
        assert_eq!(c.quantile(0.5), Some(24.0));
    }

    #[test]
    fn fraction_near_captures_mode() {
        let mut c = WeightedCdf::new();
        // A 24-hour mode with slight spread, plus background.
        for v in [23.6, 23.7, 23.8, 24.0] {
            c.push(v, v);
        }
        c.push(5.0, 5.0);
        c.push(100.0, 100.0);
        let near = c.fraction_near(24.0, 0.05);
        let expected = (23.6 + 23.7 + 23.8 + 24.0) / (23.6 + 23.7 + 23.8 + 24.0 + 5.0 + 100.0);
        assert!((near - expected).abs() < 1e-12);
        assert_eq!(c.fraction_near(24.0, 0.001), 24.0 / c.total_weight());
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let mut c = WeightedCdf::new();
        for v in [3.0, 1.0, 2.0, 2.0] {
            c.push(v, v);
        }
        let curve = c.curve();
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sums_do_not_produce_negative_zero() {
        let mut c = WeightedCdf::new();
        c.push(7_000.0, 1.0);
        let f = c.fraction_le(10.0);
        assert_eq!(format!("{f:.2}"), "0.00", "no -0.00 rendering");
        let m = c.fraction_near(24.0, 0.05);
        assert_eq!(format!("{m:.2}"), "0.00");
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median_usize(&[1, 2, 9]), Some(2.0));
    }
}
