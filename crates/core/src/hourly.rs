//! Hour-of-day analysis of periodic address changes (§4.4.3, Figs. 4–5).
//!
//! For an ISP with period `d`, take every address span whose duration is
//! within tolerance of `d` and record the GMT hour at which it *ended* (the
//! renumbering instant). A flat histogram means free-running per-customer
//! clocks (Orange); a concentrated one means scheduled/synchronized
//! renumbering (DTAG's night-time window).

use crate::filtering::AnalyzableProbe;
use dynaddr_types::Asn;

/// Hour-of-day histogram of periodic change instants for one AS.
pub fn periodic_change_hours(
    probes: &[AnalyzableProbe],
    asn: Asn,
    d_hours: i64,
    tol: f64,
) -> [usize; 24] {
    let mut hist = [0usize; 24];
    let d_secs = d_hours as f64 * 3_600.0;
    for p in probes {
        if p.multi_as || p.primary_asn != asn {
            continue;
        }
        for span in &p.events.spans {
            if !span.complete {
                continue;
            }
            let s = span.duration().secs() as f64;
            if (s - d_secs).abs() <= tol * d_secs {
                hist[span.end.hour_of_day() as usize] += 1;
            }
        }
    }
    hist
}

/// A simple synchronization measure: the fraction of changes landing in the
/// densest 6-hour window. 0.25 means perfectly uniform; near 1.0 means
/// tightly synchronized.
pub fn peak_window_fraction(hist: &[usize; 24]) -> f64 {
    let total: usize = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let best: usize = (0..24)
        .map(|start| (0..6).map(|k| hist[(start + k) % 24]).sum::<usize>())
        .max()
        .expect("24 windows");
    best as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaddr_atlas::logs::{AtlasDataset, ConnectionLogEntry, PeerAddr, ProbeMeta};
    use dynaddr_ip2as::{MonthlySnapshots, RouteTable};
    use dynaddr_types::{ProbeId, SimTime};

    const H: i64 = 3_600;

    /// Builds one probe whose daily changes all land at the given hour.
    fn probe_changing_at(id: u32, hour: i64) -> (AtlasDataset, MonthlySnapshots) {
        let mut table = RouteTable::new();
        table.announce("10.0.0.0/16".parse().unwrap(), Asn(100));
        let snaps = MonthlySnapshots::uniform(table);
        let mut ds = AtlasDataset::default();
        ds.meta.push(ProbeMeta { probe: ProbeId(id), ..ProbeMeta::default() });
        for k in 0..30i64 {
            ds.connections.push(ConnectionLogEntry {
                probe: ProbeId(id),
                start: SimTime(k * 24 * H + hour * H + 600),
                end: SimTime((k + 1) * 24 * H + hour * H),
                peer: PeerAddr::V4(format!("10.0.1.{}", k + 1).parse().unwrap()),
            });
        }
        ds.normalize();
        (ds, snaps)
    }

    #[test]
    fn synchronized_changes_concentrate() {
        let (ds, snaps) = probe_changing_at(1, 3);
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        let hist = periodic_change_hours(&probes, Asn(100), 24, 0.05);
        let total: usize = hist.iter().sum();
        assert!(total >= 25, "expected ~28 periodic spans, got {total}");
        assert_eq!(hist[3], total, "all changes end at hour 3: {hist:?}");
        assert!(peak_window_fraction(&hist) > 0.99);
    }

    #[test]
    fn wrong_asn_or_period_yields_empty() {
        let (ds, snaps) = probe_changing_at(1, 3);
        let probes = crate::filtering::filter_probes(&ds, &snaps).probes;
        let other_as = periodic_change_hours(&probes, Asn(999), 24, 0.05);
        assert_eq!(other_as.iter().sum::<usize>(), 0);
        let other_d = periodic_change_hours(&probes, Asn(100), 12, 0.05);
        assert_eq!(other_d.iter().sum::<usize>(), 0);
    }

    #[test]
    fn uniform_hist_peak_fraction() {
        let hist = [10usize; 24];
        assert!((peak_window_fraction(&hist) - 0.25).abs() < 1e-12);
        let empty = [0usize; 24];
        assert_eq!(peak_window_fraction(&empty), 0.0);
    }
}
